"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``topology`` — describe a preset or JSON topology, optionally save a
  preset to JSON for editing,
- ``dag`` — render a preset workload's DAG as DOT or Mermaid,
- ``schedule`` — run a preset workload on a topology under a strategy
  and print the summary, utilization, and Gantt chart,
- ``trace`` — run a workload with span tracing enabled, print the span
  summary and critical-path breakdown, and export a Chrome trace-event
  JSON (load it in ``chrome://tracing`` or https://ui.perfetto.dev),
- ``chaos`` — run a workload under a seeded chaos campaign (site
  outages, link brownouts, sick boxes, stragglers, corrupted
  transfers) with a chosen recovery policy, and report every recovery
  action the resilience layer took,
- ``metrics`` — run experiments with the unified metrics layer enabled
  and print the Prometheus text exposition (or write the canonical
  JSON snapshot with ``--out``); ``--load FILE`` validates and
  re-renders an existing snapshot without running anything,
- ``bench`` — the experiment suite runner (:mod:`repro.bench`):
  sequential, parallel-sharded (``--jobs N``), and content-addressed
  result caching (``--no-cache`` to bypass).

``trace`` and ``chaos`` accept ``--metrics FILE`` to additionally
collect run metrics (zero-interference: the simulation output is
byte-identical with or without it) and interleave the sampled gauge
timeseries as counter events in the Chrome trace export.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.continuum import (
    TOPOLOGY_FAMILIES,
    hierarchical_continuum,
    load_topology,
    save_topology,
    science_grid,
    smart_city,
    zoo_topology,
)
from repro.core import ContinuumScheduler, slo_report
from repro.core.strategies import strategy_catalog
from repro.errors import ConfigurationError, ContinuumError
from repro.faults import CAMPAIGN_INTENSITIES, ChaosCampaign
from repro.resilience import ResiliencePolicy
from repro.observe import (
    MetricsRegistry,
    Tracer,
    critical_path,
    load_snapshot,
    snapshot_to_json,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_trace,
)
from repro.report import (
    ascii_gantt,
    critical_path_report,
    dag_to_dot,
    dag_to_mermaid,
    span_summary,
    utilization_table,
)
from repro.workflow import load_workload, save_workload
from repro.workloads import (
    beamline_pipeline,
    climate_ensemble,
    layered_random_dag,
    montage_like_dag,
    stencil_dag,
)

PRESET_TOPOLOGIES = {
    "science-grid": science_grid,
    "smart-city": smart_city,
    "hierarchical": hierarchical_continuum,
}
# every zoo family, addressable as e.g. ``zoo:fat-tree`` (default params)
PRESET_TOPOLOGIES.update({
    f"zoo:{family}": (lambda family=family: zoo_topology(family))
    for family in sorted(TOPOLOGY_FAMILIES)
})

PRESET_WORKLOADS = {
    "beamline": lambda seed: beamline_pipeline(6),
    "climate": lambda seed: climate_ensemble(4),
    "montage": lambda seed: montage_like_dag(4),
    "layered": lambda seed: layered_random_dag(20, seed=seed),
    "stencil": lambda seed: stencil_dag(4, 4),
}


def _get_workload(args):
    """A preset name (``--workload``) or a saved file (``--dag``)."""
    if getattr(args, "dag", None):
        return load_workload(args.dag)
    return PRESET_WORKLOADS[args.workload](args.seed)


def _get_topology(spec: str):
    """Preset name or a path to a topology JSON file."""
    builder = PRESET_TOPOLOGIES.get(spec)
    if builder is not None:
        return builder()
    return load_topology(spec)


def _get_strategy(name: str):
    for strategy in strategy_catalog(include_adaptive=True):
        if strategy.name == name:
            return strategy
    known = [s.name for s in strategy_catalog(include_adaptive=True)]
    raise ContinuumError(f"unknown strategy {name!r}; known: {known}")


def _cmd_topology(args) -> int:
    topo = _get_topology(args.spec)
    print(topo.describe())
    for site in topo.sites:
        spec = ""
        if site.specializations:
            spec = " " + ",".join(
                f"{k}x{v:g}" for k, v in site.specializations.items()
            )
        print(f"  {site.name:<16} {site.tier.name.lower():<7} "
              f"speed={site.speed:g} slots={site.slots}{spec}")
    if args.save:
        save_topology(topo, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_dag(args) -> int:
    dag, externals = PRESET_WORKLOADS[args.workload](args.seed)
    if args.save:
        save_workload(args.save, dag, externals)
        print(f"saved workload to {args.save}")
        return 0
    if args.format == "dot":
        print(dag_to_dot(dag, include_datasets=args.datasets))
    else:
        print(dag_to_mermaid(dag))
    return 0


def _cmd_schedule(args) -> int:
    topo = _get_topology(args.topology)
    dag, externals = _get_workload(args)
    peripheral = [s.name for s in topo.sites if s.tier.is_peripheral]
    sources = peripheral or topo.site_names
    placed = [(d, sources[i % len(sources)]) for i, d in enumerate(externals)]
    strategy = _get_strategy(args.strategy)
    result = ContinuumScheduler(topo, seed=args.seed).run(
        dag, strategy, external_inputs=placed
    )
    row = result.summary_row()
    print(f"workflow {dag.name!r} on {topo.name!r} via {strategy.name!r}:")
    print(f"  makespan   {row['makespan_s']:.3f} s")
    print(f"  data moved {result.bytes_moved:.3g} B")
    print(f"  energy     {result.energy_j:.3g} J")
    print(f"  cost       ${result.total_usd:.4g}")
    slo = slo_report(result.records.values())
    if slo.total:
        print(f"  SLOs       {slo.met}/{slo.total}")
    print()
    print(utilization_table(result))
    print()
    print(ascii_gantt(result))
    return 0


def _run_metrics_registry(args) -> MetricsRegistry | None:
    """A live registry when ``--metrics`` was given, else ``None`` —
    passing ``None`` to the scheduler keeps the ambient (disabled)
    default, so plain runs pay nothing."""
    if not getattr(args, "metrics", None):
        return None
    return MetricsRegistry(keep_timeseries=True)


def _write_metrics_snapshot(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(snapshot_to_json(registry.snapshot()))
    print()
    print(f"metrics snapshot written to {path} "
          f"({len(registry.families())} metric families)")


def _cmd_trace(args) -> int:
    topo = _get_topology(args.topology)
    dag, externals = _get_workload(args)
    peripheral = [s.name for s in topo.sites if s.tier.is_peripheral]
    sources = peripheral or topo.site_names
    placed = [(d, sources[i % len(sources)]) for i, d in enumerate(externals)]
    strategy = _get_strategy(args.strategy)
    tracer = Tracer()
    metrics = _run_metrics_registry(args)
    result = ContinuumScheduler(topo, seed=args.seed).run(
        dag, strategy, external_inputs=placed, tracer=tracer, metrics=metrics
    )
    print(f"workflow {dag.name!r} on {topo.name!r} via {strategy.name!r}: "
          f"makespan {result.makespan:.3f} s, "
          f"{len(tracer.finished())} spans")
    print()
    print(span_summary(tracer))
    print()
    cp = critical_path(result, dag)
    print(critical_path_report(cp))
    if args.out:
        doc = to_chrome_trace(
            tracer, recorder=metrics.timeseries if metrics else None
        )
        validate_chrome_trace(doc)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        print()
        print(f"chrome trace written to {args.out} "
              f"({len(doc['traceEvents'])} events; open in chrome://tracing "
              f"or ui.perfetto.dev)")
    if metrics is not None:
        _write_metrics_snapshot(metrics, args.metrics)
    return 0


CHAOS_POLICIES = {
    "naive": lambda seed: ResiliencePolicy.naive(max_attempts=100),
    "backoff": lambda seed: ResiliencePolicy.backoff(max_attempts=100,
                                                     seed=seed),
    "full": lambda seed: ResiliencePolicy.full(max_attempts=100, seed=seed),
}

# tracer instants the resilience layer and fault injectors emit; the
# chaos command reports how often each recovery action fired
RECOVERY_ACTIONS = (
    "site_down", "site_up", "brownout_begin", "brownout_end",
    "chaos_straggler", "interrupted", "retry_backoff",
    "retry_budget_exhausted", "breaker_open", "breaker_probe",
    "breaker_close", "hedge_launch", "hedge_won", "hedge_lost",
    "attempt_timeout",
)


def _cmd_chaos(args) -> int:
    # validate the campaign/policy names first so a typo dies with a
    # one-line error before any simulation state is built
    campaign = ChaosCampaign.preset(args.intensity, seed=args.seed)
    policy_builder = CHAOS_POLICIES.get(args.policy)
    if policy_builder is None:
        raise ConfigurationError(
            f"unknown recovery policy {args.policy!r}; "
            f"known: {sorted(CHAOS_POLICIES)}"
        )
    topo = _get_topology(args.topology)
    dag, externals = _get_workload(args)
    peripheral = [s.name for s in topo.sites if s.tier.is_peripheral]
    sources = peripheral or topo.site_names
    placed = [(d, sources[i % len(sources)]) for i, d in enumerate(externals)]
    strategy = _get_strategy(args.strategy)
    plan = campaign.build(topo)
    policy = policy_builder(args.seed)
    tracer = Tracer()
    metrics = _run_metrics_registry(args)
    sched = ContinuumScheduler(
        topo, seed=args.seed,
        transfer_failure_prob=plan.transfer_failure_prob,
        transfer_max_attempts=10,
    )
    result = sched.run(
        dag, strategy, external_inputs=placed,
        failures=plan.outages, chaos=plan.task_chaos,
        resilience=policy, task_retries=100, tracer=tracer, metrics=metrics,
    )
    print(f"chaos campaign {args.intensity!r} (seed {args.seed}) on "
          f"{topo.name!r}: {plan.site_outage_count} outages, "
          f"{plan.brownout_count} brownouts, "
          f"{plan.degraded_window_count} degraded windows, "
          f"transfer corruption p={plan.transfer_failure_prob:g}")
    print(f"workflow {dag.name!r} under policy {policy.name!r}: "
          f"makespan {result.makespan:.3f} s, "
          f"{len(result.records)} tasks completed, "
          f"wasted exec {result.wasted_exec_s:.1f} s")
    print()
    print("recovery actions:")
    counts = {}
    for span in tracer.spans:
        counts[span.name] = counts.get(span.name, 0) + 1
    for action in RECOVERY_ACTIONS:
        if counts.get(action):
            print(f"  {action:<24} {counts[action]}")
    stats = result.resilience
    print()
    print("resilience stats: " + ", ".join(
        f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
        for k, v in stats.as_row().items() if k != "policy"
    ))
    if args.out:
        doc = to_chrome_trace(
            tracer, recorder=metrics.timeseries if metrics else None
        )
        validate_chrome_trace(doc)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        print()
        print(f"chrome trace written to {args.out} "
              f"({len(doc['traceEvents'])} events)")
    if metrics is not None:
        _write_metrics_snapshot(metrics, args.metrics)
    return 0


def _cmd_metrics(args) -> int:
    from repro.observe.metrics import SUITE_SCHEMA

    if args.load:
        if args.experiments:
            raise ConfigurationError(
                "--load renders an existing snapshot; experiment ids "
                "cannot be combined with it")
        doc = load_snapshot(args.load)   # one-line errors, nothing runs
        if doc.get("schema") == SUITE_SCHEMA:
            for exp_id in sorted(doc["experiments"]):
                print(to_prometheus(doc["experiments"][exp_id],
                                    extra_labels={"experiment": exp_id}),
                      end="")
        else:
            print(to_prometheus(doc), end="")
        print(f"# {args.load}: valid metrics snapshot", file=sys.stderr)
        return 0

    from repro.bench import EXPERIMENTS
    from repro.bench.runner import run_suite, suite_metrics_doc

    if not args.experiments:
        raise ConfigurationError(
            "name at least one experiment (e.g. 'repro metrics E6') "
            "or pass --load FILE")
    # validate every id before any simulation starts
    selected = []
    for exp_id in args.experiments:
        if exp_id.upper() not in EXPERIMENTS:
            raise ConfigurationError(
                f"unknown experiment {exp_id!r}; known: {list(EXPERIMENTS)}")
        selected.append(exp_id.upper())
    quick = not args.full
    entries = run_suite(selected, quick=quick, seed=args.seed,
                        jobs=args.jobs, use_cache=False,
                        collect_metrics=True)
    for entry in entries:
        print(to_prometheus(entry.metrics,
                            extra_labels={"experiment": entry.experiment_id}),
              end="")
    if args.out:
        doc = suite_metrics_doc(entries, quick=quick, seed=args.seed)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(snapshot_to_json(doc))
        print(f"# metrics snapshot written to {args.out}", file=sys.stderr)
    return 0


def _cmd_bench(bench_argv: list[str]) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(bench_argv)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="continuum computing toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("topology", help="describe a topology")
    p_topo.add_argument("spec",
                        help=f"preset ({', '.join(PRESET_TOPOLOGIES)}) or "
                             f"JSON path")
    p_topo.add_argument("--save", metavar="FILE", default=None)
    p_topo.set_defaults(func=_cmd_topology)

    p_dag = sub.add_parser("dag", help="render a preset workload DAG")
    p_dag.add_argument("workload", choices=sorted(PRESET_WORKLOADS))
    p_dag.add_argument("--format", choices=("dot", "mermaid"), default="dot")
    p_dag.add_argument("--datasets", action="store_true",
                       help="show dataflow through dataset nodes (dot only)")
    p_dag.add_argument("--seed", type=int, default=0)
    p_dag.add_argument("--save", metavar="FILE", default=None,
                       help="save the workload (DAG + externals) as JSON")
    p_dag.set_defaults(func=_cmd_dag)

    p_run = sub.add_parser("schedule", help="run a workload on a topology")
    p_run.add_argument("--topology", default="science-grid")
    p_run.add_argument("--workload", choices=sorted(PRESET_WORKLOADS),
                       default="beamline")
    p_run.add_argument("--dag", metavar="FILE", default=None,
                       help="saved workload JSON (overrides --workload)")
    p_run.add_argument("--strategy", default="heft")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(func=_cmd_schedule)

    p_trace = sub.add_parser(
        "trace", help="run a workload with span tracing; export Chrome trace"
    )
    p_trace.add_argument("--topology", default="science-grid")
    p_trace.add_argument("--workload", choices=sorted(PRESET_WORKLOADS),
                         default="beamline")
    p_trace.add_argument("--dag", metavar="FILE", default=None,
                         help="saved workload JSON (overrides --workload)")
    p_trace.add_argument("--strategy", default="heft")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", metavar="FILE", default="trace.json",
                         help="Chrome trace-event JSON path ('' to skip)")
    p_trace.add_argument("--metrics", metavar="FILE", default=None,
                         help="also collect run metrics: write the JSON "
                              "snapshot to FILE and interleave gauge "
                              "timeseries as counter events in --out")
    p_trace.set_defaults(func=_cmd_trace)

    p_chaos = sub.add_parser(
        "chaos", help="run a workload under a seeded chaos campaign"
    )
    p_chaos.add_argument("--topology", default="science-grid")
    p_chaos.add_argument("--workload", choices=sorted(PRESET_WORKLOADS),
                         default="layered")
    p_chaos.add_argument("--dag", metavar="FILE", default=None,
                         help="saved workload JSON (overrides --workload)")
    p_chaos.add_argument("--strategy", default="greedy-eft")
    # free-form on purpose: the library validates and rejects unknown
    # names with a one-line error naming the known values, which also
    # covers programmatic callers that bypass argparse
    p_chaos.add_argument("--intensity", default="medium", metavar="NAME",
                         help=f"campaign intensity preset "
                              f"(known: {', '.join(CAMPAIGN_INTENSITIES)})")
    p_chaos.add_argument("--policy", default="full", metavar="NAME",
                         help=f"recovery policy "
                              f"(known: {', '.join(sorted(CHAOS_POLICIES))})")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--out", metavar="FILE", default=None,
                         help="also export a Chrome trace-event JSON")
    p_chaos.add_argument("--metrics", metavar="FILE", default=None,
                         help="also collect run metrics: write the JSON "
                              "snapshot to FILE and interleave gauge "
                              "timeseries as counter events in --out")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_metrics = sub.add_parser(
        "metrics",
        help="run experiments with metrics enabled and print Prometheus "
             "text (or validate an existing snapshot with --load)",
    )
    p_metrics.add_argument("experiments", nargs="*",
                           help="experiment ids (e.g. E6 E13)")
    p_metrics.add_argument("--full", action="store_true",
                           help="full sweeps (default: quick)")
    p_metrics.add_argument("--seed", type=int, default=0)
    p_metrics.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="worker processes to shard across")
    p_metrics.add_argument("--out", metavar="FILE", default=None,
                           help="also write the canonical JSON suite "
                                "snapshot to FILE")
    p_metrics.add_argument("--load", metavar="FILE", default=None,
                           help="validate + render an existing metrics "
                                "snapshot instead of running anything")
    p_metrics.set_defaults(func=_cmd_metrics)

    sub.add_parser(
        "bench",
        help="run the E1-E14 experiment suite (supports --jobs N for "
             "parallel sharding and a content-addressed result cache); "
             "all following arguments are forwarded to repro.bench",
    )

    # `bench` forwards its entire tail (including option flags, which
    # argparse.REMAINDER mishandles) to the suite runner's own parser.
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw and raw[0] == "bench":
        return _cmd_bench(raw[1:])

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ContinuumError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
