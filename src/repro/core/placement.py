"""Result records of a scheduled workflow run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.policy import ResilienceStats
from repro.utils.stats import summarize


class PlacementDecision:
    """One strategy decision, as made (estimates at decision time).

    A plain ``__slots__`` record rather than a frozen dataclass: one is
    constructed per placed task on the dispatch hot path, where the
    frozen ``__setattr__`` detour was a measurable slice of the profile.
    Equality and hashing compare all six fields, as the dataclass did —
    the wave-vs-scalar differential relies on decision equality being
    exact."""

    __slots__ = ("task", "site", "decided_at", "est_stage_s",
                 "est_exec_s", "est_finish")

    def __init__(self, task: str, site: str, decided_at: float,
                 est_stage_s: float, est_exec_s: float, est_finish: float):
        self.task = task
        self.site = site
        self.decided_at = decided_at
        self.est_stage_s = est_stage_s
        self.est_exec_s = est_exec_s
        self.est_finish = est_finish

    def _astuple(self) -> tuple:
        return (self.task, self.site, self.decided_at,
                self.est_stage_s, self.est_exec_s, self.est_finish)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PlacementDecision):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (f"PlacementDecision(task={self.task!r}, site={self.site!r}, "
                f"decided_at={self.decided_at!r}, "
                f"est_stage_s={self.est_stage_s!r}, "
                f"est_exec_s={self.est_exec_s!r}, "
                f"est_finish={self.est_finish!r})")


@dataclass
class TaskRecord:
    """Measured lifecycle of one task in a run."""

    task: str
    site: str
    kind: str = "generic"
    ready_at: float = 0.0
    stage_started: float = 0.0
    stage_finished: float = 0.0
    exec_started: float = 0.0
    exec_finished: float = 0.0
    bytes_staged: float = 0.0
    energy_j: float = 0.0
    compute_usd: float = 0.0
    deadline_s: float | None = None
    attempts: int = 1

    @property
    def stage_time(self) -> float:
        return self.stage_finished - self.stage_started

    @property
    def queue_time(self) -> float:
        """Waiting for a worker slot after inputs arrived."""
        return self.exec_started - self.stage_finished

    @property
    def exec_time(self) -> float:
        return self.exec_finished - self.exec_started

    @property
    def turnaround(self) -> float:
        """Ready-to-finished latency."""
        return self.exec_finished - self.ready_at

    @property
    def met_deadline(self) -> bool | None:
        """Deadline verdict (finish measured from workflow t=0), or None
        when the task has no deadline."""
        if self.deadline_s is None:
            return None
        return self.exec_finished <= self.deadline_s


@dataclass
class ScheduleResult:
    """Everything a benchmark needs from one workflow execution."""

    workflow: str
    strategy: str
    makespan: float
    records: dict[str, TaskRecord]
    decisions: list[PlacementDecision]
    bytes_moved: float
    transfer_usd: float
    compute_usd: float
    energy_j: float
    site_busy_s: dict[str, float] = field(default_factory=dict)
    interruptions: int = 0       # task executions cut short by outages
    wasted_exec_s: float = 0.0   # execution seconds lost to interrupts
    resilience: ResilienceStats | None = None   # recovery-action accounting
    control: object | None = None   # ControlPlaneStats when replicated metadata
                                    # served this run (None on single-copy runs)

    @property
    def total_usd(self) -> float:
        return self.transfer_usd + self.compute_usd

    @property
    def task_count(self) -> int:
        return len(self.records)

    def tasks_at(self, site: str) -> list[str]:
        return [name for name, r in self.records.items() if r.site == site]

    def deadline_stats(self) -> tuple[int, int]:
        """``(met, total_with_deadline)``."""
        verdicts = [r.met_deadline for r in self.records.values()
                    if r.met_deadline is not None]
        return sum(verdicts), len(verdicts)

    def summary_row(self) -> dict:
        """One benchmark-table row (E2's columns)."""
        met, slo_total = self.deadline_stats()
        turnarounds = [r.turnaround for r in self.records.values()]
        return {
            "strategy": self.strategy,
            "makespan_s": self.makespan,
            "bytes_moved": self.bytes_moved,
            "energy_j": self.energy_j,
            "cost_usd": self.total_usd,
            "mean_turnaround_s": summarize(turnarounds).mean,
            "slo_met": f"{met}/{slo_total}" if slo_total else "-",
        }
