"""The continuum scheduler: execute workflow DAGs on a simulated continuum.

Two entry points share one engine:

- :meth:`ContinuumScheduler.run` — one DAG, returns a
  :class:`ScheduleResult` (measured makespan, data movement, energy,
  dollars, per-task lifecycles),
- :meth:`ContinuumScheduler.run_stream` — many DAGs arriving over time
  (the online continuum), returns a :class:`StreamResult` with per-job
  response times on top of the aggregate accounting.

Execution semantics per task:

1. becomes *ready* when all dependencies complete (and its job arrived),
2. the strategy picks a site (``pinned_site`` overrides),
3. all missing inputs stage to that site concurrently (shared flows
   dedupe via the transfer service),
4. the task queues for a worker slot, executes for
   ``work / site.effective_speed(kind)``, and
5. its outputs register as replicas at the site, releasing dependents.

Failure injection (an :class:`OutageSchedule`) interrupts staging/running
tasks at a dark site; they are re-placed by the strategy with bounded
retries, and link brownouts degrade live network capacity while planner
estimates stay stale. Site *storage* survives compute outages (replicas
remain fetchable).

Estimates used by strategies come from the same cost model but ignore
network contention — the planned-vs-measured gap is real and intended.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.continuum.topology import Topology
from repro.core.context import SchedulingContext
from repro.core.placement import PlacementDecision, ScheduleResult, TaskRecord
from repro.core.strategies.base import PlacementStrategy
from repro.datafabric.catalog import ReplicaCatalog
from repro.datafabric.dataset import Dataset
from repro.datafabric.transfer import TransferService
from repro.errors import SchedulingError
from repro.faults.outages import OutageSchedule, SiteOutage
from repro.netsim.network import FlowNetwork
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.simcore.monitor import Monitor
from repro.simcore.process import AllOf, Interrupt, Timeout
from repro.simcore.resources import Resource
from repro.simcore.simulation import Simulator
from repro.utils.rng import RngRegistry
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskSpec


@dataclass(frozen=True)
class StreamJob:
    """One workflow instance in an online stream."""

    arrival_s: float
    dag: WorkflowDAG
    external_inputs: tuple = ()

    def __post_init__(self):
        if self.arrival_s < 0:
            raise SchedulingError(
                f"arrival_s must be >= 0, got {self.arrival_s}"
            )


@dataclass
class JobResult:
    """Per-job outcome within a stream run."""

    name: str
    arrival_s: float
    finished_s: float
    task_count: int

    @property
    def response_time(self) -> float:
        return self.finished_s - self.arrival_s


@dataclass
class StreamResult:
    """Outcome of an online stream of workflows."""

    strategy: str
    jobs: list[JobResult]
    records: dict[str, TaskRecord]
    bytes_moved: float
    transfer_usd: float
    compute_usd: float
    energy_j: float
    interruptions: int = 0
    wasted_exec_s: float = 0.0

    @property
    def last_finish(self) -> float:
        return max((j.finished_s for j in self.jobs), default=0.0)

    @property
    def mean_response_time(self) -> float:
        if not self.jobs:
            return float("nan")
        return sum(j.response_time for j in self.jobs) / len(self.jobs)


class ContinuumScheduler:
    """Reusable runner: one topology, many executions."""

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        transfer_failure_prob: float = 0.0,
        transfer_max_attempts: int = 3,
        candidate_sites: list[str] | None = None,
    ):
        topology.validate()
        self.topology = topology
        self.seed = seed
        self.transfer_failure_prob = transfer_failure_prob
        self.transfer_max_attempts = transfer_max_attempts
        self.candidate_sites = candidate_sites

    # -- public API ----------------------------------------------------------------
    def run(
        self,
        dag: WorkflowDAG,
        strategy: PlacementStrategy,
        *,
        external_inputs: Iterable[tuple[Dataset, str]] = (),
        failures: OutageSchedule | None = None,
        task_retries: int = 2,
        until: float | None = None,
        tracer: Tracer | None = None,
    ) -> ScheduleResult:
        """Execute one ``dag`` under ``strategy``.

        ``external_inputs`` provides (dataset, site) pairs for every
        dataset the DAG consumes but does not produce. Raises
        :class:`SchedulingError` on missing externals or failed tasks.
        Pass a :class:`~repro.observe.Tracer` to record per-task,
        per-transfer, and fault-injection spans; tracing never changes
        the schedule (it only reads the clock).
        """
        dag.validate()
        job = StreamJob(0.0, dag, tuple(external_inputs))
        run = _Run(self, [job], strategy,
                   failures=failures, task_retries=task_retries,
                   tracer=tracer)
        run.execute(until=until)
        return run.single_result()

    def run_stream(
        self,
        jobs: Iterable[StreamJob],
        strategy: PlacementStrategy,
        *,
        failures: OutageSchedule | None = None,
        task_retries: int = 2,
        until: float | None = None,
        tracer: Tracer | None = None,
    ) -> StreamResult:
        """Execute an online stream of workflow instances.

        Jobs become schedulable at their arrival times and share the
        continuum (and its queues) — the setting where offered load,
        not just placement quality, drives response times. Task names
        and dataset names must be unique across all jobs (use per-job
        name prefixes, as the workload builders do).
        """
        job_list = sorted(jobs, key=lambda j: j.arrival_s)
        if not job_list:
            raise SchedulingError("run_stream needs at least one job")
        for job in job_list:
            job.dag.validate()
        run = _Run(self, job_list, strategy,
                   failures=failures, task_retries=task_retries,
                   tracer=tracer)
        run.execute(until=until)
        return run.stream_result()


class _Run:
    """Single-execution state (kept off the reusable scheduler)."""

    def __init__(self, sched: ContinuumScheduler, jobs: list[StreamJob],
                 strategy: PlacementStrategy,
                 failures: OutageSchedule | None = None,
                 task_retries: int = 2,
                 tracer: Tracer | None = None):
        self.jobs = jobs
        self.strategy = strategy
        self.failures = failures
        if task_retries < 0:
            raise SchedulingError(f"task_retries must be >= 0, got {task_retries}")
        self.task_retries = task_retries
        self.sim = Simulator()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None:
            tracer.bind(lambda: self.sim.now)
        self.monitor = Monitor(self.sim)
        self.monitor.tracer = self.tracer
        self.rngs = RngRegistry(sched.seed)
        self.network = FlowNetwork(self.sim, sched.topology,
                                   monitor=self.monitor)
        self.catalog = ReplicaCatalog()
        self.transfers = TransferService(
            self.sim, self.network, self.catalog,
            failure_prob=sched.transfer_failure_prob,
            max_attempts=sched.transfer_max_attempts,
            rngs=self.rngs,
        )
        self.ctx = SchedulingContext(
            sched.topology, self.catalog, rngs=self.rngs,
            candidate_sites=sched.candidate_sites,
        )
        self.resources = {
            site.name: Resource(self.sim, site.slots, name=site.name)
            for site in self.ctx.candidates
        }
        # cross-job task bookkeeping (names must be globally unique)
        self._dag_of: dict[str, WorkflowDAG] = {}
        self._job_of: dict[str, int] = {}
        self.remaining: dict[str, int] = {}
        for idx, job in enumerate(jobs):
            for name in job.dag.task_names:
                if name in self._dag_of:
                    raise SchedulingError(
                        f"duplicate task name {name!r} across stream jobs"
                    )
                self._dag_of[name] = job.dag
                self._job_of[name] = idx
                self.remaining[name] = len(job.dag.dependencies(name))
        self._job_pending = [len(job.dag) for job in jobs]
        self._job_finish = [0.0 for _ in jobs]
        self._register_datasets()

        self.ready: list[TaskSpec] = []
        self._dispatch_scheduled = False
        self.records: dict[str, TaskRecord] = {}
        self.decisions: list[PlacementDecision] = []
        self.failed_tasks: dict[str, BaseException] = {}
        self.compute_usd = 0.0
        self.energy_j = 0.0
        self.site_busy: dict[str, float] = {s.name: 0.0 for s in self.ctx.candidates}
        self.attempts: dict[str, int] = {n: 0 for n in self._dag_of}
        self._active_at: dict[str, tuple] = {}   # task -> (Process, site)
        self.interruptions = 0
        self.wasted_exec_s = 0.0
        # failure-injection state: overlapping outages of one site are
        # reference-counted (the site stays dark until every active
        # outage has ended); brownout factors per link are stacked and
        # applied to the topology's *base* bandwidth, so restoration is
        # bit-exact no matter how outages and brownouts interleave
        self._down_depth: dict[str, int] = {}
        self._brownout_factors: dict[frozenset, list[float]] = {}
        if failures is not None:
            failures.validate_against(sched.topology)

    def _register_datasets(self) -> None:
        """Register every dataset definition up front; external replicas
        appear at each job's arrival, outputs when produced."""
        for job in self.jobs:
            provided = set()
            for dataset, site in job.external_inputs:
                if site not in self.ctx.topology:
                    raise SchedulingError(
                        f"external input {dataset.name!r} placed at unknown "
                        f"site {site!r}"
                    )
                self.catalog.register(dataset)
                provided.add(dataset.name)
            missing = job.dag.external_inputs() - provided
            if missing:
                raise SchedulingError(
                    f"external inputs without a source site: {sorted(missing)}"
                )
            for task in job.dag.tasks:
                for out in task.outputs:
                    self.catalog.register(out)

    # -- main loop --------------------------------------------------------------------
    def execute(self, until: float | None = None) -> None:
        self._arm_failures()
        for idx, job in enumerate(self.jobs):
            self.sim.schedule_at(job.arrival_s, self._job_arrives, idx)
        self.sim.run(until=until)

        if self.failed_tasks:
            failed = ", ".join(sorted(self.failed_tasks))
            raise SchedulingError(
                f"tasks failed during run: {failed}"
            ) from next(iter(self.failed_tasks.values()))
        unfinished = [n for n in self._dag_of if n not in self.records]
        if unfinished:
            raise SchedulingError(
                f"run ended with unfinished tasks: {sorted(unfinished)} "
                f"(until-limit too small or deadlocked staging)"
            )

    def _job_arrives(self, idx: int) -> None:
        job = self.jobs[idx]
        for dataset, site in job.external_inputs:
            self.catalog.add_replica(dataset.name, site, time=self.sim.now)
        self.ctx.set_now(self.sim.now)
        self.strategy.prepare(job.dag, self.ctx)
        for name in job.dag.task_names:
            if self.remaining[name] == 0:
                self.ready.append(job.dag.task(name))
                self.tracer.instant("ready", "scheduler", task=name)
        self._schedule_dispatch()

    # -- results --------------------------------------------------------------------
    def single_result(self) -> ScheduleResult:
        job = self.jobs[0]
        makespan = max(
            (r.exec_finished for r in self.records.values()), default=0.0
        )
        return ScheduleResult(
            workflow=job.dag.name,
            strategy=self.strategy.name,
            makespan=makespan,
            records=self.records,
            decisions=self.decisions,
            bytes_moved=self.network.total_bytes_moved,
            transfer_usd=self.network.total_transfer_cost_usd,
            compute_usd=self.compute_usd,
            energy_j=self.energy_j,
            site_busy_s=self.site_busy,
            interruptions=self.interruptions,
            wasted_exec_s=self.wasted_exec_s,
        )

    def stream_result(self) -> StreamResult:
        jobs = [
            JobResult(
                name=job.dag.name,
                arrival_s=job.arrival_s,
                finished_s=self._job_finish[idx],
                task_count=len(job.dag),
            )
            for idx, job in enumerate(self.jobs)
        ]
        return StreamResult(
            strategy=self.strategy.name,
            jobs=jobs,
            records=self.records,
            bytes_moved=self.network.total_bytes_moved,
            transfer_usd=self.network.total_transfer_cost_usd,
            compute_usd=self.compute_usd,
            energy_j=self.energy_j,
            interruptions=self.interruptions,
            wasted_exec_s=self.wasted_exec_s,
        )

    # -- failure injection ---------------------------------------------------------
    def _arm_failures(self) -> None:
        if self.failures is None or self.failures.empty:
            return
        for outage in self.failures.site_outages:
            self.sim.schedule_at(outage.start_s, self._site_down, outage)
            self.sim.schedule_at(outage.end_s, self._site_up, outage.site)
        for brownout in self.failures.link_brownouts:
            self.sim.schedule_at(brownout.start_s, self._brownout,
                                 brownout, True)
            self.sim.schedule_at(brownout.end_s, self._brownout,
                                 brownout, False)

    def _site_down(self, outage: SiteOutage) -> None:
        self._down_depth[outage.site] = self._down_depth.get(outage.site, 0) + 1
        self.tracer.instant("site_down", "fault", site=outage.site,
                            depth=self._down_depth[outage.site])
        if outage.site in self.ctx._slots:
            self.ctx.mark_down(outage.site)
        victims = [
            (name, proc) for name, (proc, site) in self._active_at.items()
            if site == outage.site
        ]
        for _name, proc in victims:
            proc.interrupt(cause=f"outage@{outage.site}")

    def _site_up(self, site: str) -> None:
        # overlapping outages are reference-counted: the site recovers
        # only when its *last* active outage ends
        depth = self._down_depth.get(site, 1) - 1
        self._down_depth[site] = depth
        self.tracer.instant("site_up", "fault", site=site, depth=depth)
        if depth > 0:
            return
        self.ctx.mark_up(site)
        if self.ready:
            self._schedule_dispatch()

    def _brownout(self, brownout, begin: bool) -> None:
        # apply the product of all active factors to the *base* link
        # bandwidth: composes with overlaps and restores bit-exactly
        # (never round-trips the live value through a division)
        key = frozenset((brownout.a, brownout.b))
        factors = self._brownout_factors.setdefault(key, [])
        if begin:
            factors.append(brownout.factor)
        else:
            factors.remove(brownout.factor)
        bandwidth = self.network.topology.link(brownout.a,
                                               brownout.b).bandwidth_Bps
        for factor in factors:
            bandwidth *= factor
        self.tracer.instant(
            "brownout_begin" if begin else "brownout_end", "fault",
            link=f"{brownout.a}--{brownout.b}", factor=brownout.factor,
            bandwidth_Bps=bandwidth,
        )
        self.network.set_link_bandwidth(brownout.a, brownout.b, bandwidth)

    # -- dispatch --------------------------------------------------------------------
    def _schedule_dispatch(self) -> None:
        if not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self.sim.schedule(0.0, self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        if not self.ready:
            return
        self.ctx.set_now(self.sim.now)
        if not self.ctx.candidates:
            # every candidate site is dark: hold the ready set until a
            # recovery event re-triggers dispatch
            return
        batch, self.ready = self.ready, []
        for task in self.strategy.prioritize(batch, self.ctx):
            if task.pinned_site and self.ctx.is_down(task.pinned_site):
                # pinned to a dark site: hold until it recovers
                self.ready.append(task)
                continue
            try:
                site_name = task.pinned_site or self.strategy.select_site(
                    task, self.ctx
                )
            except SchedulingError:
                if self.failures is not None:
                    # transiently unplaceable (e.g. the strategy's whole
                    # tier is dark): hold until a recovery event
                    self.ready.append(task)
                    continue
                raise
            if site_name not in self.resources:
                raise SchedulingError(
                    f"strategy chose non-candidate site {site_name!r} "
                    f"for task {task.name!r}"
                )
            est, est_finish = self.ctx.estimate_finish(
                task, self.ctx.site(site_name)
            )
            self.ctx.reserve(site_name, est_finish)
            decision = PlacementDecision(
                task=task.name, site=site_name, decided_at=self.sim.now,
                est_stage_s=est.stage_time_s, est_exec_s=est.exec_time_s,
                est_finish=est_finish,
            )
            self.decisions.append(decision)
            proc = self.sim.process(
                self._task_proc(task, site_name, decision),
                name=f"task:{task.name}",
            )
            self._active_at[task.name] = (proc, site_name)

    def _task_proc(self, task: TaskSpec, site_name: str,
                   decision: PlacementDecision):
        site = self.ctx.site(site_name)
        self.attempts[task.name] += 1
        record = TaskRecord(
            task=task.name, site=site_name, kind=task.kind,
            ready_at=self.sim.now, deadline_s=task.deadline_s,
            attempts=self.attempts[task.name],
        )
        tracer = self.tracer
        tspan = tracer.begin(
            f"task:{task.name}", "task", site=site_name, kind=task.kind,
            attempt=self.attempts[task.name],
            est_stage_s=decision.est_stage_s,
            est_exec_s=decision.est_exec_s,
            est_finish=decision.est_finish,
        )
        phase = None   # the open child span, closed on interrupt/failure
        req = None
        exec_started = False
        try:
            record.stage_started = self.sim.now
            phase = tracer.begin("stage", "stage", parent=tspan)
            if task.inputs:
                results = yield AllOf(
                    [self.transfers.stage(name, site_name) for name in task.inputs]
                )
                record.bytes_staged = sum(r.bytes_moved for r in results)
            record.stage_finished = self.sim.now
            tracer.end(phase, bytes=record.bytes_staged)

            phase = tracer.begin("queue", "queue", parent=tspan)
            req = self.resources[site_name].request()
            yield req
            tracer.end(phase)
            record.exec_started = self.sim.now
            exec_started = True
            phase = tracer.begin("exec", "exec", parent=tspan)
            exec_time = site.service_time(task.work, kind=task.kind)
            if exec_time > 0:
                yield Timeout(exec_time)
            self.resources[site_name].release(req)
            req = None
            record.exec_finished = self.sim.now
            tracer.end(phase)
            tracer.end(tspan)
        except Interrupt as intr:
            tracer.end(phase, status="interrupted")
            tracer.end(tspan, status="interrupted", cause=intr.cause)
            self._on_interrupt(task, site_name, record, req, exec_started, intr)
            return
        except Exception as exc:  # noqa: BLE001 - recorded, re-raised at end
            tracer.end(phase, status="failed")
            tracer.end(tspan, status="failed", error=repr(exc))
            self._active_at.pop(task.name, None)
            self.failed_tasks[task.name] = exc
            return
        self._active_at.pop(task.name, None)

        record.energy_j = site.power.marginal_energy(record.exec_time)
        record.compute_usd = site.pricing.compute_cost(record.exec_time)
        self.energy_j += record.energy_j
        self.compute_usd += record.compute_usd
        self.site_busy[site_name] += record.exec_time
        self.records[task.name] = record
        for out in task.outputs:
            self.catalog.add_replica(out.name, site_name, time=self.sim.now)
        self.strategy.observe(record, self.ctx)

        job_idx = self._job_of[task.name]
        self._job_pending[job_idx] -= 1
        if self._job_pending[job_idx] == 0:
            self._job_finish[job_idx] = self.sim.now

        dag = self._dag_of[task.name]
        for dependent in dag.dependents(task.name):
            self.remaining[dependent] -= 1
            if self.remaining[dependent] == 0:
                self.ready.append(dag.task(dependent))
                self.tracer.instant("ready", "scheduler", task=dependent)
                self._schedule_dispatch()

    def _on_interrupt(self, task: TaskSpec, site_name: str,
                      record: TaskRecord, req, exec_started: bool,
                      intr: Interrupt) -> None:
        """An outage cut this attempt short: clean up and re-place."""
        self._active_at.pop(task.name, None)
        self.interruptions += 1
        self.tracer.instant(
            "interrupted", "scheduler", task=task.name, site=site_name,
            cause=intr.cause,
            wasted_s=(self.sim.now - record.exec_started
                      if exec_started else 0.0),
        )
        if req is not None:
            self.resources[site_name].cancel(req)
        if exec_started:
            wasted = self.sim.now - record.exec_started
            self.wasted_exec_s += wasted
            self.site_busy[site_name] += wasted  # the slot really burned
            site = self.ctx.site(site_name)
            self.energy_j += site.power.marginal_energy(wasted)
        if self.attempts[task.name] > self.task_retries:
            self.failed_tasks[task.name] = SchedulingError(
                f"task {task.name!r} interrupted {self.attempts[task.name]} "
                f"times (cause: {intr.cause}); retries exhausted"
            )
            return
        self.ready.append(task)
        self.tracer.instant("ready", "scheduler", task=task.name,
                            requeued_after=intr.cause)
        self._schedule_dispatch()
