"""The continuum scheduler: execute workflow DAGs on a simulated continuum.

Two entry points share one engine:

- :meth:`ContinuumScheduler.run` — one DAG, returns a
  :class:`ScheduleResult` (measured makespan, data movement, energy,
  dollars, per-task lifecycles),
- :meth:`ContinuumScheduler.run_stream` — many DAGs arriving over time
  (the online continuum), returns a :class:`StreamResult` with per-job
  response times on top of the aggregate accounting.

Execution semantics per task:

1. becomes *ready* when all dependencies complete (and its job arrived),
2. the strategy picks a site (``pinned_site`` overrides),
3. all missing inputs stage to that site concurrently (shared flows
   dedupe via the transfer service),
4. the task queues for a worker slot, executes for
   ``work / site.effective_speed(kind)``, and
5. its outputs register as replicas at the site, releasing dependents.

Failure injection (an :class:`OutageSchedule`) interrupts staging/running
tasks at a dark site; they are re-placed by the strategy, and link
brownouts degrade live network capacity while planner estimates stay
stale. Site *storage* survives compute outages (replicas remain
fetchable). A :class:`~repro.faults.TaskChaos` injector additionally
fails or slows individual execution attempts on a deterministic
per-(task, attempt, site) key.

How failed attempts are *re-tried* is policy. Without a
:class:`~repro.resilience.ResiliencePolicy` the scheduler keeps its
seed behaviour: immediate requeue with at most ``task_retries``
retries. With one, recovery is governed end to end: exponential
backoff with seeded jitter and a run-wide fast-retry budget, per-site
circuit breakers consulted at placement (open circuits are hidden from
strategies; half-open circuits admit one probe), per-attempt timeouts
derived from the planner estimate, and speculative hedging that races
a straggling attempt against a duplicate on another site and cancels
the loser. Every recovery action is emitted as an ``observe`` span and
counted in :class:`~repro.resilience.ResilienceStats` on the result;
hedged duplicates are tracked attempt-by-attempt so makespan,
utilization, and wasted-work accounting stay exact.

Estimates used by strategies come from the same cost model but ignore
network contention — the planned-vs-measured gap is real and intended.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from dataclasses import dataclass

from repro.continuum.topology import Topology
from repro.controlplane.cluster import ControlPlaneConfig
from repro.controlplane.runtime import ControlRuntime
from repro.core.context import SchedulingContext
from repro.core.placement import PlacementDecision, ScheduleResult, TaskRecord
from repro.core.refdispatch import scalar_dispatch
from repro.core.strategies.base import PlacementStrategy
from repro.datafabric.catalog import ReplicaCatalog
from repro.datafabric.dataset import Dataset
from repro.datafabric.transfer import TransferService
from repro.errors import DataFabricError, SchedulingError
from repro.faults.campaign import TaskChaos
from repro.faults.outages import OutageSchedule, SiteOutage
from repro.faults.partitions import PartitionSchedule
from repro.netsim.network import FlowNetwork
from repro.observe.metrics import MetricsRegistry, current_registry
from repro.observe.recorder import MetricsRecorder
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.resilience.breaker import BreakerState
from repro.resilience.policy import ResiliencePolicy, ResilienceStats
from repro.simcore.monitor import Monitor
from repro.simcore.process import AllOf, Interrupt, Timeout
from repro.simcore.resources import Resource
from repro.simcore.simulation import Simulator
from repro.utils.rng import RngRegistry
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskSpec


class _TransientFault(Exception):
    """Internal: a chaos-injected mid-execution task fault."""

    def __init__(self, cause: str):
        self.cause = cause
        super().__init__(cause)


def wave_dispatch(run, batch, vetoed) -> None:
    """Place one ready batch through the strategy's wave protocol.

    ``select_sites`` yields placements in the same order the scalar loop
    produced them; reserving between ``next()`` calls keeps the
    sequential EFT semantics, so the decision stream is bit-identical to
    :func:`~repro.core.refdispatch.scalar_dispatch` — the speedup comes
    from the memoized cost rows and incrementally-maintained
    availability vectors underneath, not from reordering. Module-level
    (like its scalar twin) so ``benchmarks/bench_scheduler.py`` can
    drive both engines against one placement harness.
    """
    for task, choice in run.strategy.select_sites(batch, run.ctx):
        if task.pinned_site and run.ctx.is_down(task.pinned_site):
            # pinned to a dark site: hold until it recovers
            # (pins override breaker vetoes — there is no choice)
            run.ready.append(task)
            continue
        if isinstance(choice, SchedulingError):
            if run.failures is not None or vetoed:
                # transiently unplaceable (e.g. the strategy's whole
                # tier is dark or vetoed): hold until recovery
                run.ready.append(task)
                continue
            raise choice
        site_name = choice
        if site_name not in run.resources:
            raise SchedulingError(
                f"strategy chose non-candidate site {site_name!r} "
                f"for task {task.name!r}"
            )
        stage_s, exec_s, est_finish = run.ctx.estimate_finish_at(
            task, site_name
        )
        run.ctx.reserve(site_name, est_finish)
        decision = PlacementDecision(
            task=task.name, site=site_name, decided_at=run.sim.now,
            est_stage_s=stage_s, est_exec_s=exec_s,
            est_finish=est_finish,
        )
        run.decisions.append(decision)
        if run._m_decisions is not None:
            run._m_decisions.labels(
                site=site_name, strategy=run.strategy.name).inc()
        run._start_attempt(task, site_name, decision)


@dataclass(frozen=True)
class StreamJob:
    """One workflow instance in an online stream."""

    arrival_s: float
    dag: WorkflowDAG
    external_inputs: tuple = ()

    def __post_init__(self):
        if self.arrival_s < 0:
            raise SchedulingError(
                f"arrival_s must be >= 0, got {self.arrival_s}"
            )


@dataclass
class JobResult:
    """Per-job outcome within a stream run."""

    name: str
    arrival_s: float
    finished_s: float
    task_count: int

    @property
    def response_time(self) -> float:
        return self.finished_s - self.arrival_s


@dataclass
class StreamResult:
    """Outcome of an online stream of workflows."""

    strategy: str
    jobs: list[JobResult]
    records: dict[str, TaskRecord]
    bytes_moved: float
    transfer_usd: float
    compute_usd: float
    energy_j: float
    interruptions: int = 0
    wasted_exec_s: float = 0.0
    resilience: ResilienceStats | None = None
    control: object | None = None   # ControlPlaneStats on replicated runs

    @property
    def last_finish(self) -> float:
        return max((j.finished_s for j in self.jobs), default=0.0)

    @property
    def mean_response_time(self) -> float:
        if not self.jobs:
            return float("nan")
        return sum(j.response_time for j in self.jobs) / len(self.jobs)


class ContinuumScheduler:
    """Reusable runner: one topology, many executions."""

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        transfer_failure_prob: float = 0.0,
        transfer_max_attempts: int = 3,
        candidate_sites: list[str] | None = None,
        dispatch: str | None = None,
    ):
        topology.validate()
        self.topology = topology
        self.seed = seed
        self.transfer_failure_prob = transfer_failure_prob
        self.transfer_max_attempts = transfer_max_attempts
        self.candidate_sites = candidate_sites
        # placement engine: "wave" (default) places a ready batch through
        # strategy.select_sites with memoized cost rows; "scalar" runs
        # the frozen pre-wave loop with the memo disabled — the oracle
        # the differential tests and CI smoke diff compare against. The
        # REPRO_DISPATCH env var flips the default without code changes.
        if dispatch is None:
            dispatch = os.environ.get("REPRO_DISPATCH", "wave")
        if dispatch not in ("wave", "scalar"):
            raise SchedulingError(
                f"dispatch must be 'wave' or 'scalar', got {dispatch!r}"
            )
        self.dispatch = dispatch

    # -- public API ----------------------------------------------------------------
    def run(
        self,
        dag: WorkflowDAG,
        strategy: PlacementStrategy,
        *,
        external_inputs: Iterable[tuple[Dataset, str]] = (),
        failures: OutageSchedule | None = None,
        chaos: TaskChaos | None = None,
        resilience: ResiliencePolicy | None = None,
        task_retries: int = 2,
        until: float | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        control: ControlPlaneConfig | None = None,
        partitions: PartitionSchedule | None = None,
    ) -> ScheduleResult:
        """Execute one ``dag`` under ``strategy``.

        ``external_inputs`` provides (dataset, site) pairs for every
        dataset the DAG consumes but does not produce. Raises
        :class:`SchedulingError` on missing externals or failed tasks.
        ``failures`` injects site outages and link brownouts; ``chaos``
        injects per-attempt transient faults and stragglers;
        ``resilience`` selects the recovery policy (``None`` keeps the
        legacy immediate-requeue behaviour with ``task_retries``
        retries). Pass a :class:`~repro.observe.Tracer` to record
        per-task, per-transfer, fault-injection, and recovery spans;
        tracing never changes the schedule (it only reads the clock).
        ``metrics`` selects the registry run counters/histograms are
        emitted into (default: the ambient registry installed with
        :func:`repro.observe.use_registry`, disabled unless one is
        installed); like tracing, metrics are zero-interference.

        ``control`` opts the run into the replicated control plane: all
        metadata reads (placement rounds, transfer sources) go through
        the configured read mode, every replica mutation becomes a
        replicated write, and the result carries ``ControlPlaneStats``.
        ``partitions`` (requires ``control``) splits the control sites
        per the schedule. With ``control=None`` (the default) the
        single-copy path runs bit-identically to previous releases.
        """
        dag.validate()
        job = StreamJob(0.0, dag, tuple(external_inputs))
        run = _Run(self, [job], strategy,
                   failures=failures, chaos=chaos, resilience=resilience,
                   task_retries=task_retries, tracer=tracer,
                   metrics=metrics, control=control, partitions=partitions)
        run.execute(until=until)
        return run.single_result()

    def run_stream(
        self,
        jobs: Iterable[StreamJob],
        strategy: PlacementStrategy,
        *,
        failures: OutageSchedule | None = None,
        chaos: TaskChaos | None = None,
        resilience: ResiliencePolicy | None = None,
        task_retries: int = 2,
        until: float | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        control: ControlPlaneConfig | None = None,
        partitions: PartitionSchedule | None = None,
    ) -> StreamResult:
        """Execute an online stream of workflow instances.

        Jobs become schedulable at their arrival times and share the
        continuum (and its queues) — the setting where offered load,
        not just placement quality, drives response times. Task names
        and dataset names must be unique across all jobs (use per-job
        name prefixes, as the workload builders do).
        """
        job_list = sorted(jobs, key=lambda j: j.arrival_s)
        if not job_list:
            raise SchedulingError("run_stream needs at least one job")
        for job in job_list:
            job.dag.validate()
        run = _Run(self, job_list, strategy,
                   failures=failures, chaos=chaos, resilience=resilience,
                   task_retries=task_retries, tracer=tracer,
                   metrics=metrics, control=control, partitions=partitions)
        run.execute(until=until)
        return run.stream_result()


class _Run:
    """Single-execution state (kept off the reusable scheduler)."""

    def __init__(self, sched: ContinuumScheduler, jobs: list[StreamJob],
                 strategy: PlacementStrategy,
                 failures: OutageSchedule | None = None,
                 chaos: TaskChaos | None = None,
                 resilience: ResiliencePolicy | None = None,
                 task_retries: int = 2,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 control: ControlPlaneConfig | None = None,
                 partitions: PartitionSchedule | None = None):
        self.jobs = jobs
        self.strategy = strategy
        self.failures = failures
        self.chaos = chaos if (chaos is not None and not chaos.empty) else None
        if task_retries < 0:
            raise SchedulingError(f"task_retries must be >= 0, got {task_retries}")
        self.task_retries = task_retries
        self.resilience = resilience
        self.budget = resilience.make_budget() if resilience else None
        self.breakers = resilience.make_breakers() if resilience else None
        self.hedge = resilience.hedge if resilience else None
        self.stats = ResilienceStats(
            policy=resilience.name if resilience else "none"
        )
        self.sim = Simulator()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None:
            tracer.bind(lambda: self.sim.now)
        self.monitor = Monitor(self.sim)
        self.monitor.tracer = self.tracer
        self.rngs = RngRegistry(sched.seed)
        self.network = FlowNetwork(self.sim, sched.topology,
                                   monitor=self.monitor)
        # replicated control plane (opt-in): the catalog becomes a
        # mirror whose mutations replicate across N control sites, and
        # planner/transfer reads go through the configured read mode.
        # With control=None nothing below this block changes behaviour.
        if partitions is not None and not partitions.empty \
                and control is None:
            raise SchedulingError(
                "partitions require a control plane (pass control=...)"
            )
        self.control = None
        if control is not None:
            self.control = ControlRuntime(control, sched.topology,
                                          rngs=self.rngs)
            self.control.bind_clock(lambda: self.sim.now)
        self.partitions = partitions
        self.catalog = (self.control.catalog if self.control is not None
                        else ReplicaCatalog())
        self._ctl_view = self.control.view if self.control is not None else None
        self._ctl_read_state = "idle"
        self.transfers = TransferService(
            self.sim, self.network, self.catalog,
            failure_prob=sched.transfer_failure_prob,
            max_attempts=sched.transfer_max_attempts,
            rngs=self.rngs,
            view=self._ctl_view,
        )
        self._dispatch_mode = sched.dispatch
        self.ctx = SchedulingContext(
            sched.topology, self.catalog, rngs=self.rngs,
            candidate_sites=sched.candidate_sites,
            view=self._ctl_view,
            memo=self._dispatch_mode == "wave",
        )
        self.resources = {
            site.name: Resource(self.sim, site.slots, name=site.name)
            for site in self.ctx.candidates
        }
        # cross-job task bookkeeping (names must be globally unique)
        self._dag_of: dict[str, WorkflowDAG] = {}
        self._job_of: dict[str, int] = {}
        self.remaining: dict[str, int] = {}
        for idx, job in enumerate(jobs):
            for name in job.dag.task_names:
                if name in self._dag_of:
                    raise SchedulingError(
                        f"duplicate task name {name!r} across stream jobs"
                    )
                self._dag_of[name] = job.dag
                self._job_of[name] = idx
                self.remaining[name] = len(job.dag.dependencies(name))
        self._job_pending = [len(job.dag) for job in jobs]
        self._job_finish = [0.0 for _ in jobs]
        self._register_datasets()

        self.ready: list[TaskSpec] = []
        self._dispatch_scheduled = False
        self.records: dict[str, TaskRecord] = {}
        self.decisions: list[PlacementDecision] = []
        self.failed_tasks: dict[str, BaseException] = {}
        self.compute_usd = 0.0
        self.energy_j = 0.0
        self.site_busy: dict[str, float] = {s.name: 0.0 for s in self.ctx.candidates}
        self.attempts: dict[str, int] = {n: 0 for n in self._dag_of}
        self.failures_of: dict[str, int] = {n: 0 for n in self._dag_of}
        self.attempt_log: dict[str, list[str]] = {n: [] for n in self._dag_of}
        # task -> attempt_id -> (Process, site); several attempts of one
        # task run concurrently only while a hedge duplicate races
        self._active_at: dict[str, dict[int, tuple]] = {}
        self._attempt_seq = 0
        self._timeout_events: dict[int, object] = {}
        self._hedges_of: dict[str, int] = {n: 0 for n in self._dag_of}
        self._probe_wake_at: float | None = None
        self.interruptions = 0
        self.wasted_exec_s = 0.0
        # failure-injection state: overlapping outages of one site are
        # reference-counted (the site stays dark until every active
        # outage has ended); brownout factors per link are stacked and
        # applied to the topology's *base* bandwidth, so restoration is
        # bit-exact no matter how outages and brownouts interleave
        self._down_depth: dict[str, int] = {}
        self._brownout_factors: dict[frozenset, list[float]] = {}
        if failures is not None:
            failures.validate_against(sched.topology)
        # metrics (opt-in, ambient by default): one registry serves the
        # whole run; the recorder samples gauge probes on sim-clock
        # ticks. Both are clock-passive, so an instrumented run stays
        # bit-identical to a bare one.
        self.metrics = metrics if metrics is not None else current_registry()
        self.recorder: MetricsRecorder | None = None
        self._m_decisions = None
        if self.metrics.enabled:
            self._init_metrics()

    def _init_metrics(self) -> None:
        m = self.metrics
        self._m_decisions = m.counter(
            "scheduler_placement_decisions_total",
            "Placement decisions by chosen site and strategy",
            ("site", "strategy"))
        self._m_queue_wait = m.histogram(
            "scheduler_task_queue_wait_seconds",
            "Wait for a worker slot after inputs arrived",
            start=1e-3, factor=2.0, count=36)
        self._m_stage = m.histogram(
            "scheduler_task_stage_seconds",
            "Input staging time per completed task",
            start=1e-3, factor=2.0, count=36)
        self._m_exec = m.histogram(
            "scheduler_task_exec_seconds",
            "Execution time per completed task",
            start=1e-3, factor=2.0, count=36)
        rec = self.recorder = MetricsRecorder()
        self.sim.attach_recorder(rec)
        sim, queue, net = self.sim, self.sim._queue, self.network
        rec.add_probe("kernel_queue_depth", queue.__len__)
        rec.add_probe("kernel_events_dispatched",
                      lambda: float(sim.event_count))
        rec.add_probe("netsim_flows_active",
                      lambda: float(net.active_flow_count))
        rec.add_probe("scheduler_ready_tasks",
                      lambda: float(len(self.ready)))
        rec.add_probe("scheduler_tasks_completed",
                      lambda: float(len(self.records)))

    def _emit_metrics(self) -> None:
        """End-of-run harvest: re-emit every subsystem's stats object
        through the registry (counters accumulate across runs sharing
        one registry; all values derive from simulated time only)."""
        m = self.metrics
        sim, queue = self.sim, self.sim._queue
        c, g = m.counter, m.gauge
        c("sim_events_dispatched_total",
          "Events dispatched by the kernel").inc(sim.event_count)
        c("sim_simulated_seconds_total",
          "Simulated seconds advanced").inc(sim.now)
        c("kernel_events_pushed_total",
          "Events enqueued (push, pooled, ready lane)"
          ).inc(queue.events_pushed)
        c("kernel_events_cancelled_total",
          "Caller-cancelled events").inc(queue.cancellations)
        c("kernel_reclaims_total",
          "Dead-entry reclamations (compactions/sweeps)"
          ).inc(queue.compactions)
        c("kernel_pool_reuses_total",
          "Events served from the free list").inc(queue.pool_reuses)
        for attr, name, help_ in (
            ("rebuilds", "kernel_calendar_rebuilds_total",
             "Calendar-queue full gather + re-layout passes"),
            ("advances", "kernel_calendar_advances_total",
             "Calendar-queue window advances"),
        ):
            if hasattr(queue, attr):
                c(name, help_).inc(getattr(queue, attr))
        if sim.now > 0:
            g("kernel_events_per_sim_second",
              "Dispatch rate of the last run, per simulated second"
              ).set(sim.event_count / sim.now)
        counters = self.monitor.counters
        c("netsim_flows_started_total",
          "Flows opened on the network").inc(counters.get(
              "flows_started", 0))
        c("netsim_flows_completed_total",
          "Flows drained to completion").inc(counters.get(
              "flows_completed", 0))
        c("netsim_bytes_moved_total",
          "Bytes moved across all links"
          ).inc(self.network.total_bytes_moved)
        c("netsim_rate_solves_total",
          "Max-min fair-share rate recomputes"
          ).inc(self.network.rate_solves)
        c("scheduler_tasks_completed_total",
          "Tasks that ran to completion").inc(len(self.records))
        c("scheduler_interruptions_total",
          "Attempts cut down by site outages").inc(self.interruptions)
        c("scheduler_wasted_exec_seconds_total",
          "Execution seconds lost to interrupts/hedges/faults"
          ).inc(self.wasted_exec_s)
        c("scheduler_compute_usd_total",
          "Compute spend across completed work").inc(self.compute_usd)
        c("scheduler_energy_joules_total",
          "Marginal energy across completed work").inc(self.energy_j)
        makespan = max((r.exec_finished for r in self.records.values()),
                       default=0.0)
        g("scheduler_last_makespan_seconds",
          "Makespan of the last run emitted into this registry"
          ).set(makespan)
        stats = self._final_stats()
        labels = ("policy",)
        lv = {"policy": stats.policy}
        for name, help_, value in (
            ("resilience_attempts_total", "Execution attempts launched",
             stats.attempts_total),
            ("resilience_retries_total", "Attempts relaunched after a "
             "failure", stats.retries),
            ("resilience_backoff_seconds_total",
             "Simulated seconds spent backing off", stats.backoff_delay_s),
            ("resilience_budget_denials_total",
             "Retries refused by the retry budget", stats.budget_denials),
            ("resilience_breaker_trips_total",
             "Circuit-breaker open transitions", stats.breaker_trips),
            ("resilience_breaker_probes_total",
             "Half-open probe attempts", stats.breaker_probes),
            ("resilience_hedges_launched_total",
             "Hedge duplicates launched", stats.hedges_launched),
            ("resilience_hedges_won_total",
             "Hedge duplicates that finished first", stats.hedges_won),
            ("resilience_hedges_lost_total",
             "Hedge duplicates cancelled or beaten", stats.hedges_lost),
            ("resilience_timeouts_total",
             "Attempts cut down by the attempt timeout", stats.timeouts),
            ("resilience_transient_faults_total",
             "Chaos-injected transient faults hit", stats.transient_faults),
            ("resilience_lost_tasks_total",
             "Tasks that exhausted every recovery lever",
             stats.lost_tasks),
        ):
            m.counter(name, help_, labels).labels(**lv).inc(value)
        if self.control is not None:
            self.control.emit_metrics(m)
        if m.keep_timeseries and self.recorder is not None:
            m.timeseries = dict(self.recorder.series)

    def _register_datasets(self) -> None:
        """Register every dataset definition up front; external replicas
        appear at each job's arrival, outputs when produced."""
        for job in self.jobs:
            provided = set()
            for dataset, site in job.external_inputs:
                if site not in self.ctx.topology:
                    raise SchedulingError(
                        f"external input {dataset.name!r} placed at unknown "
                        f"site {site!r}"
                    )
                self.catalog.register(dataset)
                provided.add(dataset.name)
            missing = job.dag.external_inputs() - provided
            if missing:
                raise SchedulingError(
                    f"external inputs without a source site: {sorted(missing)}"
                )
            for task in job.dag.tasks:
                for out in task.outputs:
                    self.catalog.register(out)

    # -- main loop --------------------------------------------------------------------
    def execute(self, until: float | None = None) -> None:
        self._arm_failures()
        for idx, job in enumerate(self.jobs):
            self.sim.schedule_at(job.arrival_s, self._job_arrives, idx)
        self.sim.run(until=until)

        if self.failed_tasks:
            failed = ", ".join(sorted(self.failed_tasks))
            self.stats.lost_tasks = len(self.failed_tasks)
            raise SchedulingError(
                f"tasks failed during run: {failed}"
            ) from next(iter(self.failed_tasks.values()))
        unfinished = [n for n in self._dag_of if n not in self.records]
        if unfinished:
            raise SchedulingError(
                f"run ended with unfinished tasks: {sorted(unfinished)} "
                f"(until-limit too small or deadlocked staging)"
            )
        if self.metrics.enabled:
            self._emit_metrics()

    def _job_arrives(self, idx: int) -> None:
        job = self.jobs[idx]
        for dataset, site in job.external_inputs:
            if self.control is not None:
                # external inputs pre-exist in the federation: their
                # metadata ships with the job submission and is already
                # replicated (no lag) — staleness applies to the
                # *dynamic* replicas the run creates
                self.catalog.bootstrap_replica(dataset.name, site,
                                               time=self.sim.now)
            else:
                self.catalog.add_replica(dataset.name, site, time=self.sim.now)
        self.ctx.set_now(self.sim.now)
        self.strategy.prepare(job.dag, self.ctx)
        for name in job.dag.task_names:
            if self.remaining[name] == 0:
                self.ready.append(job.dag.task(name))
                self.tracer.instant("ready", "scheduler", task=name)
        self._schedule_dispatch()

    # -- results --------------------------------------------------------------------
    def _final_stats(self) -> ResilienceStats:
        self.stats.attempts_total = sum(self.attempts.values())
        if self.breakers is not None:
            self.stats.breaker_trips = self.breakers.total_trips
            self.stats.breaker_probes = self.breakers.total_probes
        if self.budget is not None:
            self.stats.budget_denials = self.budget.denied
        return self.stats

    def single_result(self) -> ScheduleResult:
        job = self.jobs[0]
        makespan = max(
            (r.exec_finished for r in self.records.values()), default=0.0
        )
        return ScheduleResult(
            workflow=job.dag.name,
            strategy=self.strategy.name,
            makespan=makespan,
            records=self.records,
            decisions=self.decisions,
            bytes_moved=self.network.total_bytes_moved,
            transfer_usd=self.network.total_transfer_cost_usd,
            compute_usd=self.compute_usd,
            energy_j=self.energy_j,
            site_busy_s=self.site_busy,
            interruptions=self.interruptions,
            wasted_exec_s=self.wasted_exec_s,
            resilience=self._final_stats(),
            control=(self.control.stats if self.control is not None
                     else None),
        )

    def stream_result(self) -> StreamResult:
        jobs = [
            JobResult(
                name=job.dag.name,
                arrival_s=job.arrival_s,
                finished_s=self._job_finish[idx],
                task_count=len(job.dag),
            )
            for idx, job in enumerate(self.jobs)
        ]
        return StreamResult(
            strategy=self.strategy.name,
            jobs=jobs,
            records=self.records,
            bytes_moved=self.network.total_bytes_moved,
            transfer_usd=self.network.total_transfer_cost_usd,
            compute_usd=self.compute_usd,
            energy_j=self.energy_j,
            interruptions=self.interruptions,
            wasted_exec_s=self.wasted_exec_s,
            resilience=self._final_stats(),
            control=(self.control.stats if self.control is not None
                     else None),
        )

    # -- failure injection ---------------------------------------------------------
    def _arm_failures(self) -> None:
        if self.control is not None and self.partitions is not None \
                and not self.partitions.empty:
            self.control.arm_partitions(self.sim, self.partitions)
        if self.failures is None or self.failures.empty:
            return
        for outage in self.failures.site_outages:
            self.sim.schedule_at(outage.start_s, self._site_down, outage)
            self.sim.schedule_at(outage.end_s, self._site_up, outage.site)
        for brownout in self.failures.link_brownouts:
            self.sim.schedule_at(brownout.start_s, self._brownout,
                                 brownout, True)
            self.sim.schedule_at(brownout.end_s, self._brownout,
                                 brownout, False)

    def _site_down(self, outage: SiteOutage) -> None:
        self._down_depth[outage.site] = self._down_depth.get(outage.site, 0) + 1
        self.tracer.instant("site_down", "fault", site=outage.site,
                            depth=self._down_depth[outage.site])
        if self.control is not None and self._down_depth[outage.site] == 1:
            # registry learns of the death through the replicated log;
            # stale readers keep routing to the corpse until it commits
            self.catalog.endpoint_down(outage.site)
        if outage.site in self.ctx._slots:
            self.ctx.mark_down(outage.site)
        victims = [
            (name, proc)
            for name, attempts in self._active_at.items()
            for _aid, (proc, site) in attempts.items()
            if site == outage.site
        ]
        for _name, proc in victims:
            proc.interrupt(cause=f"outage@{outage.site}")

    def _site_up(self, site: str) -> None:
        # overlapping outages are reference-counted: the site recovers
        # only when its *last* active outage ends
        depth = self._down_depth.get(site, 1) - 1
        self._down_depth[site] = depth
        self.tracer.instant("site_up", "fault", site=site, depth=depth)
        if depth > 0:
            return
        if self.control is not None:
            self.catalog.endpoint_up(site)
        self.ctx.mark_up(site)
        if self.ready:
            self._schedule_dispatch()

    def _brownout(self, brownout, begin: bool) -> None:
        # apply the product of all active factors to the *base* link
        # bandwidth: composes with overlaps and restores bit-exactly
        # (never round-trips the live value through a division)
        key = frozenset((brownout.a, brownout.b))
        factors = self._brownout_factors.setdefault(key, [])
        if begin:
            factors.append(brownout.factor)
        else:
            factors.remove(brownout.factor)
        bandwidth = self.network.topology.link(brownout.a,
                                               brownout.b).bandwidth_Bps
        for factor in factors:
            bandwidth *= factor
        self.tracer.instant(
            "brownout_begin" if begin else "brownout_end", "fault",
            link=f"{brownout.a}--{brownout.b}", factor=brownout.factor,
            bandwidth_Bps=bandwidth,
        )
        self.network.set_link_bandwidth(brownout.a, brownout.b, bandwidth)

    # -- dispatch --------------------------------------------------------------------
    def _schedule_dispatch(self) -> None:
        if not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self.sim.schedule(0.0, self._dispatch)

    def _breaker_vetoes(self) -> set[str]:
        """Candidate sites whose circuit is currently open."""
        if self.breakers is None:
            return set()
        now = self.sim.now
        return {
            s.name for s in self.ctx.candidates
            if self.breakers.blocked(s.name, now)
        }

    def _schedule_probe_wake(self) -> None:
        """Re-dispatch when the earliest open breaker half-opens, so
        work held back by vetoes is not stranded."""
        if self.breakers is None:
            return
        t = self.breakers.next_probe_at(self.sim.now)
        if t is None or t <= self.sim.now:
            return
        if self._probe_wake_at is not None and self._probe_wake_at <= t:
            return
        self._probe_wake_at = t
        self.sim.schedule_at(t, self._probe_wake)

    def _probe_wake(self) -> None:
        self._probe_wake_at = None
        if self.ready:
            self._schedule_dispatch()

    def _ctl_read_begin(self) -> bool:
        """Pay for one control-plane placement read before a dispatch
        round. Returns True when the round may proceed now (the read
        resolved instantly or was already paid); otherwise the round is
        deferred until the read's simulated latency elapses. Tasks going
        ready in the interim ride the same round — one read serves the
        whole batch, like one scheduler loop against one metadata page.
        """
        if self._ctl_read_state == "waiting":
            return False
        if self._ctl_read_state == "ready":
            self._ctl_read_state = "idle"
            return True
        latency = self.control.placement_read(self.sim.now)
        if latency <= 0.0:
            return True
        self._ctl_read_state = "waiting"
        self.sim.schedule(latency, self._ctl_read_done)
        return False

    def _ctl_read_done(self) -> None:
        self._ctl_read_state = "ready"
        if self.ready:
            self._schedule_dispatch()
        else:
            self._ctl_read_state = "idle"

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        if not self.ready:
            return
        if self.control is not None and not self._ctl_read_begin():
            return
        self.ctx.set_now(self.sim.now)
        vetoed = self._breaker_vetoes()
        self.ctx.set_vetoed(vetoed)
        try:
            if not self.ctx.candidates:
                # every candidate site is dark or vetoed: hold the ready
                # set until a recovery event or probe re-triggers dispatch
                self._schedule_probe_wake()
                return
            batch, self.ready = self.ready, []
            if self._dispatch_mode == "scalar":
                scalar_dispatch(self, batch, vetoed)
            else:
                wave_dispatch(self, batch, vetoed)
            if self.ready:
                self._schedule_probe_wake()
        finally:
            self.ctx.set_vetoed(())

    # -- attempt lifecycle -----------------------------------------------------------
    def _start_attempt(self, task: TaskSpec, site_name: str,
                       decision: PlacementDecision,
                       is_hedge: bool = False) -> None:
        """Launch one execution attempt (primary or hedge duplicate)."""
        attempt_id = self._attempt_seq
        self._attempt_seq += 1
        now = self.sim.now
        if self.breakers is not None:
            breaker = self.breakers.get(site_name)
            if breaker.state(now) is BreakerState.HALF_OPEN:
                breaker.note_probe(now)
                self.tracer.instant("breaker_probe", "resilience",
                                    site=site_name, task=task.name)
        proc = self.sim.process(
            self._task_proc(task, site_name, decision, attempt_id,
                            is_hedge=is_hedge),
            name=f"task:{task.name}#{attempt_id}",
        )
        self._active_at.setdefault(task.name, {})[attempt_id] = (proc, site_name)
        if self.resilience is not None:
            timeout_s = self.resilience.attempt_timeout_s(
                decision.est_stage_s + decision.est_exec_s
            )
            if timeout_s is not None:
                self._timeout_events[attempt_id] = self.sim.schedule(
                    timeout_s, self._attempt_timeout,
                    task.name, attempt_id, site_name, timeout_s,
                )
        if (self.hedge is not None and not is_hedge
                and task.pinned_site is None
                and self._hedges_of[task.name] < self.hedge.max_hedges):
            self.sim.schedule_at(
                self.hedge.hedge_at(now, decision.est_finish),
                self._maybe_hedge, task.name, attempt_id,
            )

    def _end_attempt(self, name: str, attempt_id: int) -> None:
        """Drop attempt bookkeeping (watchdog event included)."""
        attempts = self._active_at.get(name)
        if attempts is not None:
            attempts.pop(attempt_id, None)
            if not attempts:
                del self._active_at[name]
        event = self._timeout_events.pop(attempt_id, None)
        if event is not None:
            self.sim.cancel(event)

    def _attempt_timeout(self, name: str, attempt_id: int,
                         site_name: str, timeout_s: float) -> None:
        """Watchdog: an attempt exceeded its policy deadline."""
        self._timeout_events.pop(attempt_id, None)
        entry = self._active_at.get(name, {}).get(attempt_id)
        if entry is None:
            return
        proc, _site = entry
        self.stats.timeouts += 1
        self.tracer.instant("attempt_timeout", "resilience", task=name,
                            site=site_name, timeout_s=timeout_s)
        proc.interrupt(cause=f"timeout@{site_name}")

    def _maybe_hedge(self, name: str, attempt_id: int) -> None:
        """Hedge-check fired: duplicate the attempt if it is straggling."""
        if name in self.records or self.hedge is None:
            return
        attempts = self._active_at.get(name)
        if not attempts or attempt_id not in attempts:
            return   # that attempt already ended; its successor re-arms
        if self._hedges_of[name] >= self.hedge.max_hedges:
            return
        task = self._dag_of[name].task(name)
        self.ctx.set_now(self.sim.now)
        running_sites = {site for _proc, site in attempts.values()}
        self.ctx.set_vetoed(self._breaker_vetoes() | running_sites)
        try:
            if not self.ctx.candidates:
                return
            try:
                site_name = self.strategy.select_site(task, self.ctx)
            except SchedulingError:
                return
            if site_name not in self.resources:
                return
            est, est_finish = self.ctx.estimate_finish(
                task, self.ctx.site(site_name)
            )
        finally:
            self.ctx.set_vetoed(())
        self.ctx.reserve(site_name, est_finish)
        decision = PlacementDecision(
            task=name, site=site_name, decided_at=self.sim.now,
            est_stage_s=est.stage_time_s, est_exec_s=est.exec_time_s,
            est_finish=est_finish,
        )
        self.decisions.append(decision)
        self._hedges_of[name] += 1
        self.stats.hedges_launched += 1
        self.tracer.instant("hedge_launch", "resilience", task=name,
                            site=site_name,
                            racing={s for s in running_sites} and
                                   sorted(running_sites))
        self._start_attempt(task, site_name, decision, is_hedge=True)

    def _task_proc(self, task: TaskSpec, site_name: str,
                   decision: PlacementDecision, attempt_id: int,
                   is_hedge: bool = False):
        site = self.ctx.site(site_name)
        self.attempts[task.name] += 1
        attempt_no = self.attempts[task.name]
        record = TaskRecord(
            task=task.name, site=site_name, kind=task.kind,
            ready_at=self.sim.now, deadline_s=task.deadline_s,
            attempts=attempt_no,
        )
        tracer = self.tracer
        tspan = tracer.begin(
            f"task:{task.name}", "task", site=site_name, kind=task.kind,
            attempt=attempt_no, hedge=is_hedge,
            est_stage_s=decision.est_stage_s,
            est_exec_s=decision.est_exec_s,
            est_finish=decision.est_finish,
        )
        phase = None   # the open child span, closed on interrupt/failure
        req = None
        exec_started = False
        try:
            record.stage_started = self.sim.now
            phase = tracer.begin("stage", "stage", parent=tspan)
            if task.inputs:
                results = yield AllOf(
                    [self.transfers.stage(name, site_name) for name in task.inputs]
                )
                record.bytes_staged = sum(r.bytes_moved for r in results)
            record.stage_finished = self.sim.now
            tracer.end(phase, bytes=record.bytes_staged)

            phase = tracer.begin("queue", "queue", parent=tspan)
            req = self.resources[site_name].request()
            yield req
            tracer.end(phase)
            record.exec_started = self.sim.now
            exec_started = True
            phase = tracer.begin("exec", "exec", parent=tspan)
            exec_time = site.service_time(task.work, kind=task.kind)
            fate = None
            if self.chaos is not None:
                fate = self.chaos.fate(task.name, attempt_no, site_name,
                                       self.sim.now)
                if fate.slowdown > 1.0:
                    exec_time *= fate.slowdown
                    self.tracer.instant(
                        "chaos_straggler", "fault", task=task.name,
                        site=site_name, slowdown=fate.slowdown,
                    )
            if fate is not None and fate.fail_after_frac is not None:
                partial = exec_time * fate.fail_after_frac
                if partial > 0:
                    yield Timeout(partial)
                raise _TransientFault(f"transient@{site_name}")
            if exec_time > 0:
                yield Timeout(exec_time)
            self.resources[site_name].release(req)
            req = None
            record.exec_finished = self.sim.now
            tracer.end(phase)
            tracer.end(tspan)
        except Interrupt as intr:
            cause = str(intr.cause or "")
            status = ("cancelled" if cause == "hedge-cancel"
                      else "interrupted")
            tracer.end(phase, status=status)
            tracer.end(tspan, status=status, cause=intr.cause)
            self._on_attempt_end(task, site_name, record, attempt_id,
                                 req=req, req_held=False,
                                 exec_started=exec_started, cause=cause,
                                 is_hedge=is_hedge)
            return
        except _TransientFault as fault:
            self.stats.transient_faults += 1
            tracer.end(phase, status="failed")
            tracer.end(tspan, status="failed", cause=fault.cause)
            self._on_attempt_end(task, site_name, record, attempt_id,
                                 req=req, req_held=True,
                                 exec_started=True, cause=fault.cause,
                                 is_hedge=is_hedge)
            return
        except Exception as exc:  # noqa: BLE001 - recorded, or retried by policy
            tracer.end(phase, status="failed")
            tracer.end(tspan, status="failed", error=repr(exc))
            if (self.resilience is not None
                    and isinstance(exc, DataFabricError)):
                # corrupted staging is transient under a recovery policy
                self._on_attempt_end(task, site_name, record, attempt_id,
                                     req=req, req_held=False,
                                     exec_started=exec_started,
                                     cause=f"staging@{site_name}: {exc}",
                                     is_hedge=is_hedge)
                return
            self._end_attempt(task.name, attempt_id)
            self.failed_tasks[task.name] = exc
            return
        self._complete_attempt(task, site_name, record, attempt_id,
                               is_hedge=is_hedge)

    def _complete_attempt(self, task: TaskSpec, site_name: str,
                          record: TaskRecord, attempt_id: int,
                          is_hedge: bool) -> None:
        """An attempt ran to completion; first finisher wins the task."""
        name = task.name
        self._end_attempt(name, attempt_id)
        if name in self.records:
            # a sibling won at this same instant; count this as waste
            self.wasted_exec_s += record.exec_time
            self.site_busy[site_name] += record.exec_time
            site = self.ctx.site(site_name)
            self.energy_j += site.power.marginal_energy(record.exec_time)
            self.stats.hedges_lost += 1
            return
        # cancel racing duplicates (hedge losers)
        for _aid, (proc, loser_site) in list(
                self._active_at.get(name, {}).items()):
            proc.interrupt(cause="hedge-cancel")
        if is_hedge:
            self.stats.hedges_won += 1
            self.tracer.instant("hedge_won", "resilience", task=name,
                                site=site_name)
        if self.breakers is not None:
            breaker = self.breakers.get(site_name)
            if breaker.state(self.sim.now) is not BreakerState.CLOSED:
                self.tracer.instant("breaker_close", "resilience",
                                    site=site_name)
            breaker.record_success(self.sim.now)

        site = self.ctx.site(site_name)
        record.energy_j = site.power.marginal_energy(record.exec_time)
        record.compute_usd = site.pricing.compute_cost(record.exec_time)
        record.attempts = self.attempts[name]
        self.energy_j += record.energy_j
        self.compute_usd += record.compute_usd
        self.site_busy[site_name] += record.exec_time
        self.records[name] = record
        if self._m_decisions is not None:
            self._m_stage.observe(record.stage_time)
            self._m_queue_wait.observe(record.queue_time)
            self._m_exec.observe(record.exec_time)
        for out in task.outputs:
            self.catalog.add_replica(out.name, site_name, time=self.sim.now)
        self.strategy.observe(record, self.ctx)

        job_idx = self._job_of[name]
        self._job_pending[job_idx] -= 1
        if self._job_pending[job_idx] == 0:
            self._job_finish[job_idx] = self.sim.now

        dag = self._dag_of[name]
        for dependent in dag.dependents(name):
            self.remaining[dependent] -= 1
            if self.remaining[dependent] == 0:
                self.ready.append(dag.task(dependent))
                self.tracer.instant("ready", "scheduler", task=dependent)
                self._schedule_dispatch()

    def _on_attempt_end(self, task: TaskSpec, site_name: str,
                        record: TaskRecord, attempt_id: int, *,
                        req, req_held: bool, exec_started: bool,
                        cause: str, is_hedge: bool) -> None:
        """An attempt ended without producing the task's result: an
        outage or timeout interrupt, a chaos transient fault, a hedge
        cancellation, or (policy-gated) a staging failure. Clean up,
        account the waste exactly, then decide whether to retry."""
        name = task.name
        self._end_attempt(name, attempt_id)
        if req is not None:
            if req_held:
                self.resources[site_name].release(req)
            else:
                self.resources[site_name].cancel(req)
        if exec_started:
            wasted = self.sim.now - record.exec_started
            self.wasted_exec_s += wasted
            self.site_busy[site_name] += wasted  # the slot really burned
            site = self.ctx.site(site_name)
            self.energy_j += site.power.marginal_energy(wasted)
        else:
            wasted = 0.0

        if cause == "hedge-cancel":
            self.stats.hedges_lost += 1
            self.tracer.instant("hedge_lost", "resilience", task=name,
                                site=site_name, wasted_s=wasted)
            return
        if cause.startswith("outage@"):
            self.interruptions += 1
        self.tracer.instant(
            "interrupted", "scheduler", task=name, site=site_name,
            cause=cause, wasted_s=wasted,
        )
        self.failures_of[name] += 1
        self.attempt_log[name].append(
            f"attempt {self.failures_of[name]} at {site_name}: {cause}"
        )
        if self.breakers is not None and not cause.startswith("staging@"):
            breaker = self.breakers.get(site_name)
            trips_before = breaker.trips
            breaker.record_failure(self.sim.now)
            if breaker.trips > trips_before:
                self.tracer.instant("breaker_open", "resilience",
                                    site=site_name,
                                    failures=self.failures_of[name])

        if self._active_at.get(name):
            # a hedge duplicate is still racing; it owns the outcome now
            return
        if name in self.records:
            return
        self._retry_or_fail(task, cause)

    def _retry_or_fail(self, task: TaskSpec, cause: str) -> None:
        name = task.name
        failures = self.failures_of[name]
        if self.resilience is not None:
            allowed = self.resilience.retry.allows_retry(failures)
        else:
            allowed = failures <= self.task_retries
        if not allowed:
            history = "; ".join(self.attempt_log[name])
            self.failed_tasks[name] = SchedulingError(
                f"task {name!r} interrupted {failures} times "
                f"(cause: {cause}); retries exhausted [{history}]"
            )
            return
        delay = 0.0
        if self.resilience is not None:
            delay = self.resilience.retry.delay_s(failures, key=name)
            if self.budget is not None and not self.budget.acquire():
                delay = max(delay, self.budget.cooldown_s)
                self.tracer.instant("retry_budget_exhausted", "resilience",
                                    task=name, cooldown_s=delay)
        self.stats.retries += 1
        self.stats.backoff_delay_s += delay
        if delay > 0:
            self.tracer.instant("retry_backoff", "resilience", task=name,
                                delay_s=delay, failures=failures)
            self.sim.schedule(delay, self._requeue, task, cause)
        else:
            self._requeue(task, cause)

    def _requeue(self, task: TaskSpec, cause: str) -> None:
        if task.name in self.records:
            return
        self.ready.append(task)
        self.tracer.instant("ready", "scheduler", task=task.name,
                            requeued_after=cause)
        self._schedule_dispatch()
