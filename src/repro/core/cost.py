"""Cost estimation: the planner's view of time, bytes, energy, dollars.

A :class:`CostModel` answers "what would running task T at site S cost?"
using only catalog and topology state — no simulation. Strategies rank
candidate sites with these estimates; the scheduler then measures what
actually happens (contention makes reality worse than the estimate, which
is exactly the gap E2 quantifies between planner quality levels).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

import numpy as np

from repro.continuum.site import Site
from repro.continuum.topology import Topology
from repro.datafabric.catalog import ReplicaCatalog
from repro.errors import DataFabricError, SchedulingError
from repro.workflow.task import TaskSpec

_SITE_NAME = operator.attrgetter("name")

# Bound on the wave row memo: cleared wholesale once exceeded (a cap,
# not an LRU — stale-epoch entries are overwritten in place, so the
# steady-state population is one row per live (signature, candidate-set)
# pair and the cap only matters under pathological signature churn).
_ROW_CACHE_MAX = 4096


def _stage_times(lat: np.ndarray, bw: np.ndarray, cols: np.ndarray,
                 size: float) -> np.ndarray:
    """Unloaded staging times ``lat + size / bw`` over candidate columns.

    Unreachable destinations carry ``bw == 0`` in the path matrices
    (see :meth:`Topology.path_rows`); they must estimate as ``inf`` —
    including for zero-byte datasets, where a bare ``0/0`` would poison
    the row with NaN and win every ``argmin``.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        times = lat[cols] + size / bw[cols]
    unreachable = bw[cols] == 0.0
    if unreachable.any():
        times[unreachable] = np.inf
    return times


@dataclass(frozen=True)
class TaskEstimate:
    """Planner estimate for one (task, site) pairing."""

    task: str
    site: str
    stage_time_s: float      # move missing inputs to the site (unloaded)
    exec_time_s: float       # service time at the site
    bytes_moved: float       # input bytes not already resident
    energy_j: float          # marginal execution energy
    compute_usd: float       # slot-time dollars
    transfer_usd: float      # data movement dollars along chosen paths

    @property
    def total_time_s(self) -> float:
        return self.stage_time_s + self.exec_time_s

    @property
    def total_usd(self) -> float:
        return self.compute_usd + self.transfer_usd


class BatchEstimate:
    """Planner estimates for one task across many candidate sites.

    Field ``i`` of every array corresponds to ``sites[i]``; each value is
    bit-identical to the scalar :class:`TaskEstimate` field for the same
    (task, site) pair — batch estimation is a vectorization, not an
    approximation, which is what lets strategies rank sites from these
    arrays without changing any placement decision.

    A plain ``__slots__`` class rather than a dataclass: wave dispatch
    constructs one of these per placed task (rebinding memoized arrays
    to the task's name), and the frozen-dataclass ``__setattr__``
    detour was a measurable slice of the dispatch profile. The arrays
    a memoized instance carries are read-only.
    """

    __slots__ = ("task", "sites", "stage_time_s", "exec_time_s",
                 "bytes_moved", "energy_j", "compute_usd", "transfer_usd")

    def __init__(self, task: str, sites: tuple[str, ...],
                 stage_time_s: np.ndarray, exec_time_s: np.ndarray,
                 bytes_moved: np.ndarray, energy_j: np.ndarray,
                 compute_usd: np.ndarray, transfer_usd: np.ndarray):
        self.task = task
        self.sites = sites
        self.stage_time_s = stage_time_s
        self.exec_time_s = exec_time_s
        self.bytes_moved = bytes_moved
        self.energy_j = energy_j
        self.compute_usd = compute_usd
        self.transfer_usd = transfer_usd

    def __repr__(self) -> str:
        return (f"BatchEstimate(task={self.task!r}, "
                f"sites={len(self.sites)})")

    @property
    def total_time_s(self) -> np.ndarray:
        return self.stage_time_s + self.exec_time_s

    @property
    def total_usd(self) -> np.ndarray:
        return self.compute_usd + self.transfer_usd

    def __len__(self) -> int:
        return len(self.sites)

    def at(self, i: int) -> TaskEstimate:
        """The scalar estimate for candidate ``i`` (tests, debugging)."""
        return TaskEstimate(
            task=self.task,
            site=self.sites[i],
            stage_time_s=float(self.stage_time_s[i]),
            exec_time_s=float(self.exec_time_s[i]),
            bytes_moved=float(self.bytes_moved[i]),
            energy_j=float(self.energy_j[i]),
            compute_usd=float(self.compute_usd[i]),
            transfer_usd=float(self.transfer_usd[i]),
        )


class CostModel:
    """Estimates built from topology + replica catalog state."""

    def __init__(self, topology: Topology, catalog: ReplicaCatalog,
                 *, memo_rows: bool = True):
        self.topology = topology
        self.catalog = catalog
        # nearest-source memo: (dataset, site) -> (src, est), valid for
        # one catalog version. Placement evaluates every candidate site
        # for every ready task, so identical lookups repeat heavily
        # within a dispatch round; this cache was the top line of the
        # scheduler profile before it existed.
        self._nearest_cache: dict[tuple[str, str], tuple[str, float]] = {}
        # per-dataset staging arrays over a fixed candidate tuple,
        # validated by (routes epoch, per-dataset replica version)
        self._stage_cache: dict = {}
        # per-candidate-tuple static site arrays (sites are frozen):
        # matrix columns (validated by routes epoch), speeds per task
        # kind, busy watts, compute price
        self._cols_cache: dict = {}
        self._speed_cache: dict = {}
        self._watts_cache: dict = {}
        self._price_cache: dict = {}
        self._cache_version = catalog.version
        # whole-row memo for wave dispatch: tasks that share an input
        # signature (inputs, kind, work) over the same candidate tuple
        # reuse one set of estimate arrays. Keys validate against
        # (routes epoch, catalog version) — topology rewires, outages
        # that change routing, and every replica add/drop (staging
        # completions, cache admits/evictions, output registration) bump
        # one of the two. The memoized arrays are frozen read-only
        # because every hit shares them. ``memo_rows=False`` restores
        # the always-recompute behaviour (the scalar dispatch oracle
        # runs that way so a memo bug cannot hide from the differential).
        self._memo_rows = memo_rows
        self._row_cache: dict = {}
        # last row served, for estimate-at-chosen-site lookups right
        # after a strategy ranked this same task over its candidates
        self._last_row: tuple | None = None

    def exec_time(self, task: TaskSpec, site: Site) -> float:
        """Service time of ``task`` on one slot of ``site``."""
        return site.service_time(task.work, kind=task.kind)

    def _nearest(self, name: str, site_name: str) -> tuple[str, float]:
        if self._cache_version != self.catalog.version:
            self._nearest_cache.clear()
            self._cache_version = self.catalog.version
        key = (name, site_name)
        hit = self._nearest_cache.get(key)
        if hit is None:
            hit = self.catalog.nearest_source(self.topology, name, site_name)
            self._nearest_cache[key] = hit
        return hit

    def stage_plan(
        self, task: TaskSpec, site: Site
    ) -> list[tuple[str, str, float]]:
        """For each input not at ``site``: ``(dataset, source, seconds)``
        using the nearest replica. Raises if an input has no replica
        anywhere (a dependency not yet produced — planner misuse)."""
        plan = []
        for name in task.inputs:
            if self.catalog.has_replica(name, site.name):
                continue
            src, est = self._nearest(name, site.name)
            plan.append((name, src, est))
        return plan

    def estimate(self, task: TaskSpec, site: Site) -> TaskEstimate:
        """Full planner estimate for placing ``task`` at ``site``.

        Staging of multiple inputs is assumed parallel (time = max), as
        the scheduler indeed fetches them concurrently.
        """
        plan = self.stage_plan(task, site)
        stage_time = max((t for _, _, t in plan), default=0.0)
        bytes_moved = sum(
            self.catalog.dataset(name).size_bytes for name, _, _ in plan
        )
        transfer_usd = sum(
            self.topology.path_info(src, site.name).transfer_cost(
                self.catalog.dataset(name).size_bytes
            )
            for name, src, _ in plan
        )
        exec_time = self.exec_time(task, site)
        return TaskEstimate(
            task=task.name,
            site=site.name,
            stage_time_s=stage_time,
            exec_time_s=exec_time,
            bytes_moved=bytes_moved,
            energy_j=site.power.marginal_energy(exec_time),
            compute_usd=site.pricing.compute_cost(exec_time),
            transfer_usd=transfer_usd,
        )

    def _stage_arrays(
        self, name: str, names: tuple[str, ...], cols: np.ndarray, epoch: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Per-candidate staging contributions for one dataset, memoized
        per (routes epoch, dataset replica version) so one dataset's
        arrays survive other datasets being staged. Returns
        ``(stage_time, bytes, transfer_usd)`` with zeros at candidates
        that already hold a replica, or ``None`` when every candidate
        does (nothing to stage anywhere).

        Source choice reproduces :meth:`ReplicaCatalog.nearest_source`
        exactly: candidate sources are scanned in replica-registration
        order and ``argmin`` keeps the first minimum, matching the
        scalar strict-``<`` first-wins scan.
        """
        key = (name, names)
        dsver = self.catalog.dataset_version(name)
        hit = self._stage_cache.get(key)
        if hit is not None and hit[0] == epoch and hit[1] == dsver:
            return hit[5]
        size = self.catalog.dataset(name).size_bytes
        sources = self.catalog.locations(name)
        if not sources:
            raise DataFabricError(f"dataset {name!r} has no replicas")
        n = len(names)
        t_best = u_best = None
        if hit is not None and hit[0] == epoch:
            # stale only because replicas changed; if sources merely grew
            # (the common staging pattern), fold the appended ones into
            # the cached per-source minimum instead of rebuilding. A
            # later source wins only on strictly smaller time — the same
            # rule as argmin keeping its first occurrence.
            old = hit[2]
            if len(sources) >= len(old) and sources[:len(old)] == old:
                t_best, u_best = hit[3], hit[4]
                for src in sources[len(old):]:
                    lat, bw, usd = self.topology.path_rows(src)
                    t_new = _stage_times(lat, bw, cols, size)
                    better = t_new < t_best
                    t_best = np.where(better, t_new, t_best)
                    u_best = np.where(better, usd[cols], u_best)
        if t_best is None:
            if len(sources) == 1:
                lat, bw, usd = self.topology.path_rows(sources[0])
                t_best = _stage_times(lat, bw, cols, size)
                u_best = usd[cols]
            else:
                times = np.empty((len(sources), n))
                usds = np.empty((len(sources), n))
                for i, src in enumerate(sources):
                    lat, bw, usd = self.topology.path_rows(src)
                    times[i] = _stage_times(lat, bw, cols, size)
                    usds[i] = usd[cols]
                best = times.argmin(axis=0)
                picked = np.arange(n)
                t_best = times[best, picked]
                u_best = usds[best, picked]
        held = set(sources)
        need = np.fromiter(
            (nm not in held for nm in names), dtype=bool, count=n,
        )
        if not need.any():
            arrays = None
        else:
            # pre-masked contribution arrays: adding 0.0 at resident
            # sites is a bit-exact no-op, so estimate_batch can
            # accumulate with plain ufuncs instead of fancy indexing
            with np.errstate(invalid="ignore"):
                usd_term = u_best * (size / 1e9)
            # unreachable candidates carry inf $/GB; inf * 0 bytes is
            # NaN, which must rank as unreachable, not free
            usd_term = np.where(np.isfinite(u_best), usd_term, np.inf)
            arrays = (
                np.where(need, t_best, 0.0),
                np.where(need, size, 0.0),
                np.where(need, usd_term, 0.0),
            )
        self._stage_cache[key] = (epoch, dsver, sources, t_best, u_best, arrays)
        return arrays

    def estimate_batch(self, task: TaskSpec, sites: list[Site]) -> BatchEstimate:
        """Vectorized :meth:`estimate` over many candidate sites.

        Produces arrays whose entries are bit-identical to the scalar
        estimates (same routing, same nearest-replica tie-breaks, same
        floating-point operation order), at O(inputs x sources) numpy
        work instead of O(sites x inputs x sources) Python work.
        """
        if not sites:
            raise SchedulingError("estimate_batch over an empty site list")
        names = tuple(map(_SITE_NAME, sites))
        n = len(names)
        epoch = self.topology.routes_epoch
        row_key = version = None
        if self._memo_rows:
            row_key = (task.inputs, task.kind, task.work, names)
            version = self.catalog.version
            row = self._row_cache.get(row_key)
            if row is not None and row[0] == epoch and row[1] == version:
                batch = BatchEstimate(task.name, names, *row[2])
                self._last_row = (row_key, epoch, version, batch)
                return batch
        hit = self._cols_cache.get(names)
        if hit is not None and hit[0] == epoch:
            cols = hit[1]
        else:
            index = self.topology.site_index
            try:
                cols = np.fromiter(
                    (index[nm] for nm in names), dtype=np.intp, count=n
                )
            except KeyError as exc:
                raise SchedulingError(f"unknown site {exc.args[0]!r}") from None
            self._cols_cache[names] = (epoch, cols)
        stage = np.zeros(n)
        bytes_moved = np.zeros(n)
        transfer_usd = np.zeros(n)
        for name in task.inputs:
            arrays = self._stage_arrays(name, names, cols, epoch)
            if arrays is None:
                continue
            t_add, b_add, u_add = arrays
            # parallel staging: per-site time is the max over needed
            # inputs; bytes and dollars accumulate in task.inputs order,
            # matching the scalar plan's summation order
            np.maximum(stage, t_add, out=stage)
            bytes_moved += b_add
            transfer_usd += u_add
        exec_t = task.work / self._speeds(names, task.kind, sites)
        watts = self._watts_cache.get(names)
        if watts is None:
            watts = np.fromiter(
                (s.power.busy_watts for s in sites), dtype=float, count=n
            )
            self._watts_cache[names] = watts
        price = self._price_cache.get(names)
        if price is None:
            price = np.fromiter(
                (s.pricing.usd_per_core_hour for s in sites),
                dtype=float, count=n,
            )
            self._price_cache[names] = price
        # elementwise forms of PowerModel.marginal_energy and
        # PricingModel.compute_cost (slots=1): same operation order,
        # bit-identical to the scalar calls
        energy = watts * exec_t
        compute = price * (exec_t / 3600.0)
        batch = BatchEstimate(
            task=task.name,
            sites=names,
            stage_time_s=stage,
            exec_time_s=exec_t,
            bytes_moved=bytes_moved,
            energy_j=energy,
            compute_usd=compute,
            transfer_usd=transfer_usd,
        )
        if row_key is not None:
            arrays = (stage, exec_t, bytes_moved, energy, compute,
                      transfer_usd)
            for a in arrays:
                a.setflags(write=False)
            if len(self._row_cache) >= _ROW_CACHE_MAX:
                self._row_cache.clear()
            self._row_cache[row_key] = (epoch, version, arrays)
            self._last_row = (row_key, epoch, version, batch)
        return batch

    def row_times(
        self, task: TaskSpec, site_name: str
    ) -> tuple[float, float] | None:
        """``(stage_s, exec_s)`` for one named site served from the most
        recent memoized row, or ``None`` when no current row covers it.

        The wave dispatch loop calls this for the site the strategy just
        chose — the strategy's ranking pass populated ``_last_row`` for
        exactly this task signature, so the common case is two column
        reads. Bit-identical to the :meth:`estimate` fields by the batch
        contract (``BatchEstimate.at(i)`` equals the scalar estimate)."""
        last = self._last_row
        if last is None:
            return None
        row_key, epoch, version, batch = last
        if (row_key[0] != task.inputs or row_key[1] != task.kind
                or row_key[2] != task.work):
            return None
        if (epoch != self.topology.routes_epoch
                or version != self.catalog.version):
            return None
        try:
            i = batch.sites.index(site_name)
        except ValueError:
            return None
        return float(batch.stage_time_s[i]), float(batch.exec_time_s[i])

    def _speeds(
        self, names: tuple[str, ...], kind: str | None, sites: list[Site]
    ) -> np.ndarray:
        """Cached per-candidate effective speeds for a task kind (sites
        are frozen, so these never expire)."""
        key = (names, kind)
        speeds = self._speed_cache.get(key)
        if speeds is None:
            speeds = np.fromiter(
                (s.effective_speed(kind) for s in sites),
                dtype=float, count=len(names),
            )
            self._speed_cache[key] = speeds
        return speeds

    def mean_exec_time(self, task: TaskSpec, sites: list[Site]) -> float:
        """Average service time across candidate sites (HEFT ranking)."""
        if not sites:
            raise SchedulingError("mean_exec_time over an empty site list")
        names = tuple(s.name for s in sites)
        exec_t = task.work / self._speeds(names, task.kind, sites)
        # left-to-right Python summation, matching the scalar loop's bits
        return sum(exec_t.tolist()) / len(sites)
