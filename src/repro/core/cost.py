"""Cost estimation: the planner's view of time, bytes, energy, dollars.

A :class:`CostModel` answers "what would running task T at site S cost?"
using only catalog and topology state — no simulation. Strategies rank
candidate sites with these estimates; the scheduler then measures what
actually happens (contention makes reality worse than the estimate, which
is exactly the gap E2 quantifies between planner quality levels).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.continuum.site import Site
from repro.continuum.topology import Topology
from repro.datafabric.catalog import ReplicaCatalog
from repro.errors import SchedulingError
from repro.workflow.task import TaskSpec


@dataclass(frozen=True)
class TaskEstimate:
    """Planner estimate for one (task, site) pairing."""

    task: str
    site: str
    stage_time_s: float      # move missing inputs to the site (unloaded)
    exec_time_s: float       # service time at the site
    bytes_moved: float       # input bytes not already resident
    energy_j: float          # marginal execution energy
    compute_usd: float       # slot-time dollars
    transfer_usd: float      # data movement dollars along chosen paths

    @property
    def total_time_s(self) -> float:
        return self.stage_time_s + self.exec_time_s

    @property
    def total_usd(self) -> float:
        return self.compute_usd + self.transfer_usd


class CostModel:
    """Estimates built from topology + replica catalog state."""

    def __init__(self, topology: Topology, catalog: ReplicaCatalog):
        self.topology = topology
        self.catalog = catalog
        # nearest-source memo: (dataset, site) -> (src, est), valid for
        # one catalog version. Placement evaluates every candidate site
        # for every ready task, so identical lookups repeat heavily
        # within a dispatch round; this cache was the top line of the
        # scheduler profile before it existed.
        self._nearest_cache: dict[tuple[str, str], tuple[str, float]] = {}
        self._cache_version = catalog.version

    def exec_time(self, task: TaskSpec, site: Site) -> float:
        """Service time of ``task`` on one slot of ``site``."""
        return site.service_time(task.work, kind=task.kind)

    def _nearest(self, name: str, site_name: str) -> tuple[str, float]:
        if self._cache_version != self.catalog.version:
            self._nearest_cache.clear()
            self._cache_version = self.catalog.version
        key = (name, site_name)
        hit = self._nearest_cache.get(key)
        if hit is None:
            hit = self.catalog.nearest_source(self.topology, name, site_name)
            self._nearest_cache[key] = hit
        return hit

    def stage_plan(
        self, task: TaskSpec, site: Site
    ) -> list[tuple[str, str, float]]:
        """For each input not at ``site``: ``(dataset, source, seconds)``
        using the nearest replica. Raises if an input has no replica
        anywhere (a dependency not yet produced — planner misuse)."""
        plan = []
        for name in task.inputs:
            if self.catalog.has_replica(name, site.name):
                continue
            src, est = self._nearest(name, site.name)
            plan.append((name, src, est))
        return plan

    def estimate(self, task: TaskSpec, site: Site) -> TaskEstimate:
        """Full planner estimate for placing ``task`` at ``site``.

        Staging of multiple inputs is assumed parallel (time = max), as
        the scheduler indeed fetches them concurrently.
        """
        plan = self.stage_plan(task, site)
        stage_time = max((t for _, _, t in plan), default=0.0)
        bytes_moved = sum(
            self.catalog.dataset(name).size_bytes for name, _, _ in plan
        )
        transfer_usd = sum(
            self.topology.path_info(src, site.name).transfer_cost(
                self.catalog.dataset(name).size_bytes
            )
            for name, src, _ in plan
        )
        exec_time = self.exec_time(task, site)
        return TaskEstimate(
            task=task.name,
            site=site.name,
            stage_time_s=stage_time,
            exec_time_s=exec_time,
            bytes_moved=bytes_moved,
            energy_j=site.power.marginal_energy(exec_time),
            compute_usd=site.pricing.compute_cost(exec_time),
            transfer_usd=transfer_usd,
        )

    def mean_exec_time(self, task: TaskSpec, sites: list[Site]) -> float:
        """Average service time across candidate sites (HEFT ranking)."""
        if not sites:
            raise SchedulingError("mean_exec_time over an empty site list")
        return sum(self.exec_time(task, s) for s in sites) / len(sites)
