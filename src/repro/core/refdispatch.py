"""Frozen scalar dispatch: the wave path's correctness oracle.

This is the task-at-a-time placement loop exactly as it stood before
wave-batched dispatch, kept as a selectable mode
(``ContinuumScheduler(dispatch="scalar")`` or ``REPRO_DISPATCH=scalar``).
A scalar run also disables the cost model's row memo, so its estimates
are recomputed from scratch for every task — the differential tests
compare the wave path's memoized decision stream against genuinely
independent arithmetic, and the CI smoke diff compares whole experiment
tables across the two modes.

Do not "improve" this loop. Its entire value is staying byte-for-byte
what shipped: any divergence between it and the wave path is a wave
bug by definition.
"""

from __future__ import annotations

from repro.core.placement import PlacementDecision
from repro.errors import SchedulingError


def scalar_dispatch(run, batch, vetoed) -> None:
    """Place one ready batch task-at-a-time (pre-wave semantics).

    ``run`` is the scheduler's ``_Run``; the caller has already set the
    context clock, installed the breaker veto set, and confirmed at
    least one candidate is up. Held tasks go back on ``run.ready``.
    """
    for task in run.strategy.prioritize(batch, run.ctx):
        if task.pinned_site and run.ctx.is_down(task.pinned_site):
            # pinned to a dark site: hold until it recovers
            # (pins override breaker vetoes — there is no choice)
            run.ready.append(task)
            continue
        try:
            site_name = task.pinned_site or run.strategy.select_site(
                task, run.ctx
            )
        except SchedulingError:
            if run.failures is not None or vetoed:
                # transiently unplaceable (e.g. the strategy's whole
                # tier is dark or vetoed): hold until recovery
                run.ready.append(task)
                continue
            raise
        if site_name not in run.resources:
            raise SchedulingError(
                f"strategy chose non-candidate site {site_name!r} "
                f"for task {task.name!r}"
            )
        est, est_finish = run.ctx.estimate_finish(
            task, run.ctx.site(site_name)
        )
        run.ctx.reserve(site_name, est_finish)
        decision = PlacementDecision(
            task=task.name, site=site_name, decided_at=run.sim.now,
            est_stage_s=est.stage_time_s, est_exec_s=est.exec_time_s,
            est_finish=est_finish,
        )
        run.decisions.append(decision)
        if run._m_decisions is not None:
            run._m_decisions.labels(
                site=site_name, strategy=run.strategy.name).inc()
        run._start_attempt(task, site_name, decision)
