"""Energy offload calculus: when does shipping work *save joules*?

The time calculus (:mod:`repro.core.analytic`) answers "is offload
faster?". Battery-bound devices ask a different question — "is offload
cheaper in energy?" — with its own crossover, the classic result of the
mobile-offloading literature (Kumar & Lu, *Computer* 2010):

- compute locally:  ``E_local = P_busy * work / s_local``
- offload:          ``E_off   = P_tx * D_up / B_up + P_rx * D_down / B_down
  + P_idle * t_remote_wait``

Offloading saves energy when the radio cost of moving the data (plus
idling through the remote computation) undercuts the local computation's
draw. Large ``work``-to-``data`` ratios favour offload; chatty
small-compute tasks never should.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class EnergyProfile:
    """Device-side power draw in each state (watts)."""

    busy_watts: float = 4.0     # CPU fully active
    tx_watts: float = 1.8       # radio transmitting
    rx_watts: float = 1.2       # radio receiving
    idle_watts: float = 0.3     # waiting for the remote result

    def __post_init__(self):
        for name in ("busy_watts", "tx_watts", "rx_watts", "idle_watts"):
            check_non_negative(name, getattr(self, name))


@dataclass(frozen=True)
class EnergyDecision:
    """Outcome of a local-vs-offload energy analysis."""

    local_energy_j: float
    offload_energy_j: float
    local_time_s: float
    offload_time_s: float

    @property
    def offload_saves_energy(self) -> bool:
        return self.offload_energy_j < self.local_energy_j

    @property
    def offload_saves_time(self) -> bool:
        return self.offload_time_s < self.local_time_s

    @property
    def win_win(self) -> bool:
        """Offload both faster *and* more frugal — the regime where the
        decision is easy; outside it, policy must pick an objective."""
        return self.offload_saves_energy and self.offload_saves_time


def energy_offload_analysis(
    work: float,
    data_up_bytes: float,
    *,
    local_speed: float,
    remote_speed: float,
    bandwidth_Bps: float,
    profile: EnergyProfile | None = None,
    data_down_bytes: float = 0.0,
    latency_s: float = 0.0,
) -> EnergyDecision:
    """Device-energy comparison of computing locally vs offloading.

    The remote machine's own energy is *not* counted — this is the
    battery's ledger (datacenter joules are someone else's bill; use
    :class:`repro.core.cost.CostModel` for fleet-wide accounting).
    """
    check_non_negative("work", work)
    check_non_negative("data_up_bytes", data_up_bytes)
    check_non_negative("data_down_bytes", data_down_bytes)
    check_positive("local_speed", local_speed)
    check_positive("remote_speed", remote_speed)
    check_positive("bandwidth_Bps", bandwidth_Bps)
    check_non_negative("latency_s", latency_s)
    profile = profile or EnergyProfile()

    t_local = work / local_speed
    e_local = profile.busy_watts * t_local

    t_up = data_up_bytes / bandwidth_Bps
    t_down = data_down_bytes / bandwidth_Bps
    t_wait = work / remote_speed + 2.0 * latency_s
    t_offload = t_up + t_wait + t_down
    e_offload = (
        profile.tx_watts * t_up
        + profile.idle_watts * t_wait
        + profile.rx_watts * t_down
    )
    return EnergyDecision(
        local_energy_j=e_local,
        offload_energy_j=e_offload,
        local_time_s=t_local,
        offload_time_s=t_offload,
    )


def energy_crossover_work(
    data_up_bytes: float,
    *,
    local_speed: float,
    remote_speed: float,
    bandwidth_Bps: float,
    profile: EnergyProfile | None = None,
    data_down_bytes: float = 0.0,
    latency_s: float = 0.0,
) -> float | None:
    """Work units above which offloading this payload saves energy.

    Solves ``E_local(work) = E_offload(work)`` for ``work``; both sides
    are linear in work, so the crossover is closed-form. Returns None
    when offload never pays (the device computes more cheaply per work
    unit than it idles per remote work unit — only possible when the
    remote is slower relative to the idle/busy power ratio).
    """
    check_positive("local_speed", local_speed)
    check_positive("remote_speed", remote_speed)
    check_positive("bandwidth_Bps", bandwidth_Bps)
    profile = profile or EnergyProfile()

    # E_local = (busy/s_l) * w
    # E_off   = fixed + (idle/s_r) * w
    per_work_local = profile.busy_watts / local_speed
    per_work_offload = profile.idle_watts / remote_speed
    fixed = (
        profile.tx_watts * data_up_bytes / bandwidth_Bps
        + profile.rx_watts * data_down_bytes / bandwidth_Bps
        + profile.idle_watts * 2.0 * latency_s
    )
    slope = per_work_local - per_work_offload
    if slope <= 0:
        return None
    if fixed == 0:
        return 0.0
    return fixed / slope
