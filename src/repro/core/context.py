"""Scheduling context: the planner-visible state strategies consult.

Holds the topology, catalog-backed cost model, per-site slot availability
estimates, and RNG streams. The scheduler owns one instance per run and
keeps the slot estimates current as it assigns and completes tasks.
"""

from __future__ import annotations

import numpy as np

from repro.continuum.site import Site
from repro.continuum.topology import Topology
from repro.core.cost import BatchEstimate, CostModel, TaskEstimate
from repro.datafabric.catalog import ReplicaCatalog
from repro.errors import SchedulingError
from repro.utils.rng import RngRegistry
from repro.workflow.task import TaskSpec


class SchedulingContext:
    """What a placement strategy may look at and touch."""

    def __init__(
        self,
        topology: Topology,
        catalog: ReplicaCatalog,
        *,
        rngs: RngRegistry | None = None,
        candidate_sites: list[str] | None = None,
        view=None,
    ):
        self.topology = topology
        # strategies and the cost model read through ``view`` when the
        # run's metadata is served by the replicated control plane (a
        # possibly-stale CatalogView); the bare catalog otherwise. The
        # authoritative catalog stays reachable either way.
        self.catalog = view if view is not None else catalog
        self.authoritative = catalog
        self.cost = CostModel(topology, self.catalog)
        self.rngs = rngs or RngRegistry(0)
        names = candidate_sites if candidate_sites is not None else topology.site_names
        if not names:
            raise SchedulingError("no candidate sites")
        self._all_candidates: list[Site] = [topology.site(n) for n in names]
        self._down: set[str] = set()
        self._vetoed: set[str] = set()
        self._slots: dict[str, np.ndarray] = {
            s.name: np.zeros(s.slots) for s in self._all_candidates
        }
        # maintained copy of each site's earliest-free slot time, so the
        # hot est_available path is a dict lookup instead of a ufunc min
        self._slot_min: dict[str, float] = {
            s.name: 0.0 for s in self._all_candidates
        }
        # earliest-free vectors per candidate tuple for the batch path,
        # invalidated whenever any reservation lands
        self._avail_cache: dict[tuple[str, ...], tuple[int, np.ndarray]] = {}
        self._avail_epoch = 0
        self._now = 0.0

    @property
    def candidates(self) -> list[Site]:
        """Candidate sites currently up and not vetoed (failure
        injection hides the dark ones from strategies; circuit breakers
        veto the unhealthy ones)."""
        if not self._down and not self._vetoed:
            return list(self._all_candidates)
        blocked = self._down | self._vetoed
        return [s for s in self._all_candidates if s.name not in blocked]

    # -- availability (failure injection) -----------------------------------------
    def mark_down(self, site: str) -> None:
        if site not in self._slots:
            raise SchedulingError(f"{site!r} is not a candidate site")
        self._down.add(site)

    def mark_up(self, site: str) -> None:
        self._down.discard(site)

    def is_down(self, site: str) -> bool:
        return site in self._down

    # -- health vetoes (resilience policies) ---------------------------------------
    def set_vetoed(self, sites) -> None:
        """Replace the veto set: sites hidden from strategies without
        being down (open circuit breakers, hedge-duplicate exclusion).
        The scheduler recomputes this before every placement round."""
        self._vetoed = set(sites)

    # -- clock (scheduler-maintained) ------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def set_now(self, t: float) -> None:
        self._now = t

    # -- slot availability estimates ----------------------------------------------
    def est_available(self, site: str) -> float:
        """Earliest time a slot at ``site`` is expected to be free."""
        try:
            earliest = self._slot_min[site]
        except KeyError:
            raise SchedulingError(f"{site!r} is not a candidate site") from None
        return max(earliest, self._now)

    def reserve(self, site: str, finish_time: float) -> None:
        """Record that the earliest slot at ``site`` is now believed busy
        until ``finish_time``."""
        slots = self._slots[site]
        slots[int(slots.argmin())] = finish_time
        self._slot_min[site] = float(slots.min())
        self._avail_epoch += 1

    def load_of(self, site: str) -> float:
        """Mean remaining busy time across slots (a load signal for
        least-loaded tie-breaking)."""
        slots = self._slots[site]
        return float(np.maximum(slots - self._now, 0.0).mean())

    # -- planner estimates ------------------------------------------------------------
    def estimate(self, task: TaskSpec, site: Site) -> TaskEstimate:
        return self.cost.estimate(task, site)

    def estimate_finish(self, task: TaskSpec, site: Site) -> tuple[TaskEstimate, float]:
        """EFT rule: staging overlaps the queue wait; execution starts at
        ``max(now + stage, slot available)`` and runs for ``exec``."""
        est = self.cost.estimate(task, site)
        start = max(self._now + est.stage_time_s, self.est_available(site.name))
        return est, start + est.exec_time_s

    def estimate_finish_batch(
        self, task: TaskSpec, sites: list[Site]
    ) -> tuple[BatchEstimate, np.ndarray]:
        """Vectorized :meth:`estimate_finish` over many sites: one
        :class:`BatchEstimate` plus the per-site finish-time array, each
        entry bit-identical to the scalar EFT rule."""
        est = self.cost.estimate_batch(task, sites)
        hit = self._avail_cache.get(est.sites)
        if hit is not None and hit[0] == self._avail_epoch:
            earliest = hit[1]
        else:
            try:
                earliest = np.fromiter(
                    (self._slot_min[s.name] for s in sites),
                    dtype=float, count=len(sites),
                )
            except KeyError as exc:
                raise SchedulingError(
                    f"{exc.args[0]!r} is not a candidate site"
                ) from None
            self._avail_cache[est.sites] = (self._avail_epoch, earliest)
        # max(slot_min, now) elementwise == scalar est_available
        avail = np.maximum(earliest, self._now)
        start = np.maximum(self._now + est.stage_time_s, avail)
        return est, start + est.exec_time_s

    def site(self, name: str) -> Site:
        return self.topology.site(name)
