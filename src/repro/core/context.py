"""Scheduling context: the planner-visible state strategies consult.

Holds the topology, catalog-backed cost model, per-site slot availability
estimates, and RNG streams. The scheduler owns one instance per run and
keeps the slot estimates current as it assigns and completes tasks.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict

import numpy as np

from repro.continuum.site import Site
from repro.continuum.topology import Topology
from repro.core.cost import BatchEstimate, CostModel, TaskEstimate
from repro.datafabric.catalog import ReplicaCatalog
from repro.errors import SchedulingError
from repro.utils.rng import RngRegistry
from repro.workflow.task import TaskSpec

# Earliest-free vectors are kept per candidate tuple. Churny runs see a
# small rotation of candidate sets (all-up, one-down, vetoed variants),
# so a short LRU captures them all; anything longer only hoards tuples
# that will never recur.
_AVAIL_CACHE_MAX = 8


class SchedulingContext:
    """What a placement strategy may look at and touch."""

    def __init__(
        self,
        topology: Topology,
        catalog: ReplicaCatalog,
        *,
        rngs: RngRegistry | None = None,
        candidate_sites: list[str] | None = None,
        view=None,
        memo: bool = True,
    ):
        self.topology = topology
        # strategies and the cost model read through ``view`` when the
        # run's metadata is served by the replicated control plane (a
        # possibly-stale CatalogView); the bare catalog otherwise. The
        # authoritative catalog stays reachable either way.
        self.catalog = view if view is not None else catalog
        self.authoritative = catalog
        # ``memo=False`` disables the cost model's wave row memo; the
        # scalar dispatch oracle runs un-memoized so the differential
        # tests compare genuinely independent computations
        self.cost = CostModel(topology, self.catalog, memo_rows=memo)
        self.rngs = rngs or RngRegistry(0)
        names = candidate_sites if candidate_sites is not None else topology.site_names
        if not names:
            raise SchedulingError("no candidate sites")
        self._all_candidates: list[Site] = [topology.site(n) for n in names]
        self._down: set[str] = set()
        self._vetoed: set[str] = set()
        self._slots: dict[str, np.ndarray] = {
            s.name: np.zeros(s.slots) for s in self._all_candidates
        }
        # (busy-until, slot-index) heap mirror of _slots, updated in
        # lockstep: reserve() runs once per placed task, and one O(log
        # slots) heapreplace beats two O(slots) reductions there. The
        # lexicographic pop picks the smallest busy-until and, on ties,
        # the lowest slot index — exactly ndarray.argmin's first-minimum
        # rule — while load_of keeps the ndarray (same slot layout, so
        # its pairwise mean stays bit-stable).
        self._slot_heap: dict[str, list[tuple[float, int]]] = {
            s.name: [(0.0, i) for i in range(s.slots)]
            for s in self._all_candidates
        }
        # maintained copy of each site's earliest-free slot time, so the
        # hot est_available path is a dict lookup instead of a ufunc min
        self._slot_min: dict[str, float] = {
            s.name: 0.0 for s in self._all_candidates
        }
        # earliest-free vectors per candidate tuple for the batch path.
        # Reservations update the chosen site's entry of every cached
        # vector in place (there are at most _AVAIL_CACHE_MAX of them),
        # so in-wave placements never rebuild the vector per task; the
        # LRU bound keeps churn-varying candidate tuples from growing
        # the cache without limit.
        self._avail_cache: OrderedDict[
            tuple[str, ...], tuple[np.ndarray, dict[str, int]]
        ] = OrderedDict()
        self._cand_cache: list[Site] | None = None
        self._now = 0.0

    @property
    def candidates(self) -> list[Site]:
        """Candidate sites currently up and not vetoed (failure
        injection hides the dark ones from strategies; circuit breakers
        veto the unhealthy ones)."""
        cached = self._cand_cache
        if cached is None:
            if not self._down and not self._vetoed:
                cached = list(self._all_candidates)
            else:
                blocked = self._down | self._vetoed
                cached = [
                    s for s in self._all_candidates if s.name not in blocked
                ]
            self._cand_cache = cached
        return cached.copy()

    # -- availability (failure injection) -----------------------------------------
    def mark_down(self, site: str) -> None:
        if site not in self._slots:
            raise SchedulingError(f"{site!r} is not a candidate site")
        if site not in self._down:
            self._down.add(site)
            self._cand_cache = None

    def mark_up(self, site: str) -> None:
        if site in self._down:
            self._down.discard(site)
            self._cand_cache = None

    def is_down(self, site: str) -> bool:
        return site in self._down

    # -- health vetoes (resilience policies) ---------------------------------------
    def set_vetoed(self, sites) -> None:
        """Replace the veto set: sites hidden from strategies without
        being down (open circuit breakers, hedge-duplicate exclusion).
        The scheduler recomputes this before every placement round."""
        new = set(sites)
        if new != self._vetoed:
            self._vetoed = new
            self._cand_cache = None

    # -- clock (scheduler-maintained) ------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def set_now(self, t: float) -> None:
        self._now = t

    # -- slot availability estimates ----------------------------------------------
    def est_available(self, site: str) -> float:
        """Earliest time a slot at ``site`` is expected to be free."""
        try:
            earliest = self._slot_min[site]
        except KeyError:
            raise SchedulingError(f"{site!r} is not a candidate site") from None
        return max(earliest, self._now)

    def reserve(self, site: str, finish_time: float) -> None:
        """Record that the earliest slot at ``site`` is now believed busy
        until ``finish_time``."""
        heap = self._slot_heap[site]
        i = heap[0][1]
        heapq.heapreplace(heap, (finish_time, i))
        self._slots[site][i] = finish_time
        earliest = heap[0][0]
        self._slot_min[site] = earliest
        # changed-column-only maintenance of the cached earliest-free
        # vectors: only this site's entry moved, so every cached vector
        # stays exactly equal to a fresh _slot_min gather
        for avail, pos in self._avail_cache.values():
            i = pos.get(site)
            if i is not None:
                avail[i] = earliest

    def load_of(self, site: str) -> float:
        """Mean remaining busy time across slots (a load signal for
        least-loaded tie-breaking)."""
        slots = self._slots[site]
        return float(np.maximum(slots - self._now, 0.0).mean())

    # -- planner estimates ------------------------------------------------------------
    def estimate(self, task: TaskSpec, site: Site) -> TaskEstimate:
        return self.cost.estimate(task, site)

    def estimate_finish(self, task: TaskSpec, site: Site) -> tuple[TaskEstimate, float]:
        """EFT rule: staging overlaps the queue wait; execution starts at
        ``max(now + stage, slot available)`` and runs for ``exec``."""
        est = self.cost.estimate(task, site)
        start = max(self._now + est.stage_time_s, self.est_available(site.name))
        return est, start + est.exec_time_s

    def estimate_finish_batch(
        self, task: TaskSpec, sites: list[Site]
    ) -> tuple[BatchEstimate, np.ndarray]:
        """Vectorized :meth:`estimate_finish` over many sites: one
        :class:`BatchEstimate` plus the per-site finish-time array, each
        entry bit-identical to the scalar EFT rule."""
        est = self.cost.estimate_batch(task, sites)
        hit = self._avail_cache.get(est.sites)
        if hit is not None:
            earliest = hit[0]
            self._avail_cache.move_to_end(est.sites)
        else:
            try:
                earliest = np.fromiter(
                    (self._slot_min[s.name] for s in sites),
                    dtype=float, count=len(sites),
                )
            except KeyError as exc:
                raise SchedulingError(
                    f"{exc.args[0]!r} is not a candidate site"
                ) from None
            pos = {nm: i for i, nm in enumerate(est.sites)}
            self._avail_cache[est.sites] = (earliest, pos)
            if len(self._avail_cache) > _AVAIL_CACHE_MAX:
                self._avail_cache.popitem(last=False)
        # max(slot_min, now) elementwise == scalar est_available
        avail = np.maximum(earliest, self._now)
        start = np.maximum(self._now + est.stage_time_s, avail)
        return est, start + est.exec_time_s

    def estimate_finish_at(
        self, task: TaskSpec, site_name: str
    ) -> tuple[float, float, float]:
        """:meth:`estimate_finish` for one named site, returning the
        ``(stage_s, exec_s, finish)`` floats a placement decision needs.
        Served from the cost model's memoized row when the strategy's
        ranking pass just scored this task there (the wave dispatch hot
        path), falling back to the scalar estimate otherwise. Either way
        the floats are bit-identical to :meth:`estimate_finish`."""
        hit = self.cost.row_times(task, site_name)
        if hit is None:
            est, finish = self.estimate_finish(task, self.site(site_name))
            return est.stage_time_s, est.exec_time_s, finish
        stage_s, exec_s = hit
        start = max(self._now + stage_s, self.est_available(site_name))
        return stage_s, exec_s, start + exec_s

    def site(self, name: str) -> Site:
        return self.topology.site(name)
