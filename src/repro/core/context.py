"""Scheduling context: the planner-visible state strategies consult.

Holds the topology, catalog-backed cost model, per-site slot availability
estimates, and RNG streams. The scheduler owns one instance per run and
keeps the slot estimates current as it assigns and completes tasks.
"""

from __future__ import annotations

import numpy as np

from repro.continuum.site import Site
from repro.continuum.topology import Topology
from repro.core.cost import CostModel, TaskEstimate
from repro.datafabric.catalog import ReplicaCatalog
from repro.errors import SchedulingError
from repro.utils.rng import RngRegistry
from repro.workflow.task import TaskSpec


class SchedulingContext:
    """What a placement strategy may look at and touch."""

    def __init__(
        self,
        topology: Topology,
        catalog: ReplicaCatalog,
        *,
        rngs: RngRegistry | None = None,
        candidate_sites: list[str] | None = None,
    ):
        self.topology = topology
        self.catalog = catalog
        self.cost = CostModel(topology, catalog)
        self.rngs = rngs or RngRegistry(0)
        names = candidate_sites if candidate_sites is not None else topology.site_names
        if not names:
            raise SchedulingError("no candidate sites")
        self._all_candidates: list[Site] = [topology.site(n) for n in names]
        self._down: set[str] = set()
        self._slots: dict[str, np.ndarray] = {
            s.name: np.zeros(s.slots) for s in self._all_candidates
        }
        self._now = 0.0

    @property
    def candidates(self) -> list[Site]:
        """Candidate sites currently up (failure injection hides the
        dark ones from strategies)."""
        if not self._down:
            return list(self._all_candidates)
        return [s for s in self._all_candidates if s.name not in self._down]

    # -- availability (failure injection) -----------------------------------------
    def mark_down(self, site: str) -> None:
        if site not in self._slots:
            raise SchedulingError(f"{site!r} is not a candidate site")
        self._down.add(site)

    def mark_up(self, site: str) -> None:
        self._down.discard(site)

    def is_down(self, site: str) -> bool:
        return site in self._down

    # -- clock (scheduler-maintained) ------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def set_now(self, t: float) -> None:
        self._now = t

    # -- slot availability estimates ----------------------------------------------
    def est_available(self, site: str) -> float:
        """Earliest time a slot at ``site`` is expected to be free."""
        try:
            slots = self._slots[site]
        except KeyError:
            raise SchedulingError(f"{site!r} is not a candidate site") from None
        return max(float(slots.min()), self._now)

    def reserve(self, site: str, finish_time: float) -> None:
        """Record that the earliest slot at ``site`` is now believed busy
        until ``finish_time``."""
        slots = self._slots[site]
        slots[int(slots.argmin())] = finish_time

    def load_of(self, site: str) -> float:
        """Mean remaining busy time across slots (a load signal for
        least-loaded tie-breaking)."""
        slots = self._slots[site]
        return float(np.maximum(slots - self._now, 0.0).mean())

    # -- planner estimates ------------------------------------------------------------
    def estimate(self, task: TaskSpec, site: Site) -> TaskEstimate:
        return self.cost.estimate(task, site)

    def estimate_finish(self, task: TaskSpec, site: Site) -> tuple[TaskEstimate, float]:
        """EFT rule: staging overlaps the queue wait; execution starts at
        ``max(now + stage, slot available)`` and runs for ``exec``."""
        est = self.cost.estimate(task, site)
        start = max(self._now + est.stage_time_s, self.est_available(site.name))
        return est, start + est.exec_time_s

    def site(self, name: str) -> Site:
        return self.topology.site(name)
