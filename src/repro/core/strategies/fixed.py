"""Fixed placements: the baselines every comparison needs."""

from __future__ import annotations

from repro.continuum.tiers import Tier
from repro.core.context import SchedulingContext
from repro.core.strategies.base import PlacementStrategy
from repro.errors import SchedulingError
from repro.workflow.task import TaskSpec


class FixedSiteStrategy(PlacementStrategy):
    """Everything runs at one named site (the degenerate continuum)."""

    def __init__(self, site_name: str):
        self.site_name = site_name
        self.name = f"fixed:{site_name}"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        if all(s.name != self.site_name for s in ctx.candidates):
            raise SchedulingError(
                f"fixed site {self.site_name!r} is not a candidate"
            )
        return self.site_name


class TierStrategy(PlacementStrategy):
    """Everything runs in one tier — cloud-only, edge-only, hpc-only.

    Within the tier the least-loaded site is chosen (ties: declaration
    order), which is how a per-tier load balancer would behave.
    """

    def __init__(self, tier: Tier | str):
        self.tier = Tier.parse(tier)
        self.name = f"{self.tier.name.lower()}-only"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        sites = [s for s in ctx.candidates if s.tier == self.tier]
        if not sites:
            raise SchedulingError(
                f"no candidate site in tier {self.tier.name}"
            )
        return min(sites, key=lambda s: ctx.load_of(s.name)).name
