"""Weighted multi-objective placement and Pareto analysis.

For each ready task, every candidate site is scored on four axes —
finish time, energy, dollars, bytes moved — min-max normalized across
the candidates and combined with user weights. Sweeping the weights
traces the policy family whose outcomes E7 plots as a Pareto front.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.context import SchedulingContext
from repro.core.strategies.base import PlacementStrategy
from repro.errors import SchedulingError
from repro.workflow.task import TaskSpec

OBJECTIVES = ("time", "energy", "usd", "bytes")


class MultiObjectiveStrategy(PlacementStrategy):
    """Scalarized multi-objective site selection."""

    def __init__(self, weights: Mapping[str, float] | None = None):
        weights = dict(weights or {"time": 1.0})
        unknown = set(weights) - set(OBJECTIVES)
        if unknown:
            raise SchedulingError(
                f"unknown objectives {sorted(unknown)}; allowed: {OBJECTIVES}"
            )
        total = sum(weights.values())
        if total <= 0:
            raise SchedulingError("objective weights must sum to > 0")
        self.weights = {k: v / total for k, v in weights.items() if v > 0}
        label = ",".join(f"{k}={v:.2g}" for k, v in sorted(self.weights.items()))
        self.name = f"multi({label})"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        sites = ctx.candidates
        est, finish = ctx.estimate_finish_batch(task, sites)
        metrics = {
            "time": finish,
            "energy": est.energy_j,
            "usd": est.total_usd,
            "bytes": est.bytes_moved,
        }
        # min-max normalize each axis across candidates; accumulation
        # follows self.weights order so scores match the scalar loop
        # bit-for-bit, and argmin keeps the first minimum (the scalar
        # declaration-order tie-break)
        scores = np.zeros(len(sites))
        for axis, weight in self.weights.items():
            values = metrics[axis]
            lo = values.min()
            span = values.max() - lo
            if span == 0:
                continue
            scores += weight * ((values - lo) / span)
        return sites[int(scores.argmin())].name


def pareto_front(points: Sequence[Mapping[str, float]],
                 axes: Sequence[str]) -> list[int]:
    """Indices of non-dominated points (all axes minimized).

    A point dominates another when it is <= on every axis and < on at
    least one. Used by E7 to extract the front from a weight sweep.
    """
    if not axes:
        raise SchedulingError("pareto_front needs at least one axis")
    front: list[int] = []
    for i, p in enumerate(points):
        dominated = False
        for j, q in enumerate(points):
            if i == j:
                continue
            if all(q[a] <= p[a] for a in axes) and any(q[a] < p[a] for a in axes):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front
