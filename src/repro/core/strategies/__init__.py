"""Placement strategies: the answers to "where should I compute?".

Baselines (fixed, random, round-robin), list schedulers (greedy EFT,
HEFT), objective-specialized planners (data gravity, latency/SLO,
energy, dollars), a weighted multi-objective combiner, and an online
bandit that learns placements from observed turnarounds.

:func:`strategy_catalog` builds the standard comparison set used by E2.
"""

from repro.core.strategies.base import PlacementStrategy
from repro.core.strategies.fixed import FixedSiteStrategy, TierStrategy
from repro.core.strategies.simple import RandomStrategy, RoundRobinStrategy
from repro.core.strategies.greedy import GreedyEFTStrategy, HEFTStrategy
from repro.core.strategies.batch import MaxMinStrategy, MinMinStrategy
from repro.core.strategies.data_gravity import DataGravityStrategy
from repro.core.strategies.aware import (
    CostAwareStrategy,
    EnergyAwareStrategy,
    LatencyAwareStrategy,
)
from repro.core.strategies.multi_objective import (
    MultiObjectiveStrategy,
    pareto_front,
)
from repro.core.strategies.adaptive import AdaptiveUCBStrategy


def strategy_catalog(include_adaptive: bool = False) -> list[PlacementStrategy]:
    """The standard E2 comparison set, cheapest-to-smartest."""
    strategies: list[PlacementStrategy] = [
        TierStrategy("edge"),
        TierStrategy("cloud"),
        RandomStrategy(),
        RoundRobinStrategy(),
        DataGravityStrategy(),
        MinMinStrategy(),
        MaxMinStrategy(),
        GreedyEFTStrategy(),
        HEFTStrategy(),
    ]
    if include_adaptive:
        strategies.append(AdaptiveUCBStrategy())
    return strategies


__all__ = [
    "PlacementStrategy",
    "FixedSiteStrategy",
    "TierStrategy",
    "RandomStrategy",
    "RoundRobinStrategy",
    "GreedyEFTStrategy",
    "HEFTStrategy",
    "MinMinStrategy",
    "MaxMinStrategy",
    "DataGravityStrategy",
    "LatencyAwareStrategy",
    "EnergyAwareStrategy",
    "CostAwareStrategy",
    "MultiObjectiveStrategy",
    "pareto_front",
    "AdaptiveUCBStrategy",
    "strategy_catalog",
]
