"""Uninformed baselines: random and round-robin."""

from __future__ import annotations

from repro.core.context import SchedulingContext
from repro.core.strategies.base import PlacementStrategy
from repro.workflow.task import TaskSpec


class RandomStrategy(PlacementStrategy):
    """Uniform random site per task (seeded via the context registry)."""

    name = "random"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        rng = ctx.rngs.stream("strategy-random")
        return ctx.candidates[int(rng.integers(len(ctx.candidates)))].name


class RoundRobinStrategy(PlacementStrategy):
    """Cycle through candidate sites in declaration order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        site = ctx.candidates[self._next % len(ctx.candidates)]
        self._next += 1
        return site.name
