"""Strategy interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.core.context import SchedulingContext
from repro.errors import SchedulingError
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskSpec


class PlacementStrategy(ABC):
    """Pluggable site selection (and optional task prioritization).

    Lifecycle per scheduler run:

    1. :meth:`prepare` — once, with the full DAG (compute ranks etc.),
    2. :meth:`prioritize` — whenever several tasks are ready at once,
    3. :meth:`select_site` — per task, returning a site name,
    4. :meth:`observe` — after each task completes, with the measured
       record (adaptive strategies learn from this).

    Strategies must be deterministic given the context's RNG registry.
    """

    name: str = "base"

    def prepare(self, dag: WorkflowDAG, ctx: SchedulingContext) -> None:
        """Hook for per-run precomputation; default does nothing."""

    def prioritize(self, ready: list[TaskSpec], ctx: SchedulingContext) -> list[TaskSpec]:
        """Order simultaneously-ready tasks; default keeps FIFO order."""
        return list(ready)

    @abstractmethod
    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        """Pick the execution site for ``task``."""

    def select_sites(
        self, tasks: list[TaskSpec], ctx: SchedulingContext
    ) -> Iterator[tuple[TaskSpec, str | SchedulingError]]:
        """Wave placement: yield ``(task, choice)`` pairs in placement
        order, where ``choice`` is a site name or the
        :class:`SchedulingError` the selection raised for that task.

        The scheduler reserves the chosen slot between ``next()`` calls,
        so each selection sees availability reflecting every earlier
        in-wave placement — the sequential EFT-reserve semantics are
        part of this contract, not an implementation detail. The default
        reproduces :meth:`prioritize` + per-task :meth:`select_site`
        exactly (pinned tasks never reach :meth:`select_site`, so
        RNG-consuming strategies draw the same stream as the scalar
        loop); batch-estimating strategies get their (tasks x sites)
        matrix reuse from the cost model's memoized rows underneath this
        same protocol.
        """
        for task in self.prioritize(tasks, ctx):
            if task.pinned_site:
                yield task, task.pinned_site
                continue
            try:
                yield task, self.select_site(task, ctx)
            except SchedulingError as exc:
                yield task, exc

    def observe(self, record, ctx: SchedulingContext) -> None:
        """Completion feedback (measured :class:`TaskRecord`); default
        ignores it."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
