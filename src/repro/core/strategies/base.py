"""Strategy interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.context import SchedulingContext
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskSpec


class PlacementStrategy(ABC):
    """Pluggable site selection (and optional task prioritization).

    Lifecycle per scheduler run:

    1. :meth:`prepare` — once, with the full DAG (compute ranks etc.),
    2. :meth:`prioritize` — whenever several tasks are ready at once,
    3. :meth:`select_site` — per task, returning a site name,
    4. :meth:`observe` — after each task completes, with the measured
       record (adaptive strategies learn from this).

    Strategies must be deterministic given the context's RNG registry.
    """

    name: str = "base"

    def prepare(self, dag: WorkflowDAG, ctx: SchedulingContext) -> None:
        """Hook for per-run precomputation; default does nothing."""

    def prioritize(self, ready: list[TaskSpec], ctx: SchedulingContext) -> list[TaskSpec]:
        """Order simultaneously-ready tasks; default keeps FIFO order."""
        return list(ready)

    @abstractmethod
    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        """Pick the execution site for ``task``."""

    def observe(self, record, ctx: SchedulingContext) -> None:
        """Completion feedback (measured :class:`TaskRecord`); default
        ignores it."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
