"""Objective-specialized planners: latency (SLO), energy, dollars."""

from __future__ import annotations

import numpy as np

from repro.core.context import SchedulingContext
from repro.core.strategies.base import PlacementStrategy
from repro.core.strategies.greedy import earliest_finish_site
from repro.workflow.task import TaskSpec


class LatencyAwareStrategy(PlacementStrategy):
    """Deadline-first placement.

    For tasks with a deadline: among sites whose *estimated* finish meets
    it, pick the cheapest (dollars, then energy) — no point burning cloud
    credits on slack you do not need. If no site is predicted to make the
    deadline, fall back to plain earliest-finish (minimize the miss).
    Tasks without deadlines get earliest-finish.
    """

    name = "latency-aware"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        if task.deadline_s is None:
            return earliest_finish_site(task, ctx)
        sites = ctx.candidates
        est, finish = ctx.estimate_finish_batch(task, sites)
        idx = np.nonzero(finish <= task.deadline_s)[0]
        if idx.size == 0:
            return sites[int(finish.argmin())].name
        # cheapest feasible site: lexicographic (usd, energy, finish,
        # name) minimum, matching the scalar tuple-min over feasibles
        names = np.array([sites[int(i)].name for i in idx])
        order = np.lexsort(
            (names, finish[idx], est.energy_j[idx], est.total_usd[idx])
        )
        return str(names[order[0]])


class EnergyAwareStrategy(PlacementStrategy):
    """Minimize marginal execution energy; ties by estimated finish."""

    name = "energy-aware"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        sites = ctx.candidates
        est, finish = ctx.estimate_finish_batch(task, sites)
        best = np.lexsort((finish, est.energy_j))[0]
        return sites[int(best)].name


class CostAwareStrategy(PlacementStrategy):
    """Minimize dollars (compute + transfer); ties by estimated finish."""

    name = "cost-aware"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        sites = ctx.candidates
        est, finish = ctx.estimate_finish_batch(task, sites)
        best = np.lexsort((finish, est.total_usd))[0]
        return sites[int(best)].name
