"""Objective-specialized planners: latency (SLO), energy, dollars."""

from __future__ import annotations

from repro.core.context import SchedulingContext
from repro.core.strategies.base import PlacementStrategy
from repro.core.strategies.greedy import earliest_finish_site
from repro.workflow.task import TaskSpec


class LatencyAwareStrategy(PlacementStrategy):
    """Deadline-first placement.

    For tasks with a deadline: among sites whose *estimated* finish meets
    it, pick the cheapest (dollars, then energy) — no point burning cloud
    credits on slack you do not need. If no site is predicted to make the
    deadline, fall back to plain earliest-finish (minimize the miss).
    Tasks without deadlines get earliest-finish.
    """

    name = "latency-aware"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        if task.deadline_s is None:
            return earliest_finish_site(task, ctx)
        feasible = []  # (usd, energy, finish, name)
        fallback = None  # (finish, name)
        for site in ctx.candidates:
            est, finish = ctx.estimate_finish(task, site)
            if fallback is None or finish < fallback[0]:
                fallback = (finish, site.name)
            if finish <= task.deadline_s:
                feasible.append((est.total_usd, est.energy_j, finish, site.name))
        if feasible:
            return min(feasible)[3]
        return fallback[1]


class EnergyAwareStrategy(PlacementStrategy):
    """Minimize marginal execution energy; ties by estimated finish."""

    name = "energy-aware"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        best = None  # ((energy, finish), name)
        for site in ctx.candidates:
            est, finish = ctx.estimate_finish(task, site)
            key = (est.energy_j, finish)
            if best is None or key < best[0]:
                best = (key, site.name)
        return best[1]


class CostAwareStrategy(PlacementStrategy):
    """Minimize dollars (compute + transfer); ties by estimated finish."""

    name = "cost-aware"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        best = None  # ((usd, finish), name)
        for site in ctx.candidates:
            est, finish = ctx.estimate_finish(task, site)
            key = (est.total_usd, finish)
            if best is None or key < best[0]:
                best = (key, site.name)
        return best[1]
