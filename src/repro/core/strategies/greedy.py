"""List schedulers: greedy earliest-finish-time and HEFT.

Greedy EFT evaluates every candidate site's estimated finish (staging
overlapped with queueing, per the context's EFT rule) and takes the
minimum — locally optimal, rank-free.

HEFT (Topcuoglu et al.) adds the global ingredient: tasks are prioritized
by *upward rank* — the longest remaining path to a sink measured in mean
execution plus mean communication time — so critical-path tasks get first
pick of the fast sites. Site selection is the same EFT rule. The E2
ablation compares exactly these two to isolate the value of ranking.
"""

from __future__ import annotations

import numpy as np

from repro.core.context import SchedulingContext
from repro.core.strategies.base import PlacementStrategy
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskSpec


def earliest_finish_site(task: TaskSpec, ctx: SchedulingContext) -> str:
    """The EFT decision shared by several strategies.

    One vectorized finish-time pass over all candidates; ``argmin``
    keeps the first minimum, matching the scalar first-wins scan this
    replaced.
    """
    sites = ctx.candidates
    if not sites:
        return None
    _, finish = ctx.estimate_finish_batch(task, sites)
    return sites[int(finish.argmin())].name


class GreedyEFTStrategy(PlacementStrategy):
    """Earliest-finish-time without task ranking."""

    name = "greedy-eft"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        return earliest_finish_site(task, ctx)


class HEFTStrategy(PlacementStrategy):
    """Heterogeneous Earliest Finish Time."""

    name = "heft"

    def __init__(self) -> None:
        self._rank: dict[str, float] = {}

    def prepare(self, dag: WorkflowDAG, ctx: SchedulingContext) -> None:
        """Compute upward ranks from mean execution and communication."""
        links = ctx.topology.links()
        if links:
            mean_bw = float(np.mean([l.bandwidth_Bps for _, _, l in links]))
        else:
            mean_bw = float("inf")

        def mean_time(task: TaskSpec) -> float:
            exec_mean = ctx.cost.mean_exec_time(task, ctx.candidates)
            comm_mean = task.output_bytes / mean_bw if mean_bw else 0.0
            return exec_mean + comm_mean

        # merge (not replace): in stream mode prepare() is called per
        # arriving job while earlier jobs' tasks are still in flight
        self._rank.update(dag.bottom_levels(time_of=mean_time))

    def prioritize(self, ready: list[TaskSpec], ctx: SchedulingContext) -> list[TaskSpec]:
        """Highest upward rank first (unknown tasks sort last, stable)."""
        return sorted(ready, key=lambda t: -self._rank.get(t.name, 0.0))

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        return earliest_finish_site(task, ctx)
