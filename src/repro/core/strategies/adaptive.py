"""Online adaptive placement: a UCB bandit over sites.

The model-based planners trust the topology description; when reality
drifts (bandwidth drops, a site slows down), their estimates go stale.
This strategy instead *learns* per task-kind turnarounds from completion
feedback and balances exploitation against exploration with a UCB1-style
bonus. E8 shows it re-converging after a mid-run bandwidth shift that
static planners never notice.

A sliding window (``window``) bounds memory *and* makes the learner
forget pre-shift observations — without it, a nonstationary environment
would poison the means forever.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque

from repro.core.context import SchedulingContext
from repro.core.strategies.base import PlacementStrategy
from repro.errors import SchedulingError
from repro.workflow.task import TaskSpec


class AdaptiveUCBStrategy(PlacementStrategy):
    """UCB1 over (task kind, site) arms, minimizing observed turnaround."""

    name = "adaptive-ucb"

    def __init__(self, exploration: float = 1.0, window: int = 50):
        if exploration < 0:
            raise SchedulingError(
                f"exploration must be >= 0, got {exploration}"
            )
        if window < 1:
            raise SchedulingError(f"window must be >= 1, got {window}")
        self.exploration = exploration
        self.window = window
        self._obs: dict[tuple[str, str], deque] = defaultdict(
            lambda: deque(maxlen=window)
        )
        self._pulls: dict[str, int] = defaultdict(int)  # per kind

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        kind = task.kind
        total = self._pulls[kind]
        # Unexplored arms first (declaration order keeps it deterministic).
        for site in ctx.candidates:
            if not self._obs[(kind, site.name)]:
                return site.name
        # UCB on negative turnaround: lower observed mean minus bonus wins.
        best_name, best_score = None, None
        for site in ctx.candidates:
            samples = self._obs[(kind, site.name)]
            mean = sum(samples) / len(samples)
            bonus = self.exploration * math.sqrt(
                2.0 * math.log(max(total, 2)) / len(samples)
            )
            score = mean - bonus * mean  # relative bonus, scale-free
            if best_score is None or score < best_score:
                best_name, best_score = site.name, score
        return best_name

    def observe(self, record, ctx: SchedulingContext) -> None:
        """Feed a completed :class:`TaskRecord` back into the arms."""
        kind = getattr(record, "kind", "generic")
        self._obs[(kind, record.site)].append(record.turnaround)
        self._pulls[kind] += 1

    def mean_turnaround(self, kind: str, site: str) -> float | None:
        """Introspection for tests/benchmarks."""
        samples = self._obs[(kind, site)]
        return sum(samples) / len(samples) if samples else None
