"""Data gravity: move the computation, not the bytes."""

from __future__ import annotations

import numpy as np

from repro.core.context import SchedulingContext
from repro.core.strategies.base import PlacementStrategy
from repro.workflow.task import TaskSpec


class DataGravityStrategy(PlacementStrategy):
    """Pick the site that minimizes bytes pulled over the network; break
    ties (typically: several sites already hold everything, or the task
    has no inputs) by estimated finish time.

    This is the right call when the data-to-compute ratio is high — the
    beamline regime — and the wrong one when a big machine elsewhere
    could amortize the haul, which is exactly the trade-off E2's
    workload grid exposes.
    """

    name = "data-gravity"

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        sites = ctx.candidates
        est, finish = ctx.estimate_finish_batch(task, sites)
        # lexicographic (bytes, finish) minimum; stable lexsort keeps the
        # first candidate among exact ties, like the scalar tuple scan
        best = np.lexsort((finish, est.bytes_moved))[0]
        return sites[int(best)].name
