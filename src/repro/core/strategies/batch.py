"""Classic batch heuristics: Min-Min and Max-Min.

Both originate in grid scheduling (Maheswaran et al.): from the ready
set, repeatedly commit the task whose best (earliest) completion time is
globally smallest (Min-Min: short tasks first, keeps machines
load-balanced on small work) or largest (Max-Min: big rocks first,
avoids a long task stranding at the end).

Within this scheduler's dispatch model the heuristics are expressed as a
prioritization: the ready batch is ordered by each task's best estimated
finish over all up sites — ascending for Min-Min, descending for
Max-Min — and site selection is the shared earliest-finish rule, with
slot reservations updated between placements exactly as the textbook
algorithms iterate.
"""

from __future__ import annotations

from repro.core.context import SchedulingContext
from repro.core.strategies.base import PlacementStrategy
from repro.core.strategies.greedy import earliest_finish_site
from repro.workflow.task import TaskSpec


def _best_finish(task: TaskSpec, ctx: SchedulingContext) -> float:
    return float(ctx.estimate_finish_batch(task, ctx.candidates)[1].min())


class MinMinStrategy(PlacementStrategy):
    """Commit the quickest-to-finish ready task first."""

    name = "min-min"

    def prioritize(self, ready: list[TaskSpec], ctx: SchedulingContext) -> list[TaskSpec]:
        return sorted(ready, key=lambda t: _best_finish(t, ctx))

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        return earliest_finish_site(task, ctx)


class MaxMinStrategy(PlacementStrategy):
    """Commit the slowest-to-finish ready task first (big rocks)."""

    name = "max-min"

    def prioritize(self, ready: list[TaskSpec], ctx: SchedulingContext) -> list[TaskSpec]:
        return sorted(ready, key=lambda t: -_best_finish(t, ctx))

    def select_site(self, task: TaskSpec, ctx: SchedulingContext) -> str:
        return earliest_finish_site(task, ctx)
