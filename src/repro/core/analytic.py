"""The continuum calculus: closed-form offload analysis.

Gilder's argument, quantified. A task of ``work`` units sits with its
``data_bytes`` of input at a local site. Should it run there, or should
the data ship to a remote site that is faster (or specialized)?

- local time:  ``T_l = work / s_local``
- remote time: ``T_r = L_up + D/B + work / s_remote + L_down``

(the result is assumed small relative to the input — the common analysis
regime; pass ``result_bytes`` to include the return leg's serialization).

Offloading wins iff ``T_r < T_l``. The *crossover bandwidth* ``B*`` is
where they tie: below it locality wins regardless of remote speed; above
it the machine "disintegrates across the net". E1 checks the simulator
reproduces this curve; E10 sweeps the specialization factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class OffloadDecision:
    """Outcome of a local-vs-remote analysis."""

    local_time_s: float
    remote_time_s: float
    crossover_bandwidth_Bps: float | None   # None when offload never wins
    speedup: float                          # local / remote (>1 => offload)

    @property
    def offload_wins(self) -> bool:
        return self.remote_time_s < self.local_time_s


def remote_time(
    work: float,
    data_bytes: float,
    remote_speed: float,
    bandwidth_Bps: float,
    latency_s: float = 0.0,
    result_bytes: float = 0.0,
) -> float:
    """End-to-end time for the ship-and-compute option."""
    check_non_negative("work", work)
    check_non_negative("data_bytes", data_bytes)
    check_positive("remote_speed", remote_speed)
    check_positive("bandwidth_Bps", bandwidth_Bps)
    check_non_negative("latency_s", latency_s)
    check_non_negative("result_bytes", result_bytes)
    transfer = (data_bytes + result_bytes) / bandwidth_Bps
    # one latency per direction (request with data; response with result)
    return 2.0 * latency_s + transfer + work / remote_speed


def local_time(work: float, local_speed: float) -> float:
    """Time for computing in place."""
    check_non_negative("work", work)
    check_positive("local_speed", local_speed)
    return work / local_speed


def crossover_bandwidth(
    work: float,
    data_bytes: float,
    local_speed: float,
    remote_speed: float,
    latency_s: float = 0.0,
    result_bytes: float = 0.0,
) -> float | None:
    """Bandwidth ``B*`` above which offloading wins, or None if it never
    does (remote not faster enough to cover the latency floor)."""
    t_local = local_time(work, local_speed)
    check_positive("remote_speed", remote_speed)
    compute_gain = t_local - work / remote_speed - 2.0 * latency_s
    payload = data_bytes + result_bytes
    if compute_gain <= 0:
        return None
    if payload == 0:
        return 0.0  # any connectivity at all suffices
    return payload / compute_gain


def offload_analysis(
    work: float,
    data_bytes: float,
    local_speed: float,
    remote_speed: float,
    bandwidth_Bps: float,
    latency_s: float = 0.0,
    result_bytes: float = 0.0,
) -> OffloadDecision:
    """Complete local-vs-remote comparison at a given bandwidth."""
    t_local = local_time(work, local_speed)
    t_remote = remote_time(work, data_bytes, remote_speed, bandwidth_Bps,
                           latency_s, result_bytes)
    speedup = t_local / t_remote if t_remote > 0 else math.inf
    return OffloadDecision(
        local_time_s=t_local,
        remote_time_s=t_remote,
        crossover_bandwidth_Bps=crossover_bandwidth(
            work, data_bytes, local_speed, remote_speed, latency_s,
            result_bytes,
        ),
        speedup=speedup,
    )


def gilder_ratio(bandwidth_Bps: float, local_speed: float,
                 bytes_per_work_unit: float) -> float:
    """Dimensionless network-vs-compute speed ratio.

    ``1.0`` means the network moves a task's data exactly as fast as the
    local machine chews through its work — Gilder's disintegration
    threshold for equal-speed remote appliances with no latency. Defined
    as ``(B / bytes_per_work_unit) / local_speed``: work units deliverable
    per second over the wire, relative to work units computable per
    second locally.
    """
    check_positive("bandwidth_Bps", bandwidth_Bps)
    check_positive("local_speed", local_speed)
    check_positive("bytes_per_work_unit", bytes_per_work_unit)
    return (bandwidth_Bps / bytes_per_work_unit) / local_speed
