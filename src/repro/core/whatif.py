"""What-if sensitivity analysis: re-run a workload under scaled worlds.

The keynote's planning questions ("what if the network were 10x
faster?", "what if we halved the latency?") become one call: sweep a
scale factor through a topology factory, re-schedule the same workload,
and report how the outcome metrics move. This is the programmatic
version of what E1/E10 do for the single-task case — for *any* workload
and strategy.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.placement import ScheduleResult
from repro.core.scheduler import ContinuumScheduler
from repro.core.strategies.base import PlacementStrategy
from repro.errors import SchedulingError


def sensitivity_sweep(
    topology_factory: Callable[..., object],
    workload_factory: Callable[[], tuple],
    strategy_factory: Callable[[], PlacementStrategy],
    *,
    parameter: str = "bandwidth_scale",
    scales: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 10.0),
    place_at: Callable[[object, list], list] | None = None,
    seed: int = 0,
) -> list[dict]:
    """Makespan/bytes/cost sensitivity to one infrastructure parameter.

    Parameters
    ----------
    topology_factory:
        Called as ``topology_factory(**{parameter: scale})`` — all the
        builder presets accept ``bandwidth_scale`` and ``latency_scale``.
    workload_factory:
        Returns a fresh ``(dag, externals)`` pair per run.
    strategy_factory:
        Returns a fresh strategy per run (stateful strategies must not
        leak learning across scales).
    place_at:
        Maps ``(topology, externals)`` to ``[(dataset, site), ...]``;
        defaults to round-robin over peripheral sites.
    Returns rows with the scale, makespan, bytes moved, cost, energy,
    and the makespan relative to the ``scale == 1.0`` baseline (NaN when
    1.0 is not in the sweep).
    """
    if not scales:
        raise SchedulingError("sensitivity_sweep needs at least one scale")
    if place_at is None:
        from repro.bench.e02_strategies import place_externals

        place_at = place_externals

    rows: list[dict] = []
    baseline: float | None = None
    for scale in scales:
        topo = topology_factory(**{parameter: float(scale)})
        dag, externals = workload_factory()
        result: ScheduleResult = ContinuumScheduler(topo, seed=seed).run(
            dag, strategy_factory(),
            external_inputs=place_at(topo, externals),
        )
        if scale == 1.0:
            baseline = result.makespan
        rows.append({
            parameter: float(scale),
            "makespan_s": result.makespan,
            "bytes_moved": result.bytes_moved,
            "cost_usd": result.total_usd,
            "energy_j": result.energy_j,
        })
    for row in rows:
        row["vs_baseline"] = (
            row["makespan_s"] / baseline if baseline else float("nan")
        )
    return rows
