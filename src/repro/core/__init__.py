"""The paper's contribution: placement and scheduling across the continuum.

"Where should I compute?" — this package answers it three ways:

- **analytically** (:mod:`repro.core.analytic`): closed-form crossover
  conditions for computing locally vs. shipping data to faster/special
  remote resources (Gilder's disintegration argument),
- **online**, with pluggable :mod:`placement strategies
  <repro.core.strategies>` ranging from fixed-tier baselines through
  HEFT to an adaptive bandit scheduler,
- **empirically**, by executing workflow DAGs on a simulated continuum
  (:class:`ContinuumScheduler`) with real data movement, queueing,
  energy, and monetary accounting.
"""

from repro.core.cost import BatchEstimate, CostModel, TaskEstimate
from repro.core.placement import PlacementDecision, TaskRecord, ScheduleResult
from repro.core.analytic import (
    OffloadDecision,
    crossover_bandwidth,
    gilder_ratio,
    offload_analysis,
)
from repro.core.energy_analytic import (
    EnergyDecision,
    EnergyProfile,
    energy_crossover_work,
    energy_offload_analysis,
)
from repro.core.slo import SLOReport, slo_report
from repro.core.whatif import sensitivity_sweep
from repro.core.scheduler import (
    ContinuumScheduler,
    JobResult,
    SchedulingContext,
    StreamJob,
    StreamResult,
)
from repro.core.strategies import (
    AdaptiveUCBStrategy,
    CostAwareStrategy,
    DataGravityStrategy,
    EnergyAwareStrategy,
    FixedSiteStrategy,
    GreedyEFTStrategy,
    HEFTStrategy,
    LatencyAwareStrategy,
    MaxMinStrategy,
    MinMinStrategy,
    MultiObjectiveStrategy,
    PlacementStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    TierStrategy,
    strategy_catalog,
)

__all__ = [
    "CostModel",
    "TaskEstimate",
    "BatchEstimate",
    "PlacementDecision",
    "TaskRecord",
    "ScheduleResult",
    "OffloadDecision",
    "crossover_bandwidth",
    "gilder_ratio",
    "offload_analysis",
    "SLOReport",
    "slo_report",
    "EnergyProfile",
    "EnergyDecision",
    "energy_offload_analysis",
    "energy_crossover_work",
    "sensitivity_sweep",
    "ContinuumScheduler",
    "SchedulingContext",
    "StreamJob",
    "StreamResult",
    "JobResult",
    "PlacementStrategy",
    "FixedSiteStrategy",
    "TierStrategy",
    "RandomStrategy",
    "RoundRobinStrategy",
    "GreedyEFTStrategy",
    "HEFTStrategy",
    "MinMinStrategy",
    "MaxMinStrategy",
    "DataGravityStrategy",
    "LatencyAwareStrategy",
    "EnergyAwareStrategy",
    "CostAwareStrategy",
    "MultiObjectiveStrategy",
    "AdaptiveUCBStrategy",
    "strategy_catalog",
]
