"""SLO accounting over task records."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.stats import percentile


@dataclass(frozen=True)
class SLOReport:
    """Deadline satisfaction summary for one run."""

    total: int              # tasks carrying a deadline
    met: int
    p50_latency_s: float    # turnaround percentiles over deadline tasks
    p95_latency_s: float
    worst_slack_s: float    # most negative slack (deadline - finish)

    @property
    def satisfaction(self) -> float:
        """Fraction of deadline-carrying tasks that met it (1.0 when
        there were none — an empty SLO is trivially satisfied)."""
        return self.met / self.total if self.total else 1.0


def slo_report(records) -> SLOReport:
    """Build an :class:`SLOReport` from an iterable of task records
    (anything with ``deadline_s``, ``exec_finished``, ``turnaround``)."""
    deadline_records = [r for r in records if r.deadline_s is not None]
    if not deadline_records:
        return SLOReport(0, 0, float("nan"), float("nan"), 0.0)
    met = sum(1 for r in deadline_records if r.exec_finished <= r.deadline_s)
    latencies = [r.turnaround for r in deadline_records]
    slacks = [r.deadline_s - r.exec_finished for r in deadline_records]
    return SLOReport(
        total=len(deadline_records),
        met=met,
        p50_latency_s=percentile(latencies, 50),
        p95_latency_s=percentile(latencies, 95),
        worst_slack_s=min(slacks),
    )
