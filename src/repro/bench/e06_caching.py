"""E6 — edge caching policies under a skewed read stream (Table).

Question: how much WAN traffic does an edge cache save, and does the
eviction policy matter? A Zipf-skewed stream of dataset reads arrives at
an edge site whose replicas live in the cloud; the edge cache capacity
holds ~10% of the corpus. Policies: streaming (no retention), FIFO, LRU,
LFU, LARGEST.

Expected shape: any cache slashes bytes moved versus streaming; LRU/LFU
are the best and roughly tied on Zipf traffic (hot head stays resident);
LARGEST keeps many small cold items and trails on hit rate for the same
capacity.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.continuum import Link, Site, Tier, Topology
from repro.datafabric import Cache, Dataset, ReplicaCatalog, StagedReader, TransferService
from repro.netsim import FlowNetwork
from repro.observe.metrics import current_registry
from repro.simcore import Simulator
from repro.utils.rng import RngRegistry
from repro.utils.units import GB, Gbps, MB, MILLISECOND
from repro.workloads import zipf_dataset_stream

N_DATASETS = 40
CACHE_BYTES = 1.0 * GB   # ~12% of the corpus
ALPHA = 1.1


def _size_of(i: int) -> float:
    """Deterministic heterogeneous sizes (100-400 MB) so size-aware
    eviction has something to bite on."""
    return (100 + 75 * (i % 5)) * MB


def _world():
    topo = Topology("e6")
    topo.add_site(Site("edge", Tier.EDGE))
    topo.add_site(Site("cloud", Tier.CLOUD))
    topo.add_link("edge", "cloud", Link(20 * MILLISECOND, 1 * Gbps))
    sim = Simulator()
    net = FlowNetwork(sim, topo)
    catalog = ReplicaCatalog()
    for i in range(N_DATASETS):
        catalog.register(Dataset(f"ds{i}", _size_of(i)))
        catalog.add_replica(f"ds{i}", "cloud")
    transfers = TransferService(sim, net, catalog)
    reader = StagedReader(transfers)
    return sim, net, catalog, reader


def _drive(policy: str | None, stream: list[int]) -> dict:
    sim, net, catalog, reader = _world()
    if policy is not None:
        reader.attach_cache("edge", Cache(CACHE_BYTES, policy))
    latencies = []

    def consumer():
        for idx in stream:
            outcome = yield reader.read(f"ds{idx}", "edge")
            latencies.append(outcome.latency_s)
            if policy is None:
                # streaming mode: nothing is retained at the edge
                if catalog.has_replica(f"ds{idx}", "edge"):
                    catalog.drop_replica(f"ds{idx}", "edge")

    sim.run_process(consumer())
    reader.emit_metrics(current_registry())
    cache = reader.cache_at("edge")
    return {
        "reads": len(stream),
        "hit_rate": cache.hit_rate if cache else 0.0,
        "GB_moved": net.total_bytes_moved / GB,
        "mean_read_s": sum(latencies) / len(latencies) if latencies else 0.0,
        "evictions": cache.evictions if cache else 0,
    }


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("E6", "Edge cache policy under Zipf reads")
    n_reads = 100 if quick else 400
    stream = zipf_dataset_stream(
        N_DATASETS, n_reads, alpha=ALPHA,
        rng=RngRegistry(seed).stream("e6-zipf"),
    )
    for policy in (None, "fifo", "lru", "lfu", "largest"):
        row = _drive(policy, stream)
        result.row(policy=policy or "none (stream)", **row)
    baseline = result.rows[0]["GB_moved"]
    best = min(result.rows[1:], key=lambda r: r["GB_moved"])
    result.note(
        f"best policy ({best['policy']}) moves "
        f"{best['GB_moved'] / baseline:.0%} of the streaming baseline's bytes"
    )
    corpus = sum(_size_of(i) for i in range(N_DATASETS))
    result.note(
        f"corpus {corpus / GB:.1f} GB (40 datasets, 100-400 MB), cache "
        f"{CACHE_BYTES / GB:.0f} GB, Zipf alpha={ALPHA}"
    )
    return result
