"""E7 — makespan / energy / dollars Pareto front (Figure).

Question: is there one best placement policy, or a genuine trade-off
surface? A climate ensemble runs on the hierarchical continuum under the
multi-objective strategy with a sweep of weight vectors over the
(time, energy, usd) simplex; each run yields one point.

Expected shape: no single point dominates; the front is non-trivial
(several weightings survive); pure-time sits at high energy/cost, pure
energy/cost sit at high makespan.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.e02_strategies import place_externals
from repro.continuum import hierarchical_continuum
from repro.core import ContinuumScheduler, MultiObjectiveStrategy
from repro.core.strategies import pareto_front
from repro.workloads import climate_ensemble

WEIGHT_GRID = [
    {"time": 1.0},
    {"energy": 1.0},
    {"usd": 1.0},
    {"time": 0.5, "energy": 0.5},
    {"time": 0.5, "usd": 0.5},
    {"energy": 0.5, "usd": 0.5},
    {"time": 0.34, "energy": 0.33, "usd": 0.33},
    {"time": 0.8, "energy": 0.1, "usd": 0.1},
    {"time": 0.1, "energy": 0.8, "usd": 0.1},
    {"time": 0.1, "energy": 0.1, "usd": 0.8},
]


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("E7", "Multi-objective Pareto front")
    topo = hierarchical_continuum(seed=seed)
    dag, externals = climate_ensemble(3 if quick else 6)
    grid = WEIGHT_GRID[:6] if quick else WEIGHT_GRID
    points = []
    for weights in grid:
        strategy = MultiObjectiveStrategy(weights)
        run = ContinuumScheduler(topo, seed=seed).run(
            dag, strategy, external_inputs=place_externals(topo, externals)
        )
        points.append({
            "weights": strategy.name,
            "makespan_s": run.makespan,
            "energy_j": run.energy_j,
            "usd": run.total_usd,
        })
    front = set(pareto_front(points, ["makespan_s", "energy_j", "usd"]))
    for i, point in enumerate(points):
        result.row(**point, on_front=i in front)
    result.note(f"{len(front)}/{len(points)} weightings are Pareto-optimal")
    dominated = len(points) - len(front)
    result.note(f"{dominated} weightings dominated (redundant policies)")
    return result
