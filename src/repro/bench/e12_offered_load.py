"""E12 — offered load vs response time (Figure; extension experiment).

Question: what does the continuum buy under *load*, not just for one
workflow? A Poisson stream of small jobs arrives at the edge. Edge-only
placement saturates at the edge's service capacity (the M/M/c hockey
stick); continuum-wide greedy placement spills overflow to the cloud,
holding response times flat far past the edge's knee.

Expected shape: below the edge's capacity the two policies tie (greedy
also prefers the edge: no transfer, same speed class); past it,
edge-only's mean response time grows without bound with queue depth
while greedy's stays near service time, with its cloud-spill fraction
rising alongside the offered load.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.continuum import edge_cloud_pair
from repro.core import ContinuumScheduler, GreedyEFTStrategy, TierStrategy
from repro.core.scheduler import StreamJob
from repro.datafabric import Dataset
from repro.utils.rng import RngRegistry
from repro.utils.stats import percentile
from repro.utils.units import MB, Mbps
from repro.workflow import TaskSpec, WorkflowDAG
from repro.workloads import poisson_arrivals

WORK = 4.0           # 4 s on an edge slot; edge has 4 slots => 1 job/s knee
INPUT_BYTES = 1 * MB
HORIZON_S = 120.0


def _jobs(rate: float, seed: int) -> list[StreamJob]:
    arrivals = poisson_arrivals(rate, HORIZON_S,
                                RngRegistry(seed).stream("e12-arrivals"))
    jobs = []
    for i, t in enumerate(arrivals):
        dag = WorkflowDAG(f"req{i}")
        raw = Dataset(f"req{i}-in", INPUT_BYTES)
        dag.add_task(TaskSpec(f"req{i}-t", work=WORK, inputs=(raw.name,)))
        jobs.append(StreamJob(float(t), dag, ((raw, "edge"),)))
    return jobs


def _drive(rate: float, strategy_name: str, seed: int) -> dict:
    # cloud slots match edge speed: the continuum's value here is pure
    # *elastic capacity* (64 more slots), not a faster machine — greedy
    # keeps work local until queue pressure makes remote EFT win
    topo = edge_cloud_pair(edge_speed=1.0, cloud_speed=1.0,
                           bandwidth_Bps=200 * Mbps, latency_s=0.02)
    strategy = (TierStrategy("edge") if strategy_name == "edge-only"
                else GreedyEFTStrategy())
    stream = ContinuumScheduler(topo, seed=seed).run_stream(
        _jobs(rate, seed), strategy
    )
    responses = [j.response_time for j in stream.jobs]
    spilled = sum(1 for r in stream.records.values() if r.site != "edge")
    return {
        "jobs": len(stream.jobs),
        "mean_response_s": stream.mean_response_time,
        "p95_response_s": percentile(responses, 95),
        "spill_fraction": spilled / max(len(stream.records), 1),
    }


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "E12", "Response time vs offered load (edge knee at 1 job/s)"
    )
    rates = [0.5, 1.2, 2.0] if quick else [0.25, 0.5, 0.8, 1.2, 2.0, 3.0]
    for rate in rates:
        for strategy in ("edge-only", "greedy-eft"):
            row = _drive(rate, strategy, seed)
            result.row(arrival_rate_per_s=rate, strategy=strategy, **row)
    edge_rows = [r for r in result.rows if r["strategy"] == "edge-only"]
    greedy_rows = [r for r in result.rows if r["strategy"] == "greedy-eft"]
    result.note(
        f"at the top rate: edge-only mean response "
        f"{edge_rows[-1]['mean_response_s']:.1f}s vs greedy "
        f"{greedy_rows[-1]['mean_response_s']:.1f}s "
        f"(spill {greedy_rows[-1]['spill_fraction']:.0%})"
    )
    result.note("edge: 4 slots x 4 s service => capacity 1 job/s")
    return result
