"""CLI: run one or all experiments and print their tables.

    python -m repro.bench            # everything, quick mode
    python -m repro.bench E1 E5      # selected, full mode
    python -m repro.bench --full     # everything, full mode
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import EXPERIMENTS, render, save_result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="full sweeps (default quick when running all)")
    parser.add_argument("--quick", action="store_true",
                        help="quick sweeps even for named experiments "
                             "(CI smoke jobs)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write tables under DIR")
    args = parser.parse_args(argv)

    selected = args.experiments or list(EXPERIMENTS)
    quick = args.quick or (not args.full and not args.experiments)
    for exp_id in selected:
        key = exp_id.upper()
        if key not in EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}; known: {list(EXPERIMENTS)}")
            return 2
        result = EXPERIMENTS[key](quick=quick, seed=args.seed)
        print(render(result))
        print()
        if args.save:
            save_result(result, args.save)
    return 0


if __name__ == "__main__":
    sys.exit(main())
