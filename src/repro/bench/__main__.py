"""CLI: run one or all experiments and print their tables.

    python -m repro.bench                 # everything, quick mode
    python -m repro.bench E1 E5           # selected, full mode
    python -m repro.bench --full          # everything, full mode
    python -m repro.bench --jobs 4        # shard across 4 worker processes
    python -m repro.bench --no-cache      # force recompute
    python -m repro.bench E13 --metrics m.json   # + metrics snapshot
    python -m repro.bench E2 --profile p.pstats  # + cProfile dump

Also reachable as ``python -m repro bench ...``. Results are memoized
in a content-addressed cache under ``results/.cache`` (keyed on the
experiment id, its config, and a digest of the ``src/repro`` sources),
so re-running an unchanged experiment replays instantly; ``--no-cache``
bypasses both read and write.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import EXPERIMENTS
from repro.bench.runner import (
    DEFAULT_CACHE_DIR, run_suite, suite_metrics_doc,
)
from repro.errors import ContinuumError


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="full sweeps (default quick when running all)")
    parser.add_argument("--quick", action="store_true",
                        help="quick sweeps even for named experiments "
                             "(CI smoke jobs)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write tables under DIR")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes to shard experiments "
                             "across (default 1: in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the content-addressed result cache")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=DEFAULT_CACHE_DIR,
                        help=f"cache location (default {DEFAULT_CACHE_DIR})")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="collect run metrics and write the canonical "
                             "JSON snapshot to FILE (bypasses the result "
                             "cache; experiment tables are unaffected)")
    parser.add_argument("--profile", metavar="FILE", default=None,
                        help="run under cProfile and dump pstats to FILE "
                             "(sequential runs only; implies --no-cache so "
                             "the profiled work is real)")
    args = parser.parse_args(argv)

    if args.profile is not None and args.jobs != 1:
        print("error: --profile requires sequential execution "
              "(--jobs 1): worker processes aren't profiled",
              file=sys.stderr)
        return 2

    selected = args.experiments or list(EXPERIMENTS)
    quick = args.quick or (not args.full and not args.experiments)
    for exp_id in selected:
        if exp_id.upper() not in EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}; known: {list(EXPERIMENTS)}")
            return 2
    t0 = time.perf_counter()
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
    try:
        if profiler is not None:
            profiler.enable()
        try:
            entries = run_suite(
                selected, quick=quick, seed=args.seed, jobs=args.jobs,
                use_cache=not args.no_cache and profiler is None,
                cache_dir=args.cache_dir,
                save_dir=args.save,
                collect_metrics=args.metrics is not None,
            )
        finally:
            if profiler is not None:
                profiler.disable()
                profiler.dump_stats(args.profile)
                print(f"# profile written to {args.profile} "
                      f"(inspect with: python -m pstats {args.profile})",
                      file=sys.stderr)
        if args.metrics is not None:
            from repro.observe.metrics import snapshot_to_json
            from repro.bench.harness import save_rendered
            import os

            doc = suite_metrics_doc(entries, quick=quick, seed=args.seed)
            save_rendered(snapshot_to_json(doc),
                          os.path.basename(args.metrics) or "metrics.json",
                          os.path.dirname(args.metrics) or ".")
            print(f"# metrics snapshot written to {args.metrics}",
                  file=sys.stderr)
    except ContinuumError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for entry in entries:
        print(entry.rendered)
        print()
    wall = time.perf_counter() - t0
    cached = sum(1 for e in entries if e.cached)
    shards = sum(e.shards for e in entries if not e.cached)
    print(f"# suite: {len(entries)} experiments "
          f"({cached} cached, {shards} shards computed) "
          f"in {wall:.2f}s with jobs={args.jobs}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
