"""Experiment harness: the evaluation suite (E1..E14, E16) of DESIGN.md.

Each experiment module exposes ``run_experiment(quick=False, seed=0)``
returning an :class:`ExperimentResult` whose rows are the table/series
the "paper" would print. ``benchmarks/`` wraps each in a pytest-benchmark
target; ``python -m repro.bench E1`` runs one standalone.
"""

from repro.bench.harness import ExperimentResult, render, save_result
from repro.bench import (
    e01_gilder,
    e02_strategies,
    e03_scalability,
    e04_faas,
    e05_slo,
    e06_caching,
    e07_pareto,
    e08_adaptive,
    e09_engine,
    e10_specialization,
    e11_resilience,
    e12_offered_load,
    e13_resilience_policies,
    e14_topology_zoo,
    e16_control_plane,
)

EXPERIMENTS = {
    "E1": e01_gilder.run_experiment,
    "E2": e02_strategies.run_experiment,
    "E3": e03_scalability.run_experiment,
    "E4": e04_faas.run_experiment,
    "E5": e05_slo.run_experiment,
    "E6": e06_caching.run_experiment,
    "E7": e07_pareto.run_experiment,
    "E8": e08_adaptive.run_experiment,
    "E9": e09_engine.run_experiment,
    "E10": e10_specialization.run_experiment,
    "E11": e11_resilience.run_experiment,
    "E12": e12_offered_load.run_experiment,
    "E13": e13_resilience_policies.run_experiment,
    "E14": e14_topology_zoo.run_experiment,
    "E16": e16_control_plane.run_experiment,
}

__all__ = ["ExperimentResult", "render", "save_result", "EXPERIMENTS"]
