"""E4 — FaaS overheads: cold starts, keep-alive, batching (Table).

Question: what do serverless mechanics cost at the edge? A Poisson
stream of inference requests hits one edge endpoint under (a) a
keep-alive TTL sweep (cold-start economics) and (b) a batching-policy
sweep (latency/throughput trade).

Expected shape: warm starts beat cold by ~the cold/warm ratio on short
functions; longer TTLs drive the cold fraction toward zero; larger
batches raise p50 latency (waiting for peers) while cutting total busy
time per request.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.continuum import Site, Tier
from repro.faas import (
    Autoscaler,
    Batcher,
    BatchPolicy,
    ContainerModel,
    Endpoint,
    FunctionDef,
    FunctionRegistry,
    ScalingPolicy,
)
from repro.simcore import Simulator, Timeout
from repro.utils.rng import RngRegistry
from repro.utils.stats import summarize
from repro.workloads import poisson_arrivals

RATE_PER_S = 4.0
HORIZON_S = 120.0
FN = FunctionDef("infer", work=0.1, kind="dnn-inference",
                 request_bytes=2e5, response_bytes=1e4,
                 batch_overhead_work=0.2)


def _endpoint(sim: Simulator, keep_alive: float) -> Endpoint:
    site = Site("edgebox", Tier.EDGE, speed=1.0, slots=4,
                specializations={"dnn-inference": 8.0})
    registry = FunctionRegistry()
    registry.register(FN)
    return Endpoint(
        sim, site, registry,
        containers=ContainerModel(cold_start_s=2.0, warm_start_s=0.01,
                                  keep_alive_s=keep_alive),
    )


def _drive_plain(keep_alive: float, seed: int) -> dict:
    sim = Simulator()
    ep = _endpoint(sim, keep_alive)
    arrivals = poisson_arrivals(RATE_PER_S, HORIZON_S,
                                RngRegistry(seed).stream("e4-arrivals"))
    latencies = []

    def client(delay):
        yield Timeout(delay)
        record = yield ep.invoke("infer")
        latencies.append(record.service_time)

    for t in arrivals:
        sim.process(client(float(t)))
    sim.run()
    stats = summarize(latencies)
    total = ep.cold_starts + ep.warm_starts
    return {
        "requests": len(latencies),
        "cold_fraction": ep.cold_starts / total if total else 0.0,
        "p50_ms": stats.p50 * 1e3,
        "p95_ms": stats.p95 * 1e3,
    }


def _drive_batched(policy: BatchPolicy, seed: int) -> dict:
    sim = Simulator()
    ep = _endpoint(sim, keep_alive=300.0)
    batcher = Batcher(ep, "infer", policy)
    arrivals = poisson_arrivals(RATE_PER_S, HORIZON_S,
                                RngRegistry(seed).stream("e4-arrivals"))
    latencies = []
    batch_sizes = []

    def client(delay):
        yield Timeout(delay)
        outcome = yield batcher.submit()
        latencies.append(outcome.latency)
        batch_sizes.append(outcome.batch_size)

    for t in arrivals:
        sim.process(client(float(t)))
    sim.run()
    stats = summarize(latencies)
    return {
        "requests": len(latencies),
        "mean_batch": sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0,
        "p50_ms": stats.p50 * 1e3,
        "p95_ms": stats.p95 * 1e3,
        "busy_s_per_req": ep.busy_seconds / max(len(latencies), 1),
    }


def _drive_autoscaled(start_workers: int, max_workers: int, seed: int) -> dict:
    """Bursty load against an elastic endpoint."""
    sim = Simulator()
    ep = _endpoint(sim, keep_alive=300.0)
    ep.workers.set_capacity(start_workers)
    scaler = Autoscaler(ep, ScalingPolicy(
        min_workers=start_workers, max_workers=max_workers,
        scale_up_at=2, step=2, interval_s=0.5, provision_delay_s=3.0,
    ))
    scaler.start()
    arrivals = poisson_arrivals(RATE_PER_S, HORIZON_S,
                                RngRegistry(seed).stream("e4-arrivals"))
    latencies = []

    def client(delay):
        yield Timeout(delay)
        record = yield ep.invoke("infer")
        latencies.append(record.service_time)

    for t in arrivals:
        sim.process(client(float(t)))
    sim.run()
    stats = summarize(latencies)
    return {
        "requests": len(latencies),
        "p50_ms": stats.p50 * 1e3,
        "p95_ms": stats.p95 * 1e3,
        "mean_workers": ep.workers.time_averaged_capacity(),
        "peak_workers": max(
            (e[2] for e in scaler.scaling_events), default=start_workers
        ),
    }


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("E4", "FaaS overheads at an edge endpoint")
    ttls = [0.0, 10.0, 60.0] if quick else [0.0, 1.0, 10.0, 60.0, 300.0]
    for ttl in ttls:
        row = _drive_plain(ttl, seed)
        result.row(scenario=f"keep-alive={ttl:g}s", **row)
    policies = [(1, 0.0), (4, 0.05)] if quick else \
        [(1, 0.0), (4, 0.02), (4, 0.05), (16, 0.05), (16, 0.2)]
    for max_batch, max_wait in policies:
        row = _drive_batched(BatchPolicy(max_batch=max_batch,
                                         max_wait_s=max_wait), seed)
        result.row(scenario=f"batch<=~{max_batch},wait={max_wait * 1e3:g}ms",
                   **row)
    row = _drive_autoscaled(start_workers=1, max_workers=8, seed=seed)
    result.row(scenario="autoscale(1..8)", **row)
    result.note("cold start 2 s vs warm 10 ms; work 0.1 on 8x accelerator")
    result.note("batching trades p50 (waiting for peers) for busy-time/request")
    result.note(
        "autoscaled pool starts at 1 worker; threshold scaling keeps the "
        "mean pool small at this load"
    )
    return result
