"""Shared experiment-result plumbing."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.utils.tables import ascii_table


@dataclass
class ExperimentResult:
    """One experiment's regenerated table/series."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def row(self, **fields) -> dict:
        self.rows.append(fields)
        return fields


def render(result: ExperimentResult) -> str:
    """ASCII rendering: the table plus its notes."""
    parts = [ascii_table(result.rows,
                         title=f"{result.experiment_id}: {result.title}")]
    for note in result.notes:
        parts.append(f"  - {note}")
    return "\n".join(parts)


def save_result(result: ExperimentResult, directory: str = "results") -> str:
    """Persist the rendered table under ``results/<id>.txt``; returns path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.experiment_id.lower()}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render(result) + "\n")
    return path
