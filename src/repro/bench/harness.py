"""Shared experiment-result plumbing."""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

from repro.utils.tables import ascii_table


@dataclass
class ExperimentResult:
    """One experiment's regenerated table/series."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def row(self, **fields) -> dict:
        self.rows.append(fields)
        return fields


def render(result: ExperimentResult) -> str:
    """ASCII rendering: the table plus its notes."""
    parts = [ascii_table(result.rows,
                         title=f"{result.experiment_id}: {result.title}")]
    for note in result.notes:
        parts.append(f"  - {note}")
    return "\n".join(parts)


def save_result(result: ExperimentResult, directory: str = "results") -> str:
    """Persist the rendered table under ``results/<id>.txt``; returns path."""
    return save_rendered(render(result) + "\n",
                         result.experiment_id.lower() + ".txt", directory)


def save_rendered(text: str, filename: str, directory: str = "results") -> str:
    """Atomically and durably write a rendered table; returns its path.

    Same temp-file + fsync + :func:`os.replace` discipline as workflow
    checkpoints: a crashed writer (e.g. a parallel bench worker killed
    mid-save) can never leave a truncated ``results/eN.txt`` — readers
    see either the old file or the complete new one.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, filename)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".txt.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path
