"""E16 — staleness-cost study of the replicated control plane (Table).

Question: what does federation metadata consistency actually buy, and
what does it cost?  The control plane replicates the replica catalog
and endpoint registry across five control sites (:mod:`repro.controlplane`);
clients pick a read mode — ``stale`` (any live replica, bounded lag),
``lease`` (leader-local while its quorum lease holds), or ``quorum``
(linearizable) — and this experiment sweeps replication lag against
read mode and partition intensity on a workload whose placement keeps
re-reading hot metadata.

The workload is a *calibration fan-out*: a few large reference frames
born at edge instruments, re-read by successive analysis waves that a
locality-blind load balancer (round-robin, the FaaS-dispatch idiom)
keeps assigning to fresh sites.  Every wave's staging decision
consults the catalog view; each pull creates a new physical replica
the lagged view hasn't heard about yet, so stale readers keep dragging
bytes from the far origin while a closer staged copy already exists.

Expected shape: under ``stale`` reads, misplacements and wasted
transfer bytes are zero below the view's staleness window and grow
monotonically with replication lag once wave cadence falls inside it;
``quorum`` (and ``lease`` while held) eliminate misplacement
structurally but pay for it in placement-read p99 — 4x/2x the
replication lag per read — which compounds into makespan.  Partitions
add the third axis: quorum reads block (bounded retries, then a
counted degrade to stale) while the cluster is split, stale reads
shrug and keep serving old maps.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.continuum import Tier, zoo_topology
from repro.controlplane import ControlPlaneConfig
from repro.core import ContinuumScheduler
from repro.core.strategies import RoundRobinStrategy
from repro.datafabric import Dataset
from repro.faults import ChaosCampaign
from repro.workflow import TaskSpec, WorkflowDAG

# Scenario seed offset (the CLI --seed shifts the whole scenario).
BASE_SEED = 16
N_CONTROL_SITES = 5
# Partition campaigns must outlast the slowest (quorum, high-lag) run.
PARTITION_HORIZON_S = 4_000.0

PARTITION_LEVELS = {
    "none": None,
    "light": dict(partition_rate_per_s=1 / 600.0,
                  partition_mean_duration_s=30.0),
    "heavy": dict(partition_rate_per_s=1 / 200.0,
                  partition_mean_duration_s=60.0),
}


def _lags(quick: bool) -> list[float]:
    return [0.5, 8.0] if quick else [0.5, 2.0, 8.0, 32.0]


def _modes(quick: bool) -> list[str]:
    return ["stale", "quorum"] if quick else ["stale", "lease", "quorum"]


def _levels(quick: bool) -> list[str]:
    return ["none", "heavy"] if quick else ["none", "light", "heavy"]


def _workload(quick: bool, topology) -> tuple[WorkflowDAG, list]:
    """Calibration fan-out: ``n_refs`` shared reference frames re-read
    by every wave; small per-wave gate datasets serialize the waves so
    re-reads are staggered in time (the pattern that exposes staleness
    windows — simultaneous readers would all see the same view)."""
    n_waves = 10 if quick else 28
    width, n_refs, ref_bytes, work = 4, 2, 0.8e8, 2.0
    edges = [s.name for s in topology.sites_by_tier(Tier.EDGE)]
    dag = WorkflowDAG("e16")
    refs = [Dataset(f"e16-ref{j}", ref_bytes) for j in range(n_refs)]
    prev = None
    for w in range(n_waves):
        outs = []
        for t in range(width):
            out = Dataset(f"e16-w{w}t{t}", 1e6)
            ref = refs[(w + t) % n_refs]
            inputs = (ref.name,) if prev is None else (ref.name, prev)
            dag.add_task(TaskSpec(f"e16-w{w}-t{t}", work=work,
                                  inputs=inputs, outputs=(out,)))
            outs.append(out)
        gate = Dataset(f"e16-gate{w}", 1e5)
        dag.add_task(TaskSpec(f"e16-sync{w}", work=1.0,
                              inputs=tuple(o.name for o in outs),
                              outputs=(gate,)))
        prev = gate.name
    placed = [(r, edges[j % len(edges)]) for j, r in enumerate(refs)]
    return dag, placed


def _partitions(level: str, seed: int):
    knobs = PARTITION_LEVELS[level]
    if knobs is None:
        return None
    campaign = ChaosCampaign(seed=seed, horizon_s=PARTITION_HORIZON_S,
                             **knobs)
    # partitions hit only the metadata cluster; the campaign's
    # data-plane layers stay disabled so every cell fights the same
    # workload and differs only in its control plane
    topo = zoo_topology("multi-region", n_regions=3, seed=seed)
    plan = campaign.build(topo, n_control_sites=N_CONTROL_SITES)
    return None if plan.partitions.empty else plan.partitions


def list_shards(quick: bool = False, seed: int = 0) -> list[tuple]:
    """One shard per (read mode, partition level) cell — each sweeps
    the full lag axis — plus the single-copy baseline shard."""
    shards: list[tuple] = [("single", "none")]
    shards += [(mode, level)
               for mode in _modes(quick)
               for level in _levels(quick)]
    return shards


def run_shard(shard: tuple, quick: bool = False, seed: int = 0) -> dict:
    """Run one (mode, partition level) cell across the lag sweep."""
    mode, level = shard
    seed += BASE_SEED
    topo = zoo_topology("multi-region", n_regions=3, seed=seed)
    strategy = RoundRobinStrategy()
    if mode == "single":
        dag, placed = _workload(quick, topo)
        run = ContinuumScheduler(topo, seed=seed).run(
            dag, strategy, external_inputs=placed)
        return {"shard": shard, "baseline_makespan": run.makespan}
    partitions = _partitions(level, seed)
    cells = []
    for lag in _lags(quick):
        dag, placed = _workload(quick, topo)
        config = ControlPlaneConfig.for_lag(
            lag, n_sites=N_CONTROL_SITES, read_mode=mode)
        run = ContinuumScheduler(topo, seed=seed).run(
            dag, strategy, external_inputs=placed,
            control=config, partitions=partitions)
        stats = run.control
        cells.append({
            "lag": lag,
            "makespan": run.makespan,
            "p99_ms": stats.read_latency_p99() * 1e3,
            "reads": stats.reads,
            "mis": stats.misplacements,
            "waste_mb": stats.wasted_bytes / 1e6,
            "fallbacks": stats.fallback_reads,
            "degraded": stats.degraded_reads,
            "unavail_s": stats.unavailable_s,
        })
    return {"shard": shard, "mode": mode, "level": level, "cells": cells}


def merge_shards(partials: list[dict], quick: bool = False,
                 seed: int = 0) -> ExperimentResult:
    """Deterministic merge: rows in ``list_shards`` x lag order."""
    result = ExperimentResult(
        "E16", "Staleness cost of the replicated control plane"
    )
    by_key = {tuple(p["shard"]): p for p in partials}
    baseline = by_key[("single", "none")]["baseline_makespan"]
    for shard in list_shards(quick=quick, seed=seed):
        if shard[0] == "single":
            continue
        part = by_key[tuple(shard)]
        for cell in part["cells"]:
            result.row(
                mode=part["mode"],
                partitions=part["level"],
                lag_s=cell["lag"],
                makespan_s=cell["makespan"],
                overhead=cell["makespan"] / baseline,
                p99_ms=cell["p99_ms"],
                mis=cell["mis"],
                waste_mb=cell["waste_mb"],
                fallbacks=cell["fallbacks"],
                degraded=cell["degraded"],
                unavail_s=cell["unavail_s"],
            )
    result.note(
        f"single-copy baseline makespan {baseline:.2f} s; overhead = "
        f"makespan / baseline (the price of running the control plane "
        f"in that mode at that lag)"
    )
    result.note(
        "mis / waste_mb: staging decisions whose stale view picked a "
        "different source than the physical catalog would have, and "
        "the bytes dragged over strictly slower paths as a result; "
        "linearizable (quorum) and leased reads eliminate both by "
        "construction and pay for it in p99 placement-read latency"
    )
    result.note(
        "degraded / unavail_s: quorum or lease reads that exhausted "
        "their retry budget during a control-plane partition and were "
        "served stale instead, and the seconds spent waiting out "
        "leaderless windows before degrading"
    )
    result.note(
        f"workload: calibration fan-out (shared reference frames "
        f"re-read by staggered waves under round-robin dispatch) on "
        f"the multi-region zoo; {N_CONTROL_SITES} control sites, "
        f"attached read replica fixed, partitions drawn from the "
        f"seeded 'partitions' stream"
    )
    return result


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    # The sequential path runs the very same shard/merge code the
    # parallel runner fans out, so both produce byte-identical tables.
    partials = [run_shard(s, quick=quick, seed=seed)
                for s in list_shards(quick=quick, seed=seed)]
    return merge_shards(partials, quick=quick, seed=seed)
