"""E10 — special-purpose appliances vs bandwidth (Figure).

Question: Gilder predicted "special-purpose appliances" once networks
stop being the bottleneck. How much specialization does it take, at a
given bandwidth, to pull work off the edge? A single data-bearing task
can run on the edge (speed 1) or a remote appliance whose accelerator
gives ``f``x on this task kind; we sweep ``f`` and the WAN bandwidth and
report the measured end-to-end speedup of greedy placement over
edge-pinned placement.

Expected shape: at low bandwidth, speedup pins at 1.0 (greedy stays
local) for every ``f``; above the task's crossover bandwidth, speedup
grows with ``f`` and saturates at the transfer-time floor.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.continuum import edge_cloud_pair
from repro.core import ContinuumScheduler, GreedyEFTStrategy, TierStrategy
from repro.datafabric import Dataset
from repro.utils.units import MB, Mbps
from repro.workflow import TaskSpec, WorkflowDAG

WORK = 40.0
DATA_BYTES = 200 * MB
KIND = "dnn-inference"


def _run(bandwidth: float, factor: float, strategy) -> float:
    topo = edge_cloud_pair(
        edge_speed=1.0, cloud_speed=1.0,
        bandwidth_Bps=bandwidth, latency_s=0.02,
        cloud_specializations={KIND: factor},
    )
    dag = WorkflowDAG("e10")
    dag.add_task(TaskSpec("t", work=WORK, kind=KIND, inputs=("raw",)))
    return ContinuumScheduler(topo).run(
        dag, strategy, external_inputs=[(Dataset("raw", DATA_BYTES), "edge")]
    ).makespan


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "E10", "Appliance specialization payoff vs bandwidth"
    )
    factors = [2.0, 16.0] if quick else [2.0, 4.0, 16.0, 64.0]
    bandwidths = [4 * Mbps, 100 * Mbps, 10_000 * Mbps] if quick else \
        [4 * Mbps, 20 * Mbps, 100 * Mbps, 1000 * Mbps, 10_000 * Mbps]
    for factor in factors:
        for bw in bandwidths:
            local = _run(bw, factor, TierStrategy("edge"))
            greedy = _run(bw, factor, GreedyEFTStrategy())
            result.row(
                specialization=factor,
                bandwidth_Mbps=bw / Mbps,
                edge_pinned_s=local,
                greedy_s=greedy,
                speedup=local / greedy,
                offloaded=greedy < local * (1 - 1e-9),
            )
    result.note(
        "remote appliance is *identical* except for the accelerator: "
        "any win is pure specialization"
    )
    result.note("speedup floor 1.0 = greedy stayed local (thin pipe)")
    return result
