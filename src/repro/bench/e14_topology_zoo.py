"""E14 — topology-zoo strategy sweep under churn (Table; tentpole
experiment of the generator library).

Question: which placement strategy wins *where*? Every ranking before
this one was measured on a single hand-built continuum; E14 re-asks the
E2 question across the whole topology zoo (clique, chain, ring, grid,
fat-tree, multi-region) crossed with duty-cycle churn intensities
(periphery nodes sleeping and waking on seeded schedules). Each cell
races all eleven strategies on the identical seeded workload and
failure schedule, and re-locates the E1 crossover point — the
bandwidth scale where shipping the data to a pinned fast remote beats
computing where it sits — per family and churn level.

Expected shape: on dense, cheap-to-cross graphs (clique, fat-tree) the
lookahead schedulers (HEFT, greedy-EFT) win and their margin over
naive baselines is small; on high-diameter families (chain, ring) and
under churn the spread widens sharply — edge-only collapses when its
tier keeps blinking, data-gravity stays competitive because it never
crosses the dark periphery more than it must. Churn *lowers* the
crossover bandwidth scale: when the local edge keeps sleeping, offload
to an always-on core starts paying sooner than Gilder's clean-network
arithmetic predicts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bench.e02_strategies import place_externals
from repro.bench.harness import ExperimentResult
from repro.continuum import Tier, churn_preset, compile_duty_cycles, zoo_topology
from repro.core import ContinuumScheduler, FixedSiteStrategy
from repro.core.strategies import MultiObjectiveStrategy, strategy_catalog
from repro.datafabric import Dataset
from repro.workflow import TaskSpec, WorkflowDAG
from repro.workloads import layered_random_dag

# Scenario seed offset (the CLI --seed shifts the whole scenario).
BASE_SEED = 15
CHURN_HORIZON_S = 4000.0
# E1's probe workload: enough work that a fast remote can win, enough
# data that a slow network makes it lose.
PROBE_WORK = 80.0
PROBE_DATA_BYTES = 1e9


def _families(quick: bool) -> list[tuple[str, dict]]:
    families = [
        ("clique", {}),
        ("chain", {}),
        ("ring", {}),
        ("grid", {"rows": 4, "cols": 4}),
        ("fat-tree", {"k": 4}),
        ("multi-region", {"n_regions": 3}),
    ]
    # quick mode keeps the richest family (tiered, geo, priced WAN)
    return families[-1:] if quick else families


def _intensities(quick: bool) -> list[str]:
    return ["none", "high"] if quick else ["none", "medium", "high"]


def _strategies() -> list:
    """Fresh instances per call: round-robin and the UCB learner carry
    per-run state, so shards must never share them."""
    return strategy_catalog(include_adaptive=True) + [MultiObjectiveStrategy()]


def _churn(topology, intensity: str, seed: int):
    params = churn_preset(intensity, seed=seed, horizon_s=CHURN_HORIZON_S)
    if params is None:
        return None
    schedule = compile_duty_cycles(topology, params)
    return None if schedule.empty else schedule


def _probe_times(family: str, params: dict, intensity: str, seed: int,
                 scale: float) -> tuple[float, float]:
    """(local, remote) makespans of the single-task E1 probe on this
    family at ``bandwidth_scale=scale``: data born at the first edge
    site, pinned either there or at the fastest central site. Churn
    applies to both runs — a sleeping edge delays the local probe,
    which is exactly the effect being measured."""
    topo = zoo_topology(family, seed=seed, bandwidth_scale=scale, **params)
    edge = topo.sites_by_tier(Tier.EDGE)[0].name
    central = max((s for s in topo.sites if s.tier.is_central),
                  key=lambda s: (s.speed, s.name)).name
    failures = _churn(topo, intensity, seed)
    scheduler = ContinuumScheduler(topo, seed=seed)
    times = []
    for site in (edge, central):
        dag = WorkflowDAG("e14-probe")
        dag.add_task(TaskSpec("probe", work=PROBE_WORK, inputs=("blob",)))
        run = scheduler.run(
            dag, FixedSiteStrategy(site),
            external_inputs=[(Dataset("blob", PROBE_DATA_BYTES), edge)],
            failures=failures, task_retries=200,
        )
        times.append(run.makespan)
    return times[0], times[1]


def _crossover_scale(family: str, params: dict, intensity: str, seed: int,
                     quick: bool) -> float:
    """First bandwidth scale where the pinned-remote probe beats the
    pinned-local one (NaN when locality wins across the whole sweep)."""
    n_points = 5 if quick else 9
    for scale in np.logspace(math.log10(0.05), math.log10(20.0), n_points):
        local, remote = _probe_times(family, params, intensity, seed,
                                     float(scale))
        if remote < local:
            return float(scale)
    return float("nan")


def list_shards(quick: bool = False, seed: int = 0) -> list[tuple]:
    """One shard per (family, churn intensity) cell: eleven strategy
    races plus the crossover probe sweep. Keys are picklable and
    deterministic; ``merge_shards`` reassembles rows in exactly the
    order the sequential loop would emit them."""
    return [(family, intensity)
            for family, _params in _families(quick)
            for intensity in _intensities(quick)]


def run_shard(shard: tuple, quick: bool = False, seed: int = 0) -> dict:
    """Run one (family, intensity) cell; picklable partial for merge."""
    family, intensity = shard
    seed += BASE_SEED
    params = dict(_families(quick))[family]
    topo = zoo_topology(family, seed=seed, **params)
    n_tasks = 12 if quick else 24
    dag, externals = layered_random_dag(
        n_tasks, n_levels=5, work_range=(10.0, 60.0), seed=seed,
        name=f"e14-{family}",
    )
    placed = place_externals(topo, externals)
    failures = _churn(topo, intensity, seed)
    scheduler = ContinuumScheduler(topo, seed=seed)
    times = []
    for strategy in _strategies():
        run = scheduler.run(dag, strategy, external_inputs=placed,
                            failures=failures, task_retries=200)
        times.append((strategy.name, run.makespan))
    ranking = sorted(times, key=lambda kv: (kv[1], kv[0]))
    return {
        "shard": shard,
        "family": family,
        "intensity": intensity,
        "n_sites": len(topo),
        "ranking": ranking,
        "crossover_x": _crossover_scale(family, params, intensity, seed,
                                        quick),
    }


def merge_shards(partials: list[dict], quick: bool = False,
                 seed: int = 0) -> ExperimentResult:
    """Deterministic merge: one row per (family, intensity) cell in
    ``list_shards`` order, ranking summarized as a podium."""
    result = ExperimentResult(
        "E14", "Strategy rankings across the topology zoo under churn"
    )
    by_key = {tuple(p["shard"]): p for p in partials}
    lead_changes = 0
    for shard in list_shards(quick=quick, seed=seed):
        part = by_key[tuple(shard)]
        ranking = part["ranking"]
        best_name, best_s = ranking[0]
        worst_name, worst_s = ranking[-1]
        calm = by_key[(part["family"], "none")]
        if part["intensity"] != "none" and \
                calm["ranking"][0][0] != best_name:
            lead_changes += 1
        result.row(
            family=part["family"],
            churn=part["intensity"],
            sites=part["n_sites"],
            best=best_name,
            best_s=best_s,
            podium=" > ".join(name for name, _t in ranking[:3]),
            worst=worst_name,
            spread=worst_s / best_s,
            crossover_x=part["crossover_x"],
        )
    n_strategies = len(_strategies())
    result.note(
        f"{n_strategies} strategies raced per cell on the identical "
        f"seeded workload and churn schedule; rank by makespan "
        f"(ties by name), spread = worst/best"
    )
    result.note(
        "crossover_x: first bandwidth scale in [0.05, 20] where the "
        "pinned-remote E1 probe (work=80, 1 GB born at the first edge "
        "site) beats pinned-local; '-' = locality wins across the sweep"
    )
    result.note(
        f"churn changed the winning strategy in {lead_changes} of "
        f"{len(result.rows)} cells vs the same family uncontested"
    )
    return result


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    # The sequential path runs the very same shard/merge code the
    # parallel runner fans out, so both produce byte-identical tables.
    partials = [run_shard(s, quick=quick, seed=seed)
                for s in list_shards(quick=quick, seed=seed)]
    return merge_shards(partials, quick=quick, seed=seed)
