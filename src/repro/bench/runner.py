"""Parallel sharded experiment runner with a content-addressed result cache.

The E1–E14 suite is embarrassingly parallel twice over: experiments are
independent of each other, and shootout-style experiments (E13, E14)
decompose further into independent scheduler runs. This module
fans both levels across a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges partial results in deterministic experiment/shard order, so
the rendered tables are byte-identical to a sequential run.

Experiment modules may opt into sub-experiment sharding by exposing::

    list_shards(quick, seed)  -> list of picklable shard keys
    run_shard(shard, quick, seed) -> picklable partial
    merge_shards(partials, quick, seed) -> ExperimentResult

with ``run_experiment`` delegating to the same three functions — the
sequential path and the parallel path then share every line of
experiment code, which is what makes byte-identity a structural
property rather than a testing hope.

Results are memoized in a **content-addressed cache** under
``results/.cache/``: the key digests the experiment id, its config
(quick/seed), and every tracked source file under ``src/repro``. Any
code or config change misses; an unchanged experiment replays instantly
from the stored render.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.bench.harness import ExperimentResult, render, save_rendered
from repro.errors import ContinuumError

DEFAULT_CACHE_DIR = os.path.join("results", ".cache")
_CACHE_SCHEMA = "repro-result-cache/1"
_CACHE_MAX_ENTRIES = 256


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------

def source_digest() -> str:
    """Digest of every tracked source file under ``src/repro``.

    Any change to the package — kernel, strategies, experiment bodies —
    yields a new digest and therefore a cold cache for every experiment.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    hasher = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            hasher.update(rel.encode())
            hasher.update(b"\0")
            with open(path, "rb") as handle:
                hasher.update(handle.read())
            hasher.update(b"\0")
    return hasher.hexdigest()


def cache_key(experiment_id: str, quick: bool, seed: int,
              src_digest: str) -> str:
    """Filename-safe content address for one experiment configuration.

    The dispatch-engine selection participates in the key: a table
    produced under ``REPRO_DISPATCH=scalar`` must never satisfy a wave
    run (or vice versa), or the CI wave-vs-scalar diff would compare a
    cache replay against itself.
    """
    config = json.dumps(
        {"schema": _CACHE_SCHEMA, "experiment": experiment_id.upper(),
         "quick": bool(quick), "seed": int(seed), "sources": src_digest,
         "dispatch": os.environ.get("REPRO_DISPATCH", "wave")},
        sort_keys=True,
    )
    digest = hashlib.sha256(config.encode()).hexdigest()
    return f"{experiment_id.lower()}-{digest[:24]}.json"


def _json_default(obj):
    """Unwrap numpy scalars so row values survive the JSON round-trip
    with their rendered form unchanged (float round-trips via repr)."""
    item = getattr(obj, "item", None)
    if item is not None:
        return obj.item()
    raise TypeError(f"not cache-serializable: {type(obj).__name__}")


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".cache.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class ResultCache:
    """Content-addressed store of rendered experiment results."""

    def __init__(self, directory: str = DEFAULT_CACHE_DIR):
        self.directory = directory

    def load(self, key: str) -> dict | None:
        """The cached document for ``key``, or None on miss/corruption."""
        path = os.path.join(self.directory, key)
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            return None
        if doc.get("schema") != _CACHE_SCHEMA:
            return None
        if not {"experiment_id", "title", "rows",
                "notes", "rendered"} <= doc.keys():
            return None
        return doc

    def store(self, key: str, result: ExperimentResult, rendered: str,
              meta: dict) -> str | None:
        """Persist a result; returns the path, or None when the rows do
        not survive a JSON round-trip render-identically (never cache
        something a replay would render differently)."""
        doc = {
            "schema": _CACHE_SCHEMA,
            "experiment_id": result.experiment_id,
            "title": result.title,
            "rows": result.rows,
            "notes": result.notes,
            "rendered": rendered,
            "meta": meta,
        }
        try:
            text = json.dumps(doc, default=_json_default, indent=1)
        except TypeError:
            return None
        replay = result_from_doc(json.loads(text))
        if render(replay) != rendered:
            return None
        path = os.path.join(self.directory, key)
        _atomic_write(path, text)
        self._prune()
        return path

    def _prune(self) -> None:
        """Drop the oldest entries once the cache outgrows its cap."""
        try:
            names = [n for n in os.listdir(self.directory)
                     if n.endswith(".json")]
        except OSError:
            return
        if len(names) <= _CACHE_MAX_ENTRIES:
            return
        paths = [os.path.join(self.directory, n) for n in names]
        paths.sort(key=lambda p: os.path.getmtime(p))
        for path in paths[:len(paths) - _CACHE_MAX_ENTRIES]:
            try:
                os.unlink(path)
            except OSError:
                pass


def result_from_doc(doc: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a cache document."""
    return ExperimentResult(
        experiment_id=doc["experiment_id"],
        title=doc["title"],
        rows=list(doc["rows"]),
        notes=list(doc["notes"]),
    )


# ---------------------------------------------------------------------------
# Worker entry points (module-level: must be picklable by the pool)
# ---------------------------------------------------------------------------

def _worker_run_experiment(exp_id: str, quick: bool, seed: int,
                           collect_metrics: bool = False):
    from repro.bench import EXPERIMENTS
    from repro.observe.metrics import MetricsRegistry, use_registry

    t0 = time.perf_counter()
    if collect_metrics:
        registry = MetricsRegistry()
        with use_registry(registry):
            result = EXPERIMENTS[exp_id](quick=quick, seed=seed)
        return result, time.perf_counter() - t0, registry.dump_state()
    result = EXPERIMENTS[exp_id](quick=quick, seed=seed)
    return result, time.perf_counter() - t0, None


def _worker_run_shard(exp_id: str, shard, quick: bool, seed: int,
                      collect_metrics: bool = False):
    from repro.bench import EXPERIMENTS
    from repro.observe.metrics import MetricsRegistry, use_registry
    import importlib

    module = importlib.import_module(EXPERIMENTS[exp_id].__module__)
    t0 = time.perf_counter()
    if collect_metrics:
        registry = MetricsRegistry()
        with use_registry(registry):
            partial = module.run_shard(shard, quick=quick, seed=seed)
        return partial, time.perf_counter() - t0, registry.dump_state()
    partial = module.run_shard(shard, quick=quick, seed=seed)
    return partial, time.perf_counter() - t0, None


def _shard_api(exp_id: str):
    """The (list_shards, run_shard, merge_shards) triple, or None."""
    from repro.bench import EXPERIMENTS
    import importlib

    module = importlib.import_module(EXPERIMENTS[exp_id].__module__)
    fns = tuple(getattr(module, name, None)
                for name in ("list_shards", "run_shard", "merge_shards"))
    return fns if all(fns) else None


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------

@dataclass
class SuiteEntry:
    """One experiment's outcome within a suite run."""

    experiment_id: str
    result: ExperimentResult
    rendered: str
    cached: bool = False
    wall_s: float = 0.0     # compute time (slowest shard for sharded runs)
    shards: int = 1
    metrics: dict | None = None   # canonical metrics snapshot, if collected


def run_suite(
    experiment_ids: list[str],
    *,
    quick: bool = False,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: str = DEFAULT_CACHE_DIR,
    save_dir: str | None = None,
    collect_metrics: bool = False,
) -> list[SuiteEntry]:
    """Run experiments, possibly in parallel, returning entries in the
    requested order with byte-identical-to-sequential renders.

    ``jobs=1`` runs everything in-process (no pool); higher values fan
    experiments *and* their shards across worker processes. With
    ``use_cache``, unchanged experiments replay from the content-
    addressed cache without computing anything.

    ``collect_metrics`` runs every experiment under an enabled metrics
    registry and attaches the canonical per-experiment snapshot to each
    entry. Shard registries are merged in deterministic shard order with
    exact (error-free) accumulation, so the snapshot is byte-identical
    across ``--jobs`` values. Implies no result-cache use: a cached
    replay computes nothing and therefore has no metrics to report.
    """
    from repro.bench import EXPERIMENTS

    ids = [e.upper() for e in experiment_ids]
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            raise ContinuumError(
                f"unknown experiment {exp_id!r}; known: {list(EXPERIMENTS)}"
            )
    if jobs < 1:
        raise ContinuumError(f"--jobs must be >= 1, got {jobs}")

    if collect_metrics:
        use_cache = False
    cache = ResultCache(cache_dir) if use_cache else None
    src_digest = source_digest() if use_cache else ""
    entries: dict[str, SuiteEntry] = {}
    pending: list[str] = []

    for exp_id in ids:
        if exp_id in entries or exp_id in pending:
            continue
        doc = cache.load(cache_key(exp_id, quick, seed, src_digest)) \
            if cache else None
        if doc is not None:
            meta = doc.get("meta", {})
            entries[exp_id] = SuiteEntry(
                experiment_id=exp_id,
                result=result_from_doc(doc),
                rendered=doc["rendered"],
                cached=True,
                wall_s=float(meta.get("wall_s", 0.0)),
                shards=int(meta.get("shards", 1)),
            )
        else:
            pending.append(exp_id)

    if pending:
        if jobs == 1:
            computed = _run_sequential(pending, quick, seed, collect_metrics)
        else:
            computed = _run_parallel(pending, quick, seed, jobs,
                                     collect_metrics)
        for entry in computed:
            entries[entry.experiment_id] = entry
            if cache:
                key = cache_key(entry.experiment_id, quick, seed, src_digest)
                cache.store(key, entry.result, entry.rendered, meta={
                    "quick": quick, "seed": seed,
                    "wall_s": round(entry.wall_s, 6),
                    "shards": entry.shards,
                    "sources": src_digest,
                })

    ordered = [entries[exp_id] for exp_id in ids]
    if save_dir:
        for entry in ordered:
            save_rendered(entry.rendered + "\n",
                          entry.experiment_id.lower() + ".txt", save_dir)
    return ordered


def _snapshot_from_states(states: list[dict]) -> dict:
    """Merge worker registry states in deterministic (shard) order and
    return the canonical snapshot."""
    from repro.observe.metrics import MetricsRegistry

    merged = MetricsRegistry()
    for state in states:
        merged.merge_state(state)
    return merged.snapshot()


def _run_sequential(ids: list[str], quick: bool, seed: int,
                    collect_metrics: bool = False) -> list[SuiteEntry]:
    out = []
    for exp_id in ids:
        result, wall, state = _worker_run_experiment(
            exp_id, quick, seed, collect_metrics)
        shard_api = _shard_api(exp_id)
        n_shards = len(shard_api[0](quick=quick, seed=seed)) if shard_api else 1
        snapshot = _snapshot_from_states([state]) if state is not None \
            else None
        out.append(SuiteEntry(exp_id, result, render(result),
                              wall_s=wall, shards=n_shards,
                              metrics=snapshot))
    return out


def _run_parallel(ids: list[str], quick: bool, seed: int, jobs: int,
                  collect_metrics: bool = False) -> list[SuiteEntry]:
    """Fan every pending experiment (and each shardable experiment's
    shards) across one shared pool; merge in deterministic order."""
    plans = []      # (exp_id, shard_keys | None)
    for exp_id in ids:
        shard_api = _shard_api(exp_id)
        shards = shard_api[0](quick=quick, seed=seed) if shard_api else None
        plans.append((exp_id, shards))

    out = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {}
        for exp_id, shards in plans:
            if shards is None:
                futures[exp_id] = pool.submit(
                    _worker_run_experiment, exp_id, quick, seed,
                    collect_metrics)
            else:
                futures[exp_id] = [
                    pool.submit(_worker_run_shard, exp_id, shard, quick,
                                seed, collect_metrics)
                    for shard in shards
                ]
        # Merge in the deterministic id order, not completion order.
        for exp_id, shards in plans:
            if shards is None:
                result, wall, state = futures[exp_id].result()
                snapshot = _snapshot_from_states([state]) \
                    if state is not None else None
                out.append(SuiteEntry(exp_id, result, render(result),
                                      wall_s=wall, shards=1,
                                      metrics=snapshot))
            else:
                done = [f.result() for f in futures[exp_id]]
                partials = [partial for partial, _wall, _state in done]
                wall = max(w for _p, w, _s in done)
                merge = _shard_api(exp_id)[2]
                result = merge(partials, quick=quick, seed=seed)
                snapshot = None
                if collect_metrics:
                    snapshot = _snapshot_from_states(
                        [state for _p, _w, state in done])
                out.append(SuiteEntry(exp_id, result, render(result),
                                      wall_s=wall, shards=len(partials),
                                      metrics=snapshot))
    return out


def suite_metrics_doc(entries: list[SuiteEntry], *, quick: bool,
                      seed: int) -> dict:
    """Assemble per-experiment snapshots into one suite metrics file
    (schema ``repro-metrics-suite/1``); raises if any entry lacks one."""
    from repro.observe.metrics import SUITE_SCHEMA

    experiments = {}
    for entry in entries:
        if entry.metrics is None:
            raise ContinuumError(
                f"no metrics collected for {entry.experiment_id} "
                f"(was the suite run with collect_metrics?)")
        experiments[entry.experiment_id] = entry.metrics
    return {
        "schema": SUITE_SCHEMA,
        "config": {"quick": bool(quick), "seed": int(seed)},
        "experiments": experiments,
    }
