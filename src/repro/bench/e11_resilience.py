"""E11 — resilience under site outages (Table; extension experiment).

Question: what does continuum-wide failure cost, and does multi-site
placement degrade more gracefully than pinning a tier? Poisson site
outages (exponential failure/repair) hit the science grid at increasing
rates while a mixed workflow runs under (a) edge-only placement and (b)
greedy EFT over all sites. Interrupted tasks are re-placed with retries.

Expected shape: makespan inflation and wasted execution grow with the
outage rate for both policies; greedy's ability to re-place across
surviving sites keeps its inflation below the single-tier policy's;
every run still completes (no lost tasks) thanks to re-placement.

The observability columns break the damage down: ``queue_wait_s``
totals slot-wait across tasks (survivor sites congest while peers are
dark) and ``interrupt_loss_pct`` is the share of all execution seconds
burned by interrupted attempts (wasted / (wasted + useful)).
"""

from __future__ import annotations

from repro.bench.e02_strategies import place_externals
from repro.bench.harness import ExperimentResult
from repro.continuum import science_grid
from repro.core import ContinuumScheduler, GreedyEFTStrategy, TierStrategy
from repro.faults import poisson_outages
from repro.utils.rng import RngRegistry
from repro.workloads import layered_random_dag

MEAN_REPAIR_S = 15.0
HORIZON_S = 5_000.0


def _strategies():
    return [("edge-only", TierStrategy("edge")),
            ("greedy-eft", GreedyEFTStrategy())]


def _run(rate: float, strategy, seed: int):
    topo = science_grid()
    dag, externals = layered_random_dag(24, n_levels=4, seed=seed)
    failures = None
    if rate > 0:
        failures = poisson_outages(
            topo, rate_per_site_per_s=rate, horizon_s=HORIZON_S,
            mean_duration_s=MEAN_REPAIR_S, rngs=RngRegistry(seed),
        )
    sched = ContinuumScheduler(topo, seed=seed)
    return sched.run(
        dag, strategy,
        external_inputs=place_externals(topo, externals),
        failures=failures, task_retries=50,
    )


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("E11", "Makespan inflation under site outages")
    rates = [0.0, 1 / 200.0, 1 / 50.0] if quick else \
        [0.0, 1 / 500.0, 1 / 200.0, 1 / 100.0, 1 / 50.0]
    baselines: dict[str, float] = {}
    for rate in rates:
        for label, strategy in _strategies():
            run = _run(rate, strategy, seed)
            if rate == 0.0:
                baselines[label] = run.makespan
            useful_exec_s = sum(r.exec_time for r in run.records.values())
            exec_total = useful_exec_s + run.wasted_exec_s
            result.row(
                outage_rate_per_site=rate,
                mtbf_s=(1.0 / rate) if rate else float("inf"),
                strategy=label,
                makespan_s=run.makespan,
                inflation=run.makespan / baselines[label],
                interruptions=run.interruptions,
                wasted_exec_s=run.wasted_exec_s,
                queue_wait_s=sum(
                    r.queue_time for r in run.records.values()),
                interrupt_loss_pct=(
                    100.0 * run.wasted_exec_s / exec_total
                    if exec_total else 0.0),
                completed=run.task_count,
            )
    worst = max(result.rows, key=lambda r: r["inflation"])
    result.note(
        f"worst inflation {worst['inflation']:.2f}x at MTBF "
        f"{worst['mtbf_s']:.0f}s ({worst['strategy']})"
    )
    result.note(
        f"mean repair {MEAN_REPAIR_S:.0f}s; interrupted tasks re-placed "
        f"(retries up to 50); all runs completed every task"
    )
    return result
