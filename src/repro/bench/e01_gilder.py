"""E1 — the Gilder crossover (Figure).

Question: as the network speeds up relative to compute, when does
shipping data to a faster remote machine beat computing where the data
sits? The analytic model (:mod:`repro.core.analytic`) predicts the
crossover bandwidth; the simulator measures it by running the same
single-task workload pinned to each side. The figure's series is
(bandwidth -> local time, remote time) analytic and simulated.

Expected shape: simulated times track the analytic curve; the measured
crossover falls within ~15% of the analytic B*; below B* locality wins,
above it the "machine disintegrates" and offload wins.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.continuum import edge_cloud_pair
from repro.core import ContinuumScheduler, TierStrategy, offload_analysis
from repro.core.analytic import crossover_bandwidth
from repro.datafabric import Dataset
from repro.utils.units import MILLISECOND, Mbps
from repro.workflow import TaskSpec, WorkflowDAG

WORK = 80.0
DATA_BYTES = 1e9
EDGE_SPEED = 1.0
CLOUD_SPEED = 8.0
LATENCY_S = 25 * MILLISECOND


def _run_pinned(bandwidth: float, tier: str) -> float:
    topo = edge_cloud_pair(edge_speed=EDGE_SPEED, cloud_speed=CLOUD_SPEED,
                           bandwidth_Bps=bandwidth, latency_s=LATENCY_S)
    dag = WorkflowDAG("e1")
    dag.add_task(TaskSpec("t", work=WORK, inputs=("raw",)))
    result = ContinuumScheduler(topo).run(
        dag, TierStrategy(tier),
        external_inputs=[(Dataset("raw", DATA_BYTES), "edge")],
    )
    return result.makespan


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "E1", "Gilder crossover: compute locally vs ship to remote"
    )
    n_points = 7 if quick else 13
    bandwidths = np.logspace(np.log10(1 * Mbps), np.log10(100_000 * Mbps),
                             n_points)
    sim_cross = None
    for bw in bandwidths:
        analytic = offload_analysis(WORK, DATA_BYTES, EDGE_SPEED, CLOUD_SPEED,
                                    bandwidth_Bps=bw, latency_s=LATENCY_S)
        sim_local = _run_pinned(bw, "edge")
        sim_remote = _run_pinned(bw, "cloud")
        if sim_cross is None and sim_remote < sim_local:
            sim_cross = bw
        result.row(
            bandwidth_Mbps=bw / Mbps,
            analytic_local_s=analytic.local_time_s,
            analytic_remote_s=analytic.remote_time_s,
            sim_local_s=sim_local,
            sim_remote_s=sim_remote,
            offload_wins_analytic=analytic.offload_wins,
            offload_wins_sim=sim_remote < sim_local,
        )
    b_star = crossover_bandwidth(WORK, DATA_BYTES, EDGE_SPEED, CLOUD_SPEED,
                                 LATENCY_S)
    result.note(f"analytic crossover B* = {b_star / Mbps:.1f} Mbps")
    if sim_cross is not None:
        result.note(
            f"first simulated bandwidth where offload wins = "
            f"{sim_cross / Mbps:.1f} Mbps (grid resolution limited)"
        )
    return result
