"""E8 — adaptive vs static placement under a bandwidth shift (Figure).

Question: what happens when the world changes under a planner? A
sequence of identical inference-batch episodes runs against an
edge/cloud pair. Halfway through, the WAN degrades 50x (congestion,
re-route, brownout). Three policies:

- **static-initial** — the site that was best in episode 0, forever,
- **oracle** — per-episode best (hindsight),
- **adaptive-ucb** — learns from observed turnarounds, window-limited.

Expected shape: before the shift all near-oracle; after it, static
keeps paying the degraded WAN while adaptive re-converges to the edge
within a few episodes; cumulative regret of adaptive is sublinear,
static's grows linearly post-shift.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.continuum import edge_cloud_pair
from repro.core import (
    AdaptiveUCBStrategy,
    ContinuumScheduler,
    FixedSiteStrategy,
    GreedyEFTStrategy,
)
from repro.datafabric import Dataset
from repro.utils.units import MB, Mbps
from repro.workflow import TaskSpec, WorkflowDAG

FAST_BW = 800 * Mbps
SLOW_BW = 16 * Mbps
WORK = 4.0
INPUT_BYTES = 20 * MB
BATCH = 6


def _episode_dag(episode: int):
    dag = WorkflowDAG(f"ep{episode}")
    externals = []
    for i in range(BATCH):
        raw = Dataset(f"ep{episode}-in{i}", INPUT_BYTES)
        externals.append((raw, "edge"))
        dag.add_task(TaskSpec(f"ep{episode}-t{i}", work=WORK,
                              kind="dnn-inference", inputs=(raw.name,)))
    return dag, externals


def _topology(degraded: bool):
    return edge_cloud_pair(
        edge_speed=1.0, cloud_speed=8.0,
        bandwidth_Bps=SLOW_BW if degraded else FAST_BW,
        latency_s=0.02,
        cloud_specializations={"dnn-inference": 4.0},
    )


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("E8", "Adaptive vs static under a WAN shift")
    n_episodes = 10 if quick else 30
    shift_at = n_episodes // 2

    # static policy = whichever site greedy-EFT picks on the initial world
    probe_dag, probe_ext = _episode_dag(episode=-1)
    probe = ContinuumScheduler(_topology(False), seed=seed).run(
        probe_dag, GreedyEFTStrategy(), external_inputs=probe_ext
    )
    static_site = probe.records[f"ep-1-t0"].site
    adaptive = AdaptiveUCBStrategy(window=BATCH * 3)

    cum_static = cum_adaptive = cum_oracle = 0.0
    for episode in range(n_episodes):
        degraded = episode >= shift_at
        topo = _topology(degraded)

        def run_with(strategy):
            dag, ext = _episode_dag(episode)
            return ContinuumScheduler(topo, seed=seed).run(
                dag, strategy, external_inputs=ext
            ).makespan

        static_ms = run_with(FixedSiteStrategy(static_site))
        adaptive_ms = run_with(adaptive)
        oracle_ms = min(run_with(FixedSiteStrategy("edge")),
                        run_with(FixedSiteStrategy("cloud")))
        cum_static += static_ms - oracle_ms
        cum_adaptive += adaptive_ms - oracle_ms
        cum_oracle += oracle_ms
        result.row(
            episode=episode,
            degraded=degraded,
            static_s=static_ms,
            adaptive_s=adaptive_ms,
            oracle_s=oracle_ms,
            cum_regret_static=cum_static,
            cum_regret_adaptive=cum_adaptive,
        )
    result.note(f"static picked {static_site!r} pre-shift and never moved")
    result.note(
        f"final cumulative regret: static={cum_static:.1f}s "
        f"adaptive={cum_adaptive:.1f}s (lower is better)"
    )
    return result
