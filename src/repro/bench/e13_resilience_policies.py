"""E13 — recovery-policy shootout under chaos campaigns (Table;
tentpole experiment of the resilience layer).

Question: when the continuum actively misbehaves — sites dying, links
browning out, boxes running sick, transfers corrupting — how much does
a *disciplined* recovery policy buy over naive retry? Three policies
race the identical seeded adversary (task fates are keyed on
``(task, attempt, site)``, so every policy faces the same dice):

- ``naive-retry`` — immediate requeue on every failure,
- ``backoff+budget`` — exponential backoff with jitter plus a run-wide
  fast-retry budget (retry storms pay a cooldown),
- ``backoff+breakers+hedging`` — backoff + per-site circuit breakers
  (sick sites lose traffic until a probe heals them), per-attempt
  timeouts, and speculative hedging for stragglers.

Expected shape: all policies finish every task (resilience paces
recovery, never drops work). Naive retry hammers degraded sites and
burns the most wasted work; at the highest campaign intensity the full
policy strictly dominates naive on wasted-work % and p99 task latency,
because breakers stop feeding doomed attempts to sick sites and hedges
cut the straggler tail. Retry amplification (attempts per task) shows
the storm the budget and breakers suppress.
"""

from __future__ import annotations

import numpy as np

from repro.bench.e02_strategies import place_externals
from repro.bench.harness import ExperimentResult
from repro.continuum import science_grid
from repro.core import ContinuumScheduler, GreedyEFTStrategy
from repro.faults import CAMPAIGN_INTENSITIES, ChaosCampaign
from repro.resilience import ResiliencePolicy
from repro.workloads import layered_random_dag

N_TASKS = 48
WORK_RANGE = (30.0, 180.0)   # long enough that campaigns actually bite
# The scenario seed is offset from the CLI seed so the default
# adversary is one whose sick windows actually hit the hot site
# GreedyEFT concentrates on (a campaign that misses the hot site
# tests nothing).  --seed still shifts the whole scenario.
BASE_SEED = 14


def _policies(seed: int) -> list[ResiliencePolicy]:
    cap = 100   # generous attempt cap: pacing differs, dropping never
    return [
        ResiliencePolicy.naive(max_attempts=cap),
        ResiliencePolicy.backoff(max_attempts=cap, seed=seed),
        ResiliencePolicy.full(max_attempts=cap, seed=seed),
    ]


def _run(intensity: str | None, policy: ResiliencePolicy | None, seed: int):
    topo = science_grid()
    dag, externals = layered_random_dag(N_TASKS, n_levels=6,
                                        work_range=WORK_RANGE, seed=seed)
    failures = chaos = None
    transfer_failure_prob = 0.0
    if intensity is not None:
        plan = ChaosCampaign.preset(intensity, seed=seed).build(topo)
        failures = plan.outages
        chaos = plan.task_chaos
        transfer_failure_prob = plan.transfer_failure_prob
    sched = ContinuumScheduler(
        topo, seed=seed,
        transfer_failure_prob=transfer_failure_prob,
        transfer_max_attempts=10,
    )
    return sched.run(
        dag, GreedyEFTStrategy(),
        external_inputs=place_externals(topo, externals),
        failures=failures, chaos=chaos, resilience=policy,
        task_retries=100,
    )


def list_shards(quick: bool = False, seed: int = 0) -> list[tuple]:
    """Independent units of work for the parallel runner.

    One shard per (intensity, policy) scheduler run plus the clean
    baseline every row's inflation is measured against. Shard keys are
    picklable and deterministic; ``merge_shards`` reassembles rows in
    exactly the order the sequential loop would emit them.
    """
    intensities = [CAMPAIGN_INTENSITIES[0]] if quick \
        else list(CAMPAIGN_INTENSITIES)
    shards: list[tuple] = [("clean", None)]
    for intensity in intensities:
        for policy_idx in range(len(_policies(0))):
            shards.append((intensity, policy_idx))
    return shards


def run_shard(shard: tuple, quick: bool = False, seed: int = 0) -> dict:
    """Run one shard; returns a picklable partial for ``merge_shards``."""
    intensity, policy_idx = shard
    seed += BASE_SEED
    if intensity == "clean":
        clean = _run(None, None, seed)
        return {"shard": shard, "makespan_s": clean.makespan}
    policy = _policies(seed)[policy_idx]
    run = _run(intensity, policy, seed)
    stats = run.resilience
    useful = sum(r.exec_time for r in run.records.values())
    exec_total = useful + run.wasted_exec_s
    turnarounds = [r.turnaround for r in run.records.values()]
    return {
        "shard": shard,
        "intensity": intensity,
        "policy": stats.policy,
        "makespan_s": run.makespan,
        "wasted_pct": (100.0 * run.wasted_exec_s / exec_total
                       if exec_total else 0.0),
        "retry_amp": stats.attempts_total / len(run.records),
        "p99_turnaround_s": float(np.percentile(turnarounds, 99)),
        "backoff_s": stats.backoff_delay_s,
        "breaker_trips": stats.breaker_trips,
        "hedges_won": stats.hedges_won,
        "timeouts": stats.timeouts,
        "lost": stats.lost_tasks,
    }


def merge_shards(partials: list[dict], quick: bool = False,
                 seed: int = 0) -> ExperimentResult:
    """Deterministic shard merge: rows in (intensity, policy) order,
    inflation computed against the clean-baseline shard."""
    result = ExperimentResult(
        "E13", "Recovery-policy shootout under chaos campaigns"
    )
    seed += BASE_SEED
    by_key = {tuple(p["shard"]): p for p in partials}
    clean_makespan = by_key[("clean", None)]["makespan_s"]
    intensities = [CAMPAIGN_INTENSITIES[0]] if quick \
        else list(CAMPAIGN_INTENSITIES)
    for intensity in intensities:
        for policy_idx in range(len(_policies(0))):
            part = by_key[(intensity, policy_idx)]
            result.row(
                intensity=part["intensity"],
                policy=part["policy"],
                makespan_s=part["makespan_s"],
                inflation=part["makespan_s"] / clean_makespan,
                wasted_pct=part["wasted_pct"],
                retry_amp=part["retry_amp"],
                p99_turnaround_s=part["p99_turnaround_s"],
                backoff_s=part["backoff_s"],
                breaker_trips=part["breaker_trips"],
                hedges_won=part["hedges_won"],
                timeouts=part["timeouts"],
                lost=part["lost"],
            )
    worst = intensities[-1]
    by_policy = {r["policy"]: r for r in result.rows
                 if r["intensity"] == worst}
    naive = by_policy["naive-retry"]
    full = by_policy["backoff+breakers+hedging"]
    result.note(
        f"at intensity {worst!r}: full policy wasted "
        f"{full['wasted_pct']:.1f}% vs naive {naive['wasted_pct']:.1f}%, "
        f"p99 {full['p99_turnaround_s']:.0f}s vs "
        f"{naive['p99_turnaround_s']:.0f}s"
    )
    result.note(
        f"identical keyed adversary per intensity (seed {seed}); "
        f"zero lost tasks under every policy — resilience paces "
        f"recovery, it never drops work"
    )
    return result


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    # The sequential path runs the very same shard/merge code the
    # parallel runner fans out, so both produce byte-identical tables.
    partials = [run_shard(s, quick=quick, seed=seed)
                for s in list_shards(quick=quick, seed=seed)]
    return merge_shards(partials, quick=quick, seed=seed)
