"""E2 — placement strategy comparison (Table).

Question: which placement strategy wins, where? The full strategy
catalog runs three workload shapes (data-heavy beamline, compute-heavy
climate ensemble, mixed random layered DAG) on the science-grid preset
topology, reporting makespan, bytes moved, energy, and dollars.

Expected shape: HEFT/greedy-EFT lead on makespan overall; data-gravity
moves the fewest bytes and wins on the beamline (data-heavy) workload;
cloud-only pays egress dollars; edge-only is energy-frugal but slow on
compute-heavy work.

The observability columns decompose *why*: ``queue_wait_s`` totals
slot-wait across all tasks, and ``cp_xfer_pct``/``cp_queue_pct`` give
the critical path's transfer and queue-wait shares of the makespan
(the rest is compute).
"""

from __future__ import annotations

from itertools import cycle

from repro.bench.harness import ExperimentResult
from repro.continuum import Tier, hierarchical_continuum, science_grid
from repro.core import ContinuumScheduler
from repro.core.strategies import strategy_catalog
from repro.observe import critical_path
from repro.workloads import beamline_pipeline, climate_ensemble, layered_random_dag


def place_externals(topology, externals):
    """Scatter external datasets over the peripheral sites round-robin
    (data is born at the edge of the continuum)."""
    peripheral = [s.name for s in topology.sites if s.tier.is_peripheral]
    if not peripheral:
        peripheral = [topology.site_names[0]]
    sites = cycle(peripheral)
    return [(dataset, next(sites)) for dataset in externals]


def workloads(quick: bool, seed: int):
    scale = 1 if quick else 2
    yield "beamline", beamline_pipeline(4 * scale)
    yield "climate", climate_ensemble(3 * scale)
    yield "layered", layered_random_dag(15 * scale, seed=seed)


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("E2", "Strategy comparison across topologies")
    topologies = [("science-grid", science_grid())]
    if not quick:
        topologies.append(("hierarchical", hierarchical_continuum(seed=seed)))
    for topo_name, topo in topologies:
        for workload_name, (dag, externals) in workloads(quick, seed):
            rows_here = []
            for strategy in strategy_catalog():
                # fresh DAG/externals not needed: runs don't mutate them
                sched = ContinuumScheduler(topo, seed=seed)
                run = sched.run(
                    dag, strategy,
                    external_inputs=place_externals(topo, externals),
                )
                row = run.summary_row()
                cp = critical_path(run, dag)
                fractions = cp.fractions()
                row = {"topology": topo_name, "workload": workload_name,
                       **row,
                       "queue_wait_s": sum(
                           r.queue_time for r in run.records.values()),
                       "cp_xfer_pct": 100.0 * fractions["transfer"],
                       "cp_queue_pct": 100.0 * fractions["queue"]}
                rows_here.append(row)
                result.rows.append(row)
            best = min(rows_here, key=lambda r: r["makespan_s"])
            leanest = min(rows_here, key=lambda r: r["bytes_moved"])
            result.note(
                f"{topo_name}/{workload_name}: fastest={best['strategy']} "
                f"({best['makespan_s']:.2f}s), "
                f"fewest bytes={leanest['strategy']}"
            )
    return result
