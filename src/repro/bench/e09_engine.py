"""E9 — real dataflow-engine overheads (Table).

Question: what does the (actually executing) engine itself cost? Using
real Python callables:

- submit-to-result throughput for no-op tasks (serial + threaded),
- per-hop latency of a dependency chain,
- memoization speedup on a repeated expensive function.

Expected shape: per-task overhead well under 5 ms; memoized re-runs
collapse to near-zero; threads add overhead per task but win wall-clock
on sleep-bound work.
"""

from __future__ import annotations

import time

from repro.bench.harness import ExperimentResult
from repro.workflow import DataFlowKernel, SerialExecutor, ThreadExecutor


def _noop():
    return None


def _sleepy(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _throughput(executor_factory, n_tasks: int) -> dict:
    with DataFlowKernel(executor_factory()) as dfk:
        start = time.perf_counter()
        futures = [dfk.submit(_noop) for _ in range(n_tasks)]
        dfk.wait_all(futures, timeout=60)
        wall = time.perf_counter() - start
    return {
        "tasks": n_tasks,
        "wall_s": wall,
        "tasks_per_s": n_tasks / wall,
        "overhead_us_per_task": wall / n_tasks * 1e6,
    }


def _chain_latency(n_hops: int) -> float:
    with DataFlowKernel(SerialExecutor()) as dfk:
        start = time.perf_counter()
        fut = dfk.submit(_noop)
        for _ in range(n_hops):
            fut = dfk.submit(lambda _prev: None, fut)
        fut.result(timeout=60)
        return (time.perf_counter() - start) / n_hops


def _memo_speedup(n_repeats: int) -> dict:
    sleep_s = 0.02
    with DataFlowKernel(SerialExecutor(), memoize=True) as dfk:
        start = time.perf_counter()
        dfk.submit(_sleepy, sleep_s).result()
        first = time.perf_counter() - start
        start = time.perf_counter()
        futures = [dfk.submit(_sleepy, sleep_s) for _ in range(n_repeats)]
        dfk.wait_all(futures)
        repeats = time.perf_counter() - start
        memoized = dfk.tasks_memoized
    return {
        "first_call_s": first,
        "repeat_calls_s": repeats,
        "speedup": (first * n_repeats) / repeats if repeats > 0 else float("inf"),
        "memo_hits": memoized,
    }


def _parallel_speedup(n_tasks: int, workers: int) -> dict:
    sleep_s = 0.01
    with DataFlowKernel(SerialExecutor()) as dfk:
        start = time.perf_counter()
        dfk.wait_all([dfk.submit(_sleepy, sleep_s) for _ in range(n_tasks)],
                     timeout=120)
        serial = time.perf_counter() - start
    with DataFlowKernel(ThreadExecutor(max_workers=workers)) as dfk:
        start = time.perf_counter()
        dfk.wait_all([dfk.submit(_sleepy, sleep_s) for _ in range(n_tasks)],
                     timeout=120)
        threaded = time.perf_counter() - start
    return {"serial_s": serial, "threaded_s": threaded,
            "speedup": serial / threaded}


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("E9", "Dataflow engine overheads (real exec)")
    n = 500 if quick else 2000
    result.row(measure="noop-throughput-serial",
               **_throughput(SerialExecutor, n))
    result.row(measure="noop-throughput-threads(4)",
               **_throughput(lambda: ThreadExecutor(4), n))
    hops = 100 if quick else 400
    result.row(measure="chain-latency",
               hops=hops, s_per_hop=_chain_latency(hops))
    result.row(measure="memoization", **_memo_speedup(20 if quick else 50))
    result.row(measure="sleep-parallelism",
               **_parallel_speedup(40 if quick else 100, workers=8))
    result.note("sleep-bound tasks release the GIL: threads approach 8x")
    return result
