"""E3 — scheduler scalability (Figure).

Question: how does end-to-end scheduling cost grow with workflow size
and continuum size? Measures wall-clock time to schedule-and-simulate
layered random DAGs with HEFT as tasks grow (fixed 20-site continuum)
and as sites grow (fixed 200 tasks).

Expected shape: near-linear wall time in task count (decision work is
O(tasks x sites); simulated events per task are bounded); tasks/second
stays within a small factor across the sweep.
"""

from __future__ import annotations

import time

from repro.bench.harness import ExperimentResult
from repro.bench.e02_strategies import place_externals
from repro.continuum import geo_random_continuum
from repro.core import ContinuumScheduler, HEFTStrategy
from repro.workloads import layered_random_dag


def _run_once(n_tasks: int, n_sites: int, seed: int) -> dict:
    topo = geo_random_continuum(n_sites, seed=seed)
    dag, externals = layered_random_dag(n_tasks, n_levels=6, seed=seed)
    sched = ContinuumScheduler(topo, seed=seed)
    start = time.perf_counter()
    run = sched.run(dag, HEFTStrategy(),
                    external_inputs=place_externals(topo, externals))
    wall = time.perf_counter() - start
    return {
        "n_tasks": n_tasks,
        "n_sites": n_sites,
        "wall_s": wall,
        "tasks_per_s": n_tasks / wall if wall > 0 else float("inf"),
        "makespan_s": run.makespan,
    }


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("E3", "Scheduler scalability (HEFT)")
    task_sweep = [25, 50, 100] if quick else [50, 100, 200, 400, 800]
    site_sweep = [5, 10, 20] if quick else [5, 10, 20, 40, 80]
    for n_tasks in task_sweep:
        result.rows.append({"sweep": "tasks", **_run_once(n_tasks, 20, seed)})
    for n_sites in site_sweep:
        result.rows.append({"sweep": "sites", **_run_once(100, n_sites, seed)})
    task_rows = [r for r in result.rows if r["sweep"] == "tasks"]
    growth = task_rows[-1]["wall_s"] / max(task_rows[0]["wall_s"], 1e-9)
    size_ratio = task_rows[-1]["n_tasks"] / task_rows[0]["n_tasks"]
    result.note(
        f"wall time grew {growth:.1f}x for a {size_ratio:.0f}x task increase"
    )
    return result
