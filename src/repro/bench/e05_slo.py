"""E5 — SLO satisfaction vs network latency (Figure).

Question: when do you *have* to compute at the edge? A Poisson stream
of deadline-carrying inference requests can run on a slow nearby edge
endpoint or a fast faraway cloud endpoint. The edge-cloud RTT sweeps
from ~2 ms to ~800 ms; each placement policy reports its deadline
satisfaction.

Expected shape: edge satisfaction is flat in RTT (it never touches the
WAN); cloud satisfaction falls off a cliff once RTT + service exceeds
the deadline; the smart (estimate-based) policy follows the upper
envelope of the two.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.continuum import Link, Site, Tier, Topology
from repro.faas import ContainerModel, FaaSFabric, FunctionDef, pick_endpoint
from repro.netsim import FlowNetwork, rtt
from repro.simcore import Simulator, Timeout
from repro.utils.rng import RngRegistry
from repro.utils.units import Gbps, MILLISECOND, Mbps
from repro.workloads import request_stream

DEADLINE_S = 0.5
RATE_PER_S = 3.0
HORIZON_S = 60.0
FN = FunctionDef("infer", work=2.0, kind="dnn-inference",
                 request_bytes=2e5, response_bytes=1e4)
WARM = ContainerModel(cold_start_s=1.0, warm_start_s=0.005,
                      keep_alive_s=3600.0)


def _build(latency_s: float):
    topo = Topology("e5")
    topo.add_site(Site("client", Tier.DEVICE, speed=0.1))
    topo.add_site(Site("edge", Tier.EDGE, speed=1.0, slots=4,
                       specializations={"dnn-inference": 8.0}))
    topo.add_site(Site("cloud", Tier.CLOUD, speed=4.0, slots=32,
                       specializations={"dnn-inference": 32.0}))
    topo.add_link("client", "edge", Link(1 * MILLISECOND, 200 * Mbps))
    topo.add_link("edge", "cloud", Link(latency_s, 10 * Gbps))
    sim = Simulator()
    fabric = FaaSFabric(sim, FlowNetwork(sim, topo))
    fabric.registry.register(FN)
    fabric.deploy_endpoint("edge", containers=WARM)
    fabric.deploy_endpoint("cloud", containers=WARM)
    return sim, topo, fabric


def _policy_pick(policy: str, topo, fabric) -> str:
    if policy in ("edge", "cloud"):
        return policy
    # "smart": the fabric's fastest-estimate routing policy
    return pick_endpoint(fabric, "infer", "client", policy="fastest")


def _drive(latency_s: float, policy: str, seed: int) -> dict:
    sim, topo, fabric = _build(latency_s)
    requests = request_stream(RATE_PER_S, HORIZON_S, deadline_s=DEADLINE_S,
                              rng=RngRegistry(seed).stream("e5-arrivals"))
    met = []

    def client(req):
        yield Timeout(req.arrival_s)
        target = _policy_pick(policy, topo, fabric)
        inv = yield fabric.invoke("infer", client_site="client",
                                  endpoint_site=target)
        met.append(inv.total_latency <= req.deadline_s)

    for req in requests:
        sim.process(client(req))
    sim.run()
    return {
        "requests": len(met),
        "satisfaction": sum(met) / len(met) if met else 1.0,
    }


def run_experiment(quick: bool = False, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("E5", "SLO satisfaction vs edge-cloud latency")
    n = 4 if quick else 7
    latencies = np.logspace(np.log10(1 * MILLISECOND),
                            np.log10(400 * MILLISECOND), n)
    for latency in latencies:
        for policy in ("edge", "cloud", "smart"):
            row = _drive(float(latency), policy, seed)
            result.row(one_way_latency_ms=latency * 1e3, policy=policy, **row)
    result.note(f"deadline {DEADLINE_S * 1e3:.0f} ms end-to-end")
    result.note("cloud infer ~16x faster than edge but pays 2x WAN latency")
    return result
