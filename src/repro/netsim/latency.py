"""Small-message latency helpers.

Control-plane traffic (function invocations, scheduler RPCs) is dominated
by propagation latency, not bandwidth. These helpers compute unloaded
request/response times from path properties; the FaaS substrate uses them
for invocation overheads, and E5 sweeps them directly.
"""

from __future__ import annotations

from repro.continuum.topology import PathInfo, Topology


def rtt(topology: Topology, a: str, b: str) -> float:
    """Unloaded round-trip time between two sites (seconds)."""
    return 2.0 * topology.path_info(a, b).latency_s


def request_response_time(
    path: PathInfo,
    request_bytes: float,
    response_bytes: float,
) -> float:
    """Unloaded time for a request/response exchange along ``path``.

    Each direction pays one propagation latency plus serialization of its
    payload at the bottleneck bandwidth. Local paths cost zero.
    """
    if path.hop_count == 0:
        return 0.0
    out = path.latency_s + request_bytes / path.bandwidth_Bps
    back = path.latency_s + response_bytes / path.bandwidth_Bps
    return out + back
