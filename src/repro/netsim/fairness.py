"""Bandwidth-sharing allocators.

:func:`max_min_fair_rates` implements progressive filling: repeatedly find
the most-contended link, give every flow through it an equal share of the
remaining capacity, freeze those flows, and continue. The result is the
unique max-min fair allocation — every flow is limited by at least one
saturated link on which it receives a maximal share.

:func:`equal_share_rates` is the naive alternative (each flow gets the
minimum of its links' equal splits, computed once). It can strand
capacity; it exists as the ablation baseline called out in DESIGN.md.

All allocators accept the flow set in two forms:

- a sequence of per-flow link-index lists (the original API, validated
  and converted to an incidence matrix internally), or
- a prebuilt ``(n_links, n_flows)`` 0/1 incidence matrix (numpy array).
  This is the fast path used by :class:`~repro.netsim.network.FlowNetwork`,
  which maintains a persistent incidence matrix across flow arrivals and
  departures so a reallocation does zero per-event matrix construction.
  Matrix entries are trusted to be 0/1 (only the shape is checked).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import NetworkError


def _incidence(
    n_links: int, flow_links: Sequence[Sequence[int]]
) -> np.ndarray:
    """Build the link x flow 0/1 incidence matrix, validating indices."""
    n_flows = len(flow_links)
    A = np.zeros((n_links, n_flows))
    for f, links in enumerate(flow_links):
        for l in links:
            if not 0 <= l < n_links:
                raise NetworkError(f"flow {f} references unknown link {l}")
            A[l, f] = 1.0
    return A


def _as_incidence(n_links: int, flow_links) -> np.ndarray:
    """Accept either per-flow link lists or a prebuilt incidence matrix."""
    if isinstance(flow_links, np.ndarray):
        if flow_links.ndim != 2 or flow_links.shape[0] != n_links:
            raise NetworkError(
                f"incidence matrix shape {flow_links.shape} does not match "
                f"{n_links} links"
            )
        if not np.issubdtype(flow_links.dtype, np.floating):
            raise NetworkError(
                f"incidence matrix must be a float array, got dtype "
                f"{flow_links.dtype}"
            )
        return flow_links
    return _incidence(n_links, flow_links)


def _check_capacities(capacities) -> np.ndarray:
    cap = np.asarray(capacities, dtype=float)
    if cap.ndim != 1:
        raise NetworkError(
            f"capacities must be a 1-D sequence, got shape {cap.shape}"
        )
    if np.any(cap <= 0) or not np.all(np.isfinite(cap)):
        raise NetworkError("all link capacities must be positive and finite")
    return cap


def _check_rates(rates, n_flows: int) -> np.ndarray:
    """Validate a rate vector the way :func:`_check_capacities` validates
    capacities: 1-D, one entry per flow, no NaN, no negative entries
    (``inf`` is legal — it is the rate of a local flow)."""
    r = np.asarray(rates, dtype=float)
    if r.ndim != 1:
        raise NetworkError(f"rates must be a 1-D sequence, got shape {r.shape}")
    if len(r) != n_flows:
        raise NetworkError(f"{len(r)} rates for {n_flows} flows")
    if np.any(np.isnan(r)) or np.any(r < 0):
        raise NetworkError("all rates must be non-negative and not NaN")
    return r


def max_min_fair_rates(
    capacities: Sequence[float], flow_links
) -> np.ndarray:
    """Max-min fair rates for flows over capacitated links.

    Parameters
    ----------
    capacities:
        Per-link capacity (bytes/s), all positive.
    flow_links:
        For each flow, the indices of the links it traverses — or a
        prebuilt ``(n_links, n_flows)`` incidence matrix. A flow with no
        links (a local copy) gets infinite rate.

    Returns
    -------
    numpy array of per-flow rates. The allocation satisfies the max-min
    property: each flow traverses at least one saturated link on which
    no other flow has a strictly larger rate.
    """
    cap = _check_capacities(capacities)
    A = _as_incidence(len(cap), flow_links)
    n_links, n_flows = A.shape
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates

    # ``active`` is kept as float 0/1 so per-level products need no
    # dtype conversion; all link counts stay exact small integers in
    # float64 and are maintained incrementally (counts -= level_counts
    # equals a fresh A @ active exactly), which keeps the allocation
    # bit-identical no matter how many flows have already been frozen.
    active = np.ones(n_flows)
    local = A.sum(axis=0) == 0.0
    n_remaining = n_flows
    if local.any():
        rates[local] = math.inf
        active[local] = 0.0
        n_remaining -= int(local.sum())

    counts = A @ active
    remaining = cap.copy()
    # A link with no active flows can never be a bottleneck again; its
    # remaining capacity is patched to inf so the per-level division is
    # a plain vectorized divide (x/0 -> inf, never 0/0 -> nan) instead
    # of a masked one. Patched entries always yield share = inf, the
    # same value a masked divide would produce.
    remaining[counts == 0.0] = math.inf
    share = np.empty(n_links)
    scratch = np.empty(n_links)
    with np.errstate(divide="ignore"):
        while n_remaining > 0:
            np.divide(remaining, counts, out=share)
            l_star = int(share.argmin())
            level = share[l_star]
            # flows newly frozen at this level: active AND on the bottleneck
            cols = np.nonzero(active * A[l_star])[0]
            rates[cols] = level
            level_counts = A[:, cols].sum(axis=1)
            np.multiply(level_counts, level, out=scratch)
            np.subtract(remaining, scratch, out=remaining)
            np.maximum(remaining, 0.0, out=remaining)
            active[cols] = 0.0
            counts -= level_counts
            remaining[counts == 0.0] = math.inf
            n_remaining -= len(cols)
    return rates


def weighted_max_min_rates(
    capacities: Sequence[float],
    flow_links,
    weights: Sequence[float],
) -> np.ndarray:
    """Weighted max-min fairness: flows receive bandwidth proportional
    to their weights at each bottleneck (water-filling on normalized
    rates). ``weights=ones`` reduces exactly to plain max-min.

    Like :func:`max_min_fair_rates`, ``flow_links`` may be either
    per-flow link lists or a prebuilt incidence matrix.

    The classic use: mark background traffic (replication, prefetch)
    with weight < 1 so it yields to foreground transfers while still
    soaking up otherwise-idle capacity.
    """
    cap = _check_capacities(capacities)
    A = _as_incidence(len(cap), flow_links)
    n_flows = A.shape[1]
    w = np.asarray(weights, dtype=float)
    if len(w) != n_flows:
        raise NetworkError(
            f"{len(w)} weights for {n_flows} flows"
        )
    if np.any(w <= 0) or not np.all(np.isfinite(w)):
        raise NetworkError("all flow weights must be positive and finite")
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates

    active = np.ones(n_flows, dtype=bool)
    local = A.sum(axis=0) == 0
    rates[local] = math.inf
    active &= ~local
    n_remaining = int(active.sum())

    # Per-link sum of active weights, maintained incrementally: each
    # level subtracts exactly the matvec of the newly-frozen columns
    # instead of recomputing the full A @ (active * w) — O(links x
    # frozen) per level rather than O(links x flows), which drops the
    # whole solve from O(levels x links x flows) to O(links x flows)
    # total. Unlike unit counts, weight sums are not exact in floats,
    # so a guard backs the subtraction: per-link *active flow counts*
    # (exact small integers in float64, like plain max-min keeps) say
    # which links still carry active flows, and if cancellation ever
    # drives such a link's load to <= 0 the load is recomputed fresh.
    weight_load = A @ (active * w)
    counts = A @ active.astype(float)
    remaining = cap.copy()
    with np.errstate(divide="ignore", invalid="ignore"):
        while n_remaining > 0:
            # the bottleneck is the link with the smallest capacity per
            # unit of active weight
            level = np.where(weight_load > 0, remaining / weight_load,
                             math.inf)
            l_star = int(np.argmin(level))
            fair_level = level[l_star]
            newly = active & (A[l_star] > 0)
            rates[newly] = fair_level * w[newly]
            A_newly = A[:, newly]
            remaining -= A_newly @ rates[newly]
            remaining = np.maximum(remaining, 0.0)
            active &= ~newly
            weight_load -= A_newly @ w[newly]
            counts -= A_newly.sum(axis=1)
            n_remaining -= int(newly.sum())
            # A link with no active flows left must read exactly zero
            # load (a fresh recompute would): a leftover subtraction
            # residual of either sign would otherwise produce a bogus
            # finite level (0 remaining / tiny residual = 0 would even
            # win the argmin and stall the loop).
            weight_load[counts == 0.0] = 0.0
            if n_remaining > 0 and np.any((weight_load <= 0.0)
                                          & (counts > 0.0)):
                weight_load = A @ (active * w)
    return rates


def equal_share_rates(
    capacities: Sequence[float], flow_links
) -> np.ndarray:
    """Single-pass equal-split baseline (ablation).

    Each flow's rate is ``min over its links of capacity/flows-on-link``.
    Feasible but generally not Pareto-optimal: once a flow is limited by
    a remote bottleneck, its unused share elsewhere is wasted.
    """
    cap = _check_capacities(capacities)
    A = _as_incidence(len(cap), flow_links)
    n_links, n_flows = A.shape
    rates = np.full(n_flows, math.inf)
    if n_flows == 0 or n_links == 0:
        return rates
    counts = A.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        per_link = np.where(counts > 0, cap / counts, math.inf)
    # Vectorized masked min over the links each flow traverses: links a
    # flow does not use contribute +inf, so flows with no links stay
    # inf. min() over the same value set is exact, so this is
    # bit-identical to the per-flow scalar loop it replaces.
    contrib = np.where(A > 0, per_link[:, None], math.inf)
    return contrib.min(axis=0)


def link_loads(
    n_links: int,
    flow_links,
    rates: Sequence[float],
) -> np.ndarray:
    """Aggregate per-link load implied by an allocation (for invariant
    checks: ``link_loads(...) <= capacities`` within tolerance).

    ``rates`` is validated like capacities are: 1-D, one entry per
    flow, non-negative, NaN-free. Infinite rates (local flows, which
    traverse no links) contribute zero load.
    """
    A = _as_incidence(n_links, flow_links)
    r = _check_rates(rates, A.shape[1])
    finite = np.where(np.isfinite(r), r, 0.0)
    return A @ finite
