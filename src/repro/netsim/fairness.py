"""Bandwidth-sharing allocators.

:func:`max_min_fair_rates` implements progressive filling: repeatedly find
the most-contended link, give every flow through it an equal share of the
remaining capacity, freeze those flows, and continue. The result is the
unique max-min fair allocation — every flow is limited by at least one
saturated link on which it receives a maximal share.

:func:`equal_share_rates` is the naive alternative (each flow gets the
minimum of its links' equal splits, computed once). It can strand
capacity; it exists as the ablation baseline called out in DESIGN.md.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import NetworkError


def _incidence(
    n_links: int, flow_links: Sequence[Sequence[int]]
) -> np.ndarray:
    """Build the link x flow 0/1 incidence matrix, validating indices."""
    n_flows = len(flow_links)
    A = np.zeros((n_links, n_flows))
    for f, links in enumerate(flow_links):
        for l in links:
            if not 0 <= l < n_links:
                raise NetworkError(f"flow {f} references unknown link {l}")
            A[l, f] = 1.0
    return A


def max_min_fair_rates(
    capacities: Sequence[float], flow_links: Sequence[Sequence[int]]
) -> np.ndarray:
    """Max-min fair rates for flows over capacitated links.

    Parameters
    ----------
    capacities:
        Per-link capacity (bytes/s), all positive.
    flow_links:
        For each flow, the indices of the links it traverses. A flow
        with no links (a local copy) gets infinite rate.

    Returns
    -------
    numpy array of per-flow rates. The allocation satisfies the max-min
    property: each flow traverses at least one saturated link on which
    no other flow has a strictly larger rate.
    """
    cap = np.asarray(capacities, dtype=float)
    if np.any(cap <= 0) or not np.all(np.isfinite(cap)):
        raise NetworkError("all link capacities must be positive and finite")
    n_flows = len(flow_links)
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates

    A = _incidence(len(cap), flow_links)
    active = np.ones(n_flows, dtype=bool)

    # Local flows (no links) are unconstrained.
    local = A.sum(axis=0) == 0
    rates[local] = math.inf
    active &= ~local

    remaining = cap.copy()
    while active.any():
        counts = A @ active
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(counts > 0, remaining / counts, math.inf)
        l_star = int(np.argmin(share))
        level = share[l_star]
        newly = active & (A[l_star] > 0)
        rates[newly] = level
        remaining -= (A[:, newly].sum(axis=1)) * level
        remaining = np.maximum(remaining, 0.0)
        active &= ~newly
    return rates


def weighted_max_min_rates(
    capacities: Sequence[float],
    flow_links: Sequence[Sequence[int]],
    weights: Sequence[float],
) -> np.ndarray:
    """Weighted max-min fairness: flows receive bandwidth proportional
    to their weights at each bottleneck (water-filling on normalized
    rates). ``weights=ones`` reduces exactly to plain max-min.

    The classic use: mark background traffic (replication, prefetch)
    with weight < 1 so it yields to foreground transfers while still
    soaking up otherwise-idle capacity.
    """
    cap = np.asarray(capacities, dtype=float)
    if np.any(cap <= 0) or not np.all(np.isfinite(cap)):
        raise NetworkError("all link capacities must be positive and finite")
    w = np.asarray(weights, dtype=float)
    if len(w) != len(flow_links):
        raise NetworkError(
            f"{len(w)} weights for {len(flow_links)} flows"
        )
    if np.any(w <= 0) or not np.all(np.isfinite(w)):
        raise NetworkError("all flow weights must be positive and finite")
    n_flows = len(flow_links)
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates

    A = _incidence(len(cap), flow_links)
    active = np.ones(n_flows, dtype=bool)
    local = A.sum(axis=0) == 0
    rates[local] = math.inf
    active &= ~local

    remaining = cap.copy()
    while active.any():
        # per-link sum of active weights; the bottleneck is the link
        # with the smallest capacity per unit weight
        weight_load = A @ (active * w)
        with np.errstate(divide="ignore", invalid="ignore"):
            level = np.where(weight_load > 0, remaining / weight_load, math.inf)
        l_star = int(np.argmin(level))
        fair_level = level[l_star]
        newly = active & (A[l_star] > 0)
        rates[newly] = fair_level * w[newly]
        remaining -= A[:, newly] @ rates[newly]
        remaining = np.maximum(remaining, 0.0)
        active &= ~newly
    return rates


def equal_share_rates(
    capacities: Sequence[float], flow_links: Sequence[Sequence[int]]
) -> np.ndarray:
    """Single-pass equal-split baseline (ablation).

    Each flow's rate is ``min over its links of capacity/flows-on-link``.
    Feasible but generally not Pareto-optimal: once a flow is limited by
    a remote bottleneck, its unused share elsewhere is wasted.
    """
    cap = np.asarray(capacities, dtype=float)
    if np.any(cap <= 0) or not np.all(np.isfinite(cap)):
        raise NetworkError("all link capacities must be positive and finite")
    n_flows = len(flow_links)
    rates = np.full(n_flows, math.inf)
    if n_flows == 0:
        return rates
    A = _incidence(len(cap), flow_links)
    counts = A.sum(axis=1)
    for f, links in enumerate(flow_links):
        for l in links:
            rates[f] = min(rates[f], cap[l] / counts[l])
    return rates


def link_loads(
    n_links: int,
    flow_links: Sequence[Sequence[int]],
    rates: Sequence[float],
) -> np.ndarray:
    """Aggregate per-link load implied by an allocation (for invariant
    checks: ``link_loads(...) <= capacities`` within tolerance)."""
    A = _incidence(n_links, flow_links)
    finite = np.where(np.isfinite(rates), rates, 0.0)
    return A @ np.asarray(finite, dtype=float)
