"""Flow-level network simulation.

Rather than simulating packets, transfers are modeled as *fluid flows*
that share link bandwidth max-min fairly — the standard abstraction for
WAN-scale studies, accurate for long-lived TCP-like transfers while
costing O(flows x links) per flow arrival/departure instead of per-packet
work.

- :func:`max_min_fair_rates` — progressive-filling allocator (numpy),
- :func:`equal_share_rates` — naive baseline kept for ablations,
- :class:`FlowNetwork` — binds the allocator to the event kernel:
  ``transfer()`` returns a waitable that fires when the bytes land,
- :class:`Flow` — bookkeeping record per transfer.
"""

from repro.netsim.fairness import (
    equal_share_rates,
    max_min_fair_rates,
    weighted_max_min_rates,
)
from repro.netsim.flow import Flow
from repro.netsim.network import FlowNetwork
from repro.netsim.latency import request_response_time, rtt

__all__ = [
    "max_min_fair_rates",
    "weighted_max_min_rates",
    "equal_share_rates",
    "Flow",
    "FlowNetwork",
    "request_response_time",
    "rtt",
]
