"""Per-transfer bookkeeping record."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.continuum.topology import PathInfo


@dataclass
class Flow:
    """One in-flight (or completed) transfer.

    The network updates ``remaining_bytes``/``rate_Bps`` on every
    reallocation; ``finish_time`` is set when the last byte arrives
    (transmission done + propagation latency).
    """

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    path: PathInfo
    start_time: float
    weight: float = 1.0
    remaining_bytes: float = field(init=False)
    rate_Bps: float = 0.0
    finish_time: float | None = None

    def __post_init__(self):
        self.remaining_bytes = float(self.size_bytes)

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def duration(self) -> float | None:
        """Completion time minus start, or None while in flight."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def achieved_throughput(self) -> float | None:
        """Average bytes/s over the whole transfer (incl. latency)."""
        dur = self.duration
        if dur is None or dur <= 0:
            return None
        return self.size_bytes / dur

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else f"{self.remaining_bytes:.3g}B left"
        return f"<Flow {self.flow_id} {self.src}->{self.dst} {state}>"
