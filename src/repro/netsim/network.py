"""Event-driven flow network bound to a topology.

:class:`FlowNetwork` turns ``transfer(src, dst, size)`` calls into fluid
flows. Whenever the flow set changes, per-flow rates are re-solved with
the configured allocator and each in-flight flow's completion event is
rescheduled. A flow completes its *transmission* when its byte count
drains; the receiver's completion signal fires one path-latency later
(store-and-forward pipeline tail).

Two structural optimizations keep busy networks cheap:

- **Persistent incidence matrix.** The link x flow 0/1 matrix the
  allocator consumes is maintained incrementally: preallocated and grown
  geometrically on the flow axis, a column is written on ``transfer()``
  and removed on drain by shifting the columns to its right one slot
  left (one vectorized copy). The shift — rather than a swap with the
  last column — preserves flow insertion order, which keeps weighted
  allocations (whose matvec summation order is order-sensitive in
  floating point) bit-identical to a freshly rebuilt matrix. A
  reallocation therefore does O(levels x links x flows) numpy work with
  zero per-event matrix construction.
- **Same-instant coalescing.** Flow arrivals/departures/brownouts mark
  the network dirty and schedule one deferred solve at the current
  instant instead of solving inline, so a burst of k flow events at one
  simulated instant (e.g. ``AllOf`` staging of k inputs) triggers one
  rate solve instead of k. No simulated time passes between the burst
  and the solve, so observable dynamics are unchanged. Drain events are
  rescheduled only for flows whose rate actually changed.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.continuum.topology import Topology
from repro.errors import NetworkError
from repro.netsim.fairness import max_min_fair_rates, weighted_max_min_rates
from repro.netsim.flow import Flow
from repro.simcore.monitor import Monitor
from repro.simcore.process import Signal
from repro.simcore.simulation import Simulator

# Bytes below this are considered fully drained (float-accumulation guard).
_EPSILON_BYTES = 1e-6

# Initial column capacity of the persistent incidence matrix.
_INITIAL_COLS = 16

# Relative rate change below which a flow's drain event is kept as-is.
_RATE_RTOL = 1e-12


class FlowNetwork:
    """Shared-bandwidth transfer service over a :class:`Topology`."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        allocator: Callable = max_min_fair_rates,
        monitor: Monitor | None = None,
    ):
        self.sim = sim
        self.topology = topology
        self.allocator = allocator
        self.monitor = monitor if monitor is not None else Monitor(sim)
        self._link_index: dict[frozenset, int] = {}
        self._capacities: list[float] = []
        for a, b, link in topology.links():
            self._link_index[frozenset((a, b))] = len(self._capacities)
            self._capacities.append(link.bandwidth_Bps)
        self._capacity_arr = np.asarray(self._capacities, dtype=float)
        n_links = len(self._capacities)
        self._active: dict[int, Flow] = {}
        self._events: dict[int, object] = {}   # flow_id -> scheduled event
        self._signals: dict[int, Signal] = {}
        self._spans: dict[int, object] = {}    # flow_id -> open tracer span
        self._last_update = sim.now
        self._next_id = 0
        # persistent incidence state: column c of _A[:, :_n_active]
        # belongs to flow _col_flow[c]; parallel per-column arrays hold
        # weight, current rate, and remaining bytes
        self._A = np.zeros((n_links, _INITIAL_COLS))
        self._col_w = np.ones(_INITIAL_COLS)
        self._col_rates = np.zeros(_INITIAL_COLS)
        self._col_remaining = np.zeros(_INITIAL_COLS)
        self._col_flow: list[int] = []         # column -> flow_id
        self._col_of: dict[int, int] = {}      # flow_id -> column
        self._n_active = 0
        self._solve_pending = False
        # aggregate accounting
        self.completed: list[Flow] = []
        self.total_bytes_moved = 0.0
        self.total_transfer_cost_usd = 0.0
        self.bytes_per_link = np.zeros(n_links)
        self.rate_solves = 0                   # fair-share recompute count

    # -- public API -------------------------------------------------------------
    def transfer(self, src: str, dst: str, size_bytes: float,
                 *, weight: float = 1.0) -> Signal:
        """Start moving ``size_bytes`` from ``src`` to ``dst``.

        Returns a :class:`Signal` that fires with the :class:`Flow`
        record when the last byte arrives. Local transfers (same site)
        complete at the current instant; zero-byte transfers pay the
        path's propagation latency only (an empty message still has to
        cross the wire). ``weight`` sets this flow's share under
        weighted fairness (background traffic uses < 1).
        """
        if size_bytes < 0:
            raise NetworkError(f"negative transfer size {size_bytes}")
        if weight <= 0:
            raise NetworkError(f"flow weight must be positive, got {weight}")
        path = self.topology.path_info(src, dst)
        flow = Flow(self._next_id, src, dst, float(size_bytes), path,
                    self.sim.now, weight=float(weight))
        self._next_id += 1
        signal = self.sim.signal()
        self._signals[flow.flow_id] = signal
        self.monitor.count("flows_started")
        tracer = self.monitor.tracer
        if tracer.enabled:
            self._spans[flow.flow_id] = tracer.begin(
                f"xfer:{src}->{dst}", "transfer", src=src, dst=dst,
                bytes=float(size_bytes), route=list(path.hops),
            )

        if path.hop_count == 0 or size_bytes == 0:
            # Local or empty: no bytes contend for bandwidth, so the
            # flow never joins the shared allocation. Latency-only
            # completion (zero for local paths, whose latency is 0).
            self.sim.schedule(path.latency_s, self._complete, flow)
            return signal

        link_ids = [
            self._link_index[frozenset((a, b))]
            for a, b in zip(path.hops, path.hops[1:])
        ]
        self._drain_to_now()
        self._active[flow.flow_id] = flow
        self._add_column(flow, link_ids)
        self._mark_dirty()
        return signal

    @property
    def active_flow_count(self) -> int:
        return len(self._active)

    def set_link_bandwidth(self, a: str, b: str, bandwidth_Bps: float) -> None:
        """Change a link's live capacity (brownouts, upgrades).

        In-flight flows are re-allocated immediately. Note this changes
        only the *network's* reality — planner estimates read the static
        topology and will be stale, which is exactly how real systems
        mis-plan during congestion events.
        """
        if bandwidth_Bps <= 0:
            raise NetworkError(
                f"bandwidth must be positive, got {bandwidth_Bps}"
            )
        try:
            idx = self._link_index[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link {a!r}--{b!r}") from None
        self._drain_to_now()
        self._capacities[idx] = float(bandwidth_Bps)
        self._capacity_arr[idx] = float(bandwidth_Bps)
        self._mark_dirty()

    def link_bandwidth(self, a: str, b: str) -> float:
        """Current live capacity of link ``a--b``."""
        try:
            idx = self._link_index[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link {a!r}--{b!r}") from None
        return self._capacities[idx]

    def utilization_of(self, a: str, b: str) -> float:
        """Current load fraction on link ``a--b`` (0 when idle)."""
        try:
            idx = self._link_index[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link {a!r}--{b!r}") from None
        n = self._n_active
        load = float(self._A[idx, :n] @ self._col_rates[:n])
        return load / self._capacities[idx]

    # -- incidence matrix maintenance ---------------------------------------------
    def _add_column(self, flow: Flow, link_ids: list[int]) -> None:
        n = self._n_active
        if n == self._A.shape[1]:
            self._grow(max(2 * n, _INITIAL_COLS))
        self._A[link_ids, n] = 1.0
        self._col_w[n] = flow.weight
        self._col_rates[n] = 0.0
        self._col_remaining[n] = flow.remaining_bytes
        self._col_flow.append(flow.flow_id)
        self._col_of[flow.flow_id] = n
        self._n_active = n + 1

    def _grow(self, new_cap: int) -> None:
        n_links, old_cap = self._A.shape
        A = np.zeros((n_links, new_cap))
        A[:, :old_cap] = self._A
        self._A = A
        for name in ("_col_w", "_col_rates", "_col_remaining"):
            old = getattr(self, name)
            arr = np.zeros(new_cap)
            arr[:old_cap] = old
            setattr(self, name, arr)

    def _remove_column(self, fid: int) -> None:
        """Free a drained flow's column, preserving column order.

        Later columns shift one slot left (vectorized copies); keeping
        insertion order — instead of swapping in the last column — makes
        the persistent matrix bit-identical to one rebuilt from scratch,
        so order-sensitive weighted matvecs produce identical rates.
        """
        col = self._col_of.pop(fid)
        n = self._n_active
        last = n - 1
        if col < last:
            self._A[:, col:last] = self._A[:, col + 1:n]
            self._col_w[col:last] = self._col_w[col + 1:n]
            self._col_rates[col:last] = self._col_rates[col + 1:n]
            self._col_remaining[col:last] = self._col_remaining[col + 1:n]
            del self._col_flow[col]
            for c in range(col, last):
                self._col_of[self._col_flow[c]] = c
        else:
            self._col_flow.pop()
        self._A[:, last] = 0.0
        self._n_active = last

    # -- internals ------------------------------------------------------------------
    def _drain_to_now(self) -> None:
        """Advance remaining-byte counters to the current instant."""
        elapsed = self.sim.now - self._last_update
        n = self._n_active
        if elapsed > 0 and n:
            moved = self._col_rates[:n] * elapsed
            rem = self._col_remaining[:n]
            np.maximum(rem - moved, 0.0, out=rem)
            self.bytes_per_link += self._A[:, :n] @ moved
            for col, fid in enumerate(self._col_flow):
                self._active[fid].remaining_bytes = rem[col]
        self._last_update = self.sim.now

    def _mark_dirty(self) -> None:
        """Defer one rate solve to the end of the current instant."""
        if not self._solve_pending:
            self._solve_pending = True
            self.sim.schedule(0.0, self._solve_rates)

    def _solve_rates(self) -> None:
        """Re-solve rates; reschedule drain events for changed flows."""
        self._solve_pending = False
        self.rate_solves += 1
        n = self._n_active
        if n == 0:
            return
        A = self._A[:, :n]
        w = self._col_w[:n]
        if self.allocator is max_min_fair_rates and np.any(w != 1.0):
            rates = weighted_max_min_rates(self._capacity_arr, A, w)
        else:
            rates = self.allocator(self._capacity_arr, A)
        old = self._col_rates[:n]
        unchanged = (old > 0) & (np.abs(rates - old) <= _RATE_RTOL * old)
        changed_cols = np.nonzero(~unchanged)[0]
        remaining = self._col_remaining[:n]
        for col in changed_cols:
            fid = self._col_flow[col]
            flow = self._active[fid]
            rate = float(rates[col])
            flow.rate_Bps = rate
            old_event = self._events.pop(fid, None)
            if old_event is not None:
                self.sim.cancel(old_event)
            if remaining[col] <= _EPSILON_BYTES:
                drain_in = 0.0
            elif rate <= 0 or not math.isfinite(rate):
                continue  # starved; will be rescheduled at next change
            else:
                # plain-float division keeps event timestamps (and thus
                # sim.now) native floats, as before the persistent matrix
                drain_in = float(remaining[col]) / rate
            self._events[fid] = self.sim.schedule(drain_in, self._on_drained, fid)
        self._col_rates[:n] = rates

    def _on_drained(self, fid: int) -> None:
        """Transmission finished: remove from sharing, fire after latency."""
        self._drain_to_now()
        flow = self._active.pop(fid, None)
        if flow is None:
            return
        self._events.pop(fid, None)
        self._remove_column(fid)
        flow.remaining_bytes = 0.0
        self.sim.schedule(flow.path.latency_s, self._complete, flow)
        self._mark_dirty()

    def _complete(self, flow: Flow) -> None:
        flow.finish_time = self.sim.now
        flow.rate_Bps = 0.0
        self.completed.append(flow)
        self.total_bytes_moved += flow.size_bytes
        cost = flow.path.transfer_cost(flow.size_bytes)
        self.total_transfer_cost_usd += cost
        self.monitor.count("flows_completed")
        self.monitor.count("bytes_moved", flow.size_bytes)
        span = self._spans.pop(flow.flow_id, None)
        if span is not None:
            rate = flow.size_bytes / flow.duration if flow.duration > 0 else 0.0
            self.monitor.tracer.end(span, achieved_Bps=rate,
                                    cost_usd=cost)
        self.monitor.log(
            "transfer_done",
            f"flow{flow.flow_id}",
            src=flow.src,
            dst=flow.dst,
            bytes=flow.size_bytes,
            duration=flow.duration,
        )
        signal = self._signals.pop(flow.flow_id)
        signal.trigger(flow)
