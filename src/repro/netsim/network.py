"""Event-driven flow network bound to a topology.

:class:`FlowNetwork` turns ``transfer(src, dst, size)`` calls into fluid
flows. Whenever the flow set changes, per-flow rates are re-solved with
the configured allocator and each in-flight flow's completion event is
rescheduled. A flow completes its *transmission* when its byte count
drains; the receiver's completion signal fires one path-latency later
(store-and-forward pipeline tail).
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.continuum.topology import Topology
from repro.errors import NetworkError
from repro.netsim.fairness import max_min_fair_rates, weighted_max_min_rates
from repro.netsim.flow import Flow
from repro.simcore.monitor import Monitor
from repro.simcore.process import Signal
from repro.simcore.simulation import Simulator

# Bytes below this are considered fully drained (float-accumulation guard).
_EPSILON_BYTES = 1e-6


class FlowNetwork:
    """Shared-bandwidth transfer service over a :class:`Topology`."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        allocator: Callable = max_min_fair_rates,
        monitor: Monitor | None = None,
    ):
        self.sim = sim
        self.topology = topology
        self.allocator = allocator
        self.monitor = monitor if monitor is not None else Monitor(sim)
        self._link_index: dict[frozenset, int] = {}
        self._capacities: list[float] = []
        for a, b, link in topology.links():
            self._link_index[frozenset((a, b))] = len(self._capacities)
            self._capacities.append(link.bandwidth_Bps)
        self._capacity_arr = np.asarray(self._capacities, dtype=float)
        self._active: dict[int, Flow] = {}
        self._flow_paths: dict[int, list[int]] = {}
        self._events: dict[int, object] = {}   # flow_id -> scheduled event
        self._signals: dict[int, Signal] = {}
        self._last_update = sim.now
        self._next_id = 0
        # aggregate accounting
        self.completed: list[Flow] = []
        self.total_bytes_moved = 0.0
        self.total_transfer_cost_usd = 0.0
        self.bytes_per_link = np.zeros(len(self._capacities))

    # -- public API -------------------------------------------------------------
    def transfer(self, src: str, dst: str, size_bytes: float,
                 *, weight: float = 1.0) -> Signal:
        """Start moving ``size_bytes`` from ``src`` to ``dst``.

        Returns a :class:`Signal` that fires with the :class:`Flow`
        record when the last byte arrives. Local transfers (same site)
        complete at the current instant. ``weight`` sets this flow's
        share under weighted fairness (background traffic uses < 1).
        """
        if size_bytes < 0:
            raise NetworkError(f"negative transfer size {size_bytes}")
        if weight <= 0:
            raise NetworkError(f"flow weight must be positive, got {weight}")
        path = self.topology.path_info(src, dst)
        flow = Flow(self._next_id, src, dst, float(size_bytes), path,
                    self.sim.now, weight=float(weight))
        self._next_id += 1
        signal = self.sim.signal()
        self._signals[flow.flow_id] = signal

        if path.hop_count == 0 or size_bytes == 0:
            # Local or empty: latency only (zero for local).
            delay = path.latency_s if size_bytes > 0 else path.latency_s
            self.sim.schedule(delay, self._complete, flow)
            return signal

        link_ids = [
            self._link_index[frozenset((a, b))]
            for a, b in zip(path.hops, path.hops[1:])
        ]
        self._drain_to_now()
        self._active[flow.flow_id] = flow
        self._flow_paths[flow.flow_id] = link_ids
        self.monitor.count("flows_started")
        self._reallocate()
        return signal

    @property
    def active_flow_count(self) -> int:
        return len(self._active)

    def set_link_bandwidth(self, a: str, b: str, bandwidth_Bps: float) -> None:
        """Change a link's live capacity (brownouts, upgrades).

        In-flight flows are re-allocated immediately. Note this changes
        only the *network's* reality — planner estimates read the static
        topology and will be stale, which is exactly how real systems
        mis-plan during congestion events.
        """
        if bandwidth_Bps <= 0:
            raise NetworkError(
                f"bandwidth must be positive, got {bandwidth_Bps}"
            )
        try:
            idx = self._link_index[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link {a!r}--{b!r}") from None
        self._drain_to_now()
        self._capacities[idx] = float(bandwidth_Bps)
        self._capacity_arr[idx] = float(bandwidth_Bps)
        self._reallocate()

    def link_bandwidth(self, a: str, b: str) -> float:
        """Current live capacity of link ``a--b``."""
        try:
            idx = self._link_index[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link {a!r}--{b!r}") from None
        return self._capacities[idx]

    def utilization_of(self, a: str, b: str) -> float:
        """Current load fraction on link ``a--b`` (0 when idle)."""
        try:
            idx = self._link_index[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link {a!r}--{b!r}") from None
        load = sum(
            f.rate_Bps
            for fid, f in self._active.items()
            if idx in self._flow_paths[fid]
        )
        return load / self._capacities[idx]

    # -- internals ------------------------------------------------------------------
    def _drain_to_now(self) -> None:
        """Advance remaining-byte counters to the current instant."""
        elapsed = self.sim.now - self._last_update
        if elapsed > 0:
            for fid, flow in self._active.items():
                moved = flow.rate_Bps * elapsed
                flow.remaining_bytes = max(flow.remaining_bytes - moved, 0.0)
                for idx in self._flow_paths[fid]:
                    self.bytes_per_link[idx] += moved
        self._last_update = self.sim.now

    def _reallocate(self) -> None:
        """Re-solve rates and reschedule every active flow's drain event."""
        if not self._active:
            return
        fids = list(self._active)
        flow_links = [self._flow_paths[fid] for fid in fids]
        weights = [self._active[fid].weight for fid in fids]
        if self.allocator is max_min_fair_rates and any(
            w != 1.0 for w in weights
        ):
            rates = weighted_max_min_rates(self._capacity_arr, flow_links,
                                           weights)
        else:
            rates = self.allocator(self._capacity_arr, flow_links)
        for fid, rate in zip(fids, rates):
            flow = self._active[fid]
            rate = float(rate)
            unchanged = (
                flow.rate_Bps > 0
                and abs(rate - flow.rate_Bps) <= 1e-12 * flow.rate_Bps
                and fid in self._events
            )
            flow.rate_Bps = rate
            if unchanged:
                continue  # same rate: the scheduled drain is still correct
            old_event = self._events.pop(fid, None)
            if old_event is not None:
                self.sim.cancel(old_event)
            if flow.remaining_bytes <= _EPSILON_BYTES:
                drain_in = 0.0
            elif rate <= 0 or not math.isfinite(rate):
                continue  # starved; will be rescheduled at next change
            else:
                drain_in = flow.remaining_bytes / rate
            self._events[fid] = self.sim.schedule(drain_in, self._on_drained, fid)

    def _on_drained(self, fid: int) -> None:
        """Transmission finished: remove from sharing, fire after latency."""
        self._drain_to_now()
        flow = self._active.pop(fid, None)
        if flow is None:
            return
        self._events.pop(fid, None)
        self._flow_paths.pop(fid)
        flow.remaining_bytes = 0.0
        self.sim.schedule(flow.path.latency_s, self._complete, flow)
        self._reallocate()

    def _complete(self, flow: Flow) -> None:
        flow.finish_time = self.sim.now
        flow.rate_Bps = 0.0
        self.completed.append(flow)
        self.total_bytes_moved += flow.size_bytes
        cost = flow.path.transfer_cost(flow.size_bytes)
        self.total_transfer_cost_usd += cost
        self.monitor.count("flows_completed")
        self.monitor.count("bytes_moved", flow.size_bytes)
        self.monitor.log(
            "transfer_done",
            f"flow{flow.flow_id}",
            src=flow.src,
            dst=flow.dst,
            bytes=flow.size_bytes,
            duration=flow.duration,
        )
        signal = self._signals.pop(flow.flow_id)
        signal.trigger(flow)
