"""Request batching: trade per-request latency for throughput.

A :class:`Batcher` fronts one endpoint+function pair. Requests accumulate
until either ``max_batch`` are waiting or the oldest has waited
``max_wait_s``; the whole batch then runs as a single invocation whose
work is ``batch_overhead_work + n * work``. Inference serving uses exactly
this policy, and E4 sweeps its two knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaaSError
from repro.faas.endpoint import Endpoint, InvocationRecord
from repro.simcore.process import Signal
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class BatchPolicy:
    """Batching knobs. ``max_batch=1`` degenerates to pass-through."""

    max_batch: int = 8
    max_wait_s: float = 0.05

    def __post_init__(self):
        if self.max_batch < 1:
            raise FaaSError(f"max_batch must be >= 1, got {self.max_batch}")
        check_non_negative("max_wait_s", self.max_wait_s)


@dataclass
class BatchedRequest:
    """Per-request outcome returned by :meth:`Batcher.submit`."""

    submitted: float
    batch_size: int = 0
    dispatched: float = 0.0
    completed: float = 0.0
    record: InvocationRecord | None = None

    @property
    def latency(self) -> float:
        return self.completed - self.submitted

    @property
    def batch_wait(self) -> float:
        return self.dispatched - self.submitted


class Batcher:
    """Accumulate-and-dispatch front for one (endpoint, function) pair."""

    def __init__(self, endpoint: Endpoint, function: str, policy: BatchPolicy):
        self.endpoint = endpoint
        self.function = function
        self.policy = policy
        self.sim = endpoint.sim
        endpoint.registry.get(function)  # fail fast on unknown function
        self._pending: list[tuple[BatchedRequest, Signal]] = []
        self._flush_event = None
        # accounting
        self.batches_dispatched = 0
        self.requests_served = 0

    def submit(self) -> Signal:
        """Enqueue one request; fires with a :class:`BatchedRequest`."""
        request = BatchedRequest(submitted=self.sim.now)
        signal = self.sim.signal()
        self._pending.append((request, signal))
        if len(self._pending) >= self.policy.max_batch:
            self._flush()
        elif self._flush_event is None:
            self._flush_event = self.sim.schedule(
                self.policy.max_wait_s, self._on_timer
            )
        return signal

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def _on_timer(self) -> None:
        self._flush_event = None
        if self._pending:
            self._flush()

    def _flush(self) -> None:
        if self._flush_event is not None:
            self.sim.cancel(self._flush_event)
            self._flush_event = None
        batch, self._pending = self._pending, []
        for request, _sig in batch:
            request.dispatched = self.sim.now
            request.batch_size = len(batch)
        self.batches_dispatched += 1
        done = self.endpoint.invoke(self.function, batched=len(batch))
        self.sim.process(self._await_batch(done, batch), name="batch-await")

    def _await_batch(self, done: Signal, batch):
        record: InvocationRecord = yield done
        for request, signal in batch:
            request.completed = self.sim.now
            request.record = record
            self.requests_served += 1
            signal.trigger(request)
