"""Payload serialization cost model.

funcX ships arguments and results through a serializing proxy; for small
payloads the fixed overhead dominates, for large ones throughput does.
A two-parameter affine model captures both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class SerializationModel:
    """``time = base_s + size / bytes_per_second`` per direction."""

    base_s: float = 0.0005
    bytes_per_second: float = 500e6

    def __post_init__(self):
        check_non_negative("base_s", self.base_s)
        check_positive("bytes_per_second", self.bytes_per_second)

    def time_for(self, size_bytes: float) -> float:
        check_non_negative("size_bytes", size_bytes)
        return self.base_s + size_bytes / self.bytes_per_second

    def round_trip(self, request_bytes: float, response_bytes: float) -> float:
        """Serialize request + deserialize response (the endpoint side
        mirrors this; callers apply it per leg as appropriate)."""
        return self.time_for(request_bytes) + self.time_for(response_bytes)
