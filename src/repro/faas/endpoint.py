"""FaaS endpoints: worker queues + container lifecycle at one site."""

from __future__ import annotations

from dataclasses import dataclass

from repro.continuum.site import Site
from repro.errors import FaaSError
from repro.faas.container import ContainerModel, WarmPool
from repro.faas.function import FunctionDef, FunctionRegistry
from repro.faas.serialization import SerializationModel
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.simcore.process import Signal, Timeout
from repro.simcore.resources import Resource
from repro.simcore.simulation import Simulator


@dataclass
class InvocationRecord:
    """Timing breakdown of one invocation at an endpoint.

    ``submitted`` -> ``started_wait`` (enqueue) -> worker granted ->
    container ready -> execution -> ``finished``. Network legs are
    accounted by the fabric, not here.
    """

    function: str
    endpoint: str
    submitted: float
    queue_time: float = 0.0
    startup_time: float = 0.0
    serialize_time: float = 0.0
    exec_time: float = 0.0
    finished: float = 0.0
    cold_start: bool = False
    batched: int = 1

    @property
    def service_time(self) -> float:
        """Endpoint-side latency: everything but the network."""
        return self.finished - self.submitted


class Endpoint:
    """One site's function-serving agent.

    ``workers`` parallel slots execute functions; each execution needs a
    container, reused warm when possible. The endpoint resolves function
    names against a shared :class:`FunctionRegistry`.
    """

    def __init__(
        self,
        sim: Simulator,
        site: Site,
        registry: FunctionRegistry,
        *,
        workers: int | None = None,
        containers: ContainerModel | None = None,
        serialization: SerializationModel | None = None,
        name: str | None = None,
        tracer: Tracer | None = None,
    ):
        self.sim = sim
        self.site = site
        self.registry = registry
        self.name = name or f"ep-{site.name}"
        if tracer is not None and not tracer.bound:
            tracer.bind(lambda: sim.now)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        n_workers = site.slots if workers is None else int(workers)
        if n_workers < 1:
            raise FaaSError(f"endpoint needs >= 1 worker, got {n_workers}")
        self.workers = Resource(sim, n_workers, name=f"{self.name}.workers")
        self.containers = containers or ContainerModel()
        self.serialization = serialization or SerializationModel()
        self._warm: dict[str, WarmPool] = {}
        self._activity_waiters: list[Signal] = []
        # accounting
        self.records: list[InvocationRecord] = []
        self.cold_starts = 0
        self.warm_starts = 0
        self.busy_seconds = 0.0

    # -- introspection ------------------------------------------------------------
    def warm_count(self, function: str) -> int:
        pool = self._warm.get(function)
        return pool.warm_count(self.sim.now) if pool else 0

    @property
    def queue_length(self) -> int:
        return self.workers.queue_length

    def wait_for_activity(self) -> Signal:
        """Signal that fires at the next invocation — lets controllers
        (autoscalers) park event-free while the endpoint is idle."""
        signal = self.sim.signal()
        self._activity_waiters.append(signal)
        return signal

    def estimate_service_time(self, function: str, assume_warm: bool = True) -> float:
        """Unloaded endpoint-side latency estimate for planners."""
        fn = self.registry.get(function)
        startup = (
            self.containers.warm_start_s if assume_warm
            else self.containers.cold_start_s
        )
        ser = self.serialization.round_trip(fn.request_bytes, fn.response_bytes)
        return startup + ser + self.site.service_time(fn.work, kind=fn.kind)

    # -- invocation -----------------------------------------------------------------
    def invoke(self, function: str, *, batched: int = 1,
               work_override: float | None = None) -> Signal:
        """Execute ``function`` once (or as a batch of ``batched``
        requests); fires with an :class:`InvocationRecord`."""
        fn = self.registry.get(function)
        if batched < 1:
            raise FaaSError(f"batched must be >= 1, got {batched}")
        signal = self.sim.signal()
        self.sim.process(
            self._invoke_proc(fn, batched, work_override, signal),
            name=f"{self.name}:{function}",
        )
        waiters, self._activity_waiters = self._activity_waiters, []
        for waiter in waiters:
            waiter.trigger()
        return signal

    def _invoke_proc(self, fn: FunctionDef, batched: int,
                     work_override: float | None, signal: Signal):
        record = InvocationRecord(
            function=fn.name, endpoint=self.name,
            submitted=self.sim.now, batched=batched,
        )
        tracer = self.tracer
        ispan = tracer.begin(f"invoke:{fn.name}", "invoke",
                             endpoint=self.name, batched=batched)
        phase = tracer.begin("queue", "queue", parent=ispan)
        req = self.workers.request()
        yield req
        tracer.end(phase)
        record.queue_time = self.sim.now - record.submitted
        try:
            pool = self._warm.get(fn.name)
            if pool is None:
                pool = self._warm[fn.name] = WarmPool(self.containers)
            if pool.take_warm(self.sim.now):
                record.cold_start = False
                record.startup_time = self.containers.warm_start_s
                self.warm_starts += 1
            else:
                record.cold_start = True
                record.startup_time = self.containers.cold_start_s
                self.cold_starts += 1
            phase = tracer.begin("startup", "startup", parent=ispan,
                                 cold=record.cold_start)
            if record.startup_time > 0:
                yield Timeout(record.startup_time)
            tracer.end(phase)

            record.serialize_time = self.serialization.round_trip(
                fn.request_bytes * batched, fn.response_bytes * batched
            )
            phase = tracer.begin("serialize", "serialize", parent=ispan)
            if record.serialize_time > 0:
                yield Timeout(record.serialize_time)
            tracer.end(phase)

            if work_override is not None:
                total_work = work_override
            else:
                total_work = fn.work * batched
                if batched > 1:
                    total_work += fn.batch_overhead_work
            record.exec_time = self.site.service_time(total_work, kind=fn.kind)
            phase = tracer.begin("exec", "exec", parent=ispan)
            if record.exec_time > 0:
                yield Timeout(record.exec_time)
            tracer.end(phase)

            pool.put_warm(self.sim.now)
        finally:
            self.workers.release(req)
        record.finished = self.sim.now
        self.records.append(record)
        self.busy_seconds += record.startup_time + record.serialize_time + record.exec_time
        tracer.end(ispan, cold_start=record.cold_start,
                   queue_s=record.queue_time, exec_s=record.exec_time)
        signal.trigger(record)
