"""Federated function-as-a-service substrate (funcX-flavoured).

Functions are registered centrally and invoked on *endpoints* pinned to
continuum sites. The model captures the overheads that make FaaS placement
interesting:

- container **cold/warm starts** with keep-alive expiry,
- **worker-slot queueing** at each endpoint,
- **payload serialization** and network request/response time,
- optional request **batching** (throughput/latency trade-off).

E4 measures these overheads; E5 uses the fabric for SLO experiments.
"""

from repro.faas.function import FunctionDef, FunctionRegistry
from repro.faas.container import ContainerModel
from repro.faas.serialization import SerializationModel
from repro.faas.endpoint import Endpoint, InvocationRecord
from repro.faas.batching import Batcher, BatchPolicy
from repro.faas.autoscaler import Autoscaler, ScalingPolicy
from repro.faas.fabric import FaaSFabric
from repro.faas.routing import (
    estimate_total_latency,
    healthy_endpoints,
    pick_endpoint,
)

__all__ = [
    "FunctionDef",
    "FunctionRegistry",
    "ContainerModel",
    "SerializationModel",
    "Endpoint",
    "InvocationRecord",
    "Batcher",
    "BatchPolicy",
    "Autoscaler",
    "ScalingPolicy",
    "FaaSFabric",
    "pick_endpoint",
    "healthy_endpoints",
    "estimate_total_latency",
]
