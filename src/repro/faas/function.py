"""Function definitions and the central registry."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaaSError
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class FunctionDef:
    """A registered function.

    Attributes
    ----------
    name:
        Registry-unique identifier.
    work:
        Compute demand in work units (a site with ``effective_speed`` s
        executes it in ``work / s`` seconds per request).
    kind:
        Task kind used to match site specializations (e.g.
        ``"dnn-inference"`` runs faster on a GPU endpoint).
    request_bytes / response_bytes:
        Default payload sizes for the network request/response legs.
    batch_overhead_work:
        Fixed extra work per *batch* when invoked through a batcher
        (model-load/setup amortized across batched requests).
    """

    name: str
    work: float
    kind: str = "generic"
    request_bytes: float = 1024.0
    response_bytes: float = 1024.0
    batch_overhead_work: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise FaaSError("function name must be non-empty")
        check_non_negative("work", self.work)
        check_non_negative("request_bytes", self.request_bytes)
        check_non_negative("response_bytes", self.response_bytes)
        check_non_negative("batch_overhead_work", self.batch_overhead_work)


class FunctionRegistry:
    """The shared registry every endpoint resolves functions against."""

    def __init__(self) -> None:
        self._functions: dict[str, FunctionDef] = {}

    def register(self, fn: FunctionDef) -> FunctionDef:
        existing = self._functions.get(fn.name)
        if existing is not None and existing != fn:
            raise FaaSError(
                f"function {fn.name!r} already registered with a different "
                f"definition"
            )
        self._functions[fn.name] = fn
        return fn

    def get(self, name: str) -> FunctionDef:
        try:
            return self._functions[name]
        except KeyError:
            raise FaaSError(f"unknown function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    @property
    def names(self) -> list[str]:
        return list(self._functions)
