"""Container lifecycle model: the cold/warm start economics of FaaS."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class ContainerModel:
    """Startup costs and keep-alive policy for one endpoint.

    ``cold_start_s`` covers image pull + runtime boot + function load;
    ``warm_start_s`` is the reuse cost of an already-provisioned
    container. After an execution the container stays warm for
    ``keep_alive_s`` before being reclaimed. ``max_warm_per_function``
    caps idle containers held per function (0 disables reuse entirely —
    the "always cold" ablation).
    """

    cold_start_s: float = 2.0
    warm_start_s: float = 0.01
    keep_alive_s: float = 300.0
    max_warm_per_function: int = 16

    def __post_init__(self):
        check_non_negative("cold_start_s", self.cold_start_s)
        check_non_negative("warm_start_s", self.warm_start_s)
        check_non_negative("keep_alive_s", self.keep_alive_s)
        if self.max_warm_per_function < 0:
            raise ValueError(
                f"max_warm_per_function must be >= 0, got "
                f"{self.max_warm_per_function}"
            )


class WarmPool:
    """Expiry-tracked pool of warm containers for one function.

    Stored as a list of expiry timestamps; taking a container prefers the
    freshest (latest-expiring) entry, which maximizes reuse under bursty
    arrivals (LIFO stack discipline, as production FaaS schedulers do).
    """

    __slots__ = ("model", "_expiries")

    def __init__(self, model: ContainerModel):
        self.model = model
        self._expiries: list[float] = []

    def take_warm(self, now: float) -> bool:
        """Claim a warm container if one is live; True on success."""
        self._expire(now)
        if self._expiries:
            self._expiries.pop()  # freshest (list kept sorted ascending)
            return True
        return False

    def put_warm(self, now: float) -> None:
        """Return a container to the pool after an execution."""
        if self.model.max_warm_per_function == 0 or self.model.keep_alive_s == 0:
            return
        self._expire(now)
        expiry = now + self.model.keep_alive_s
        self._expiries.append(expiry)
        self._expiries.sort()
        if len(self._expiries) > self.model.max_warm_per_function:
            self._expiries.pop(0)  # drop the stalest

    def warm_count(self, now: float) -> int:
        self._expire(now)
        return len(self._expiries)

    def _expire(self, now: float) -> None:
        if self._expiries:
            self._expiries = [e for e in self._expiries if e > now]
