"""The federated fabric: route invocations to endpoints over the network.

:class:`FaaSFabric` is the funcX-shaped front door: a client at one site
invokes a registered function at (or routed to) an endpoint site; request
and response payloads cross the simulated network, and the endpoint model
charges queueing/startup/execution. The returned record separates network
time from endpoint service time, which is what the SLO experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.continuum.topology import Topology
from repro.errors import FaaSError
from repro.faas.endpoint import Endpoint, InvocationRecord
from repro.faas.function import FunctionRegistry
from repro.netsim.network import FlowNetwork
from repro.simcore.process import Signal
from repro.simcore.simulation import Simulator


@dataclass
class RemoteInvocation:
    """End-to-end outcome of a fabric invocation."""

    function: str
    client_site: str
    endpoint_site: str
    submitted: float
    completed: float = 0.0
    request_net_time: float = 0.0
    response_net_time: float = 0.0
    record: InvocationRecord | None = None

    @property
    def total_latency(self) -> float:
        return self.completed - self.submitted

    @property
    def network_time(self) -> float:
        return self.request_net_time + self.response_net_time

    @property
    def service_time(self) -> float:
        return self.record.service_time if self.record else 0.0


class FaaSFabric:
    """Registry + endpoints + network, glued into one invocable service."""

    def __init__(self, sim: Simulator, network: FlowNetwork,
                 registry: FunctionRegistry | None = None):
        self.sim = sim
        self.network = network
        self.topology: Topology = network.topology
        self.registry = registry or FunctionRegistry()
        self._endpoints: dict[str, Endpoint] = {}
        self.invocations: list[RemoteInvocation] = []

    # -- endpoints ------------------------------------------------------------
    def deploy_endpoint(self, site_name: str, **endpoint_kwargs) -> Endpoint:
        """Stand up an endpoint at ``site_name`` (one per site)."""
        if site_name in self._endpoints:
            raise FaaSError(f"endpoint already deployed at {site_name!r}")
        site = self.topology.site(site_name)
        endpoint = Endpoint(self.sim, site, self.registry, **endpoint_kwargs)
        self._endpoints[site_name] = endpoint
        return endpoint

    def endpoint_at(self, site_name: str) -> Endpoint:
        try:
            return self._endpoints[site_name]
        except KeyError:
            raise FaaSError(f"no endpoint at {site_name!r}") from None

    @property
    def endpoint_sites(self) -> list[str]:
        return list(self._endpoints)

    # -- invocation -------------------------------------------------------------
    def invoke(
        self,
        function: str,
        *,
        client_site: str,
        endpoint_site: str,
        request_bytes: float | None = None,
        response_bytes: float | None = None,
    ) -> Signal:
        """Invoke ``function`` from ``client_site`` on the endpoint at
        ``endpoint_site``; fires with a :class:`RemoteInvocation`."""
        fn = self.registry.get(function)
        endpoint = self.endpoint_at(endpoint_site)
        if client_site not in self.topology:
            raise FaaSError(f"unknown client site {client_site!r}")
        req_bytes = fn.request_bytes if request_bytes is None else request_bytes
        resp_bytes = fn.response_bytes if response_bytes is None else response_bytes

        invocation = RemoteInvocation(
            function=function, client_site=client_site,
            endpoint_site=endpoint_site, submitted=self.sim.now,
        )
        signal = self.sim.signal()
        self.sim.process(
            self._invoke_proc(endpoint, fn.name, req_bytes, resp_bytes,
                              invocation, signal),
            name=f"fabric:{function}@{endpoint_site}",
        )
        return signal

    def invoke_via(self, function: str, *, client_site: str,
                   policy: str = "fastest", breakers=None, avoid=(),
                   **kwargs) -> Signal:
        """Route with a named policy (see :mod:`repro.faas.routing`)
        then invoke — the one-call client most applications want.

        ``breakers`` (a :class:`~repro.resilience.BreakerRegistry`) and
        ``avoid`` make routing health-aware: endpoints with an open
        circuit are skipped unless no healthy endpoint remains.
        """
        from repro.faas.routing import pick_endpoint

        endpoint_site = pick_endpoint(self, function, client_site,
                                      policy=policy, breakers=breakers,
                                      avoid=avoid)
        return self.invoke(function, client_site=client_site,
                           endpoint_site=endpoint_site, **kwargs)

    def _invoke_proc(self, endpoint: Endpoint, function: str,
                     req_bytes: float, resp_bytes: float,
                     invocation: RemoteInvocation, signal: Signal):
        t0 = self.sim.now
        yield self.network.transfer(
            invocation.client_site, invocation.endpoint_site, req_bytes
        )
        invocation.request_net_time = self.sim.now - t0

        record: InvocationRecord = yield endpoint.invoke(function)
        invocation.record = record

        t1 = self.sim.now
        yield self.network.transfer(
            invocation.endpoint_site, invocation.client_site, resp_bytes
        )
        invocation.response_net_time = self.sim.now - t1
        invocation.completed = self.sim.now
        self.invocations.append(invocation)
        signal.trigger(invocation)
