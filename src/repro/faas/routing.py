"""Endpoint-selection policies for the FaaS fabric.

The fabric routes to an explicit endpoint; these helpers choose one.
All estimates are unloaded (no queue knowledge crosses the wire in real
federations either); the ``least-loaded`` policy adds the one signal an
endpoint does export — its queue length.

Health-aware failover: pass a
:class:`~repro.resilience.BreakerRegistry` (and/or an explicit
``avoid`` set) and routing skips endpoints whose circuit is open —
half-open endpoints stay eligible so a probe can close them again.
When *every* endpoint is excluded, routing degrades to the full set
rather than failing: an all-open fleet means the breakers carry no
signal worth honouring.
"""

from __future__ import annotations

from repro.errors import FaaSError
from repro.faas.fabric import FaaSFabric
from repro.netsim.latency import rtt
from repro.resilience.breaker import BreakerRegistry

POLICIES = ("fastest", "nearest", "least-loaded")


def estimate_total_latency(fabric: FaaSFabric, function: str,
                           client_site: str, endpoint_site: str) -> float:
    """Unloaded end-to-end estimate: network RTT + endpoint service."""
    endpoint = fabric.endpoint_at(endpoint_site)
    return (rtt(fabric.topology, client_site, endpoint_site)
            + endpoint.estimate_service_time(function))


def healthy_endpoints(fabric: FaaSFabric, *,
                      breakers: BreakerRegistry | None = None,
                      avoid=(), now: float | None = None,
                      registry=None) -> list[str]:
    """Deployed endpoint sites minus open circuits, ``avoid``, and —
    when a replicated ``registry`` view is given — endpoints the
    control plane currently believes down; degrades to the full set
    when that would leave nothing.

    ``registry`` is a *possibly-stale* view (see
    :class:`repro.controlplane.RegistryView`): during replication lag
    or a partition it may still admit a dead endpoint (the caller's
    breakers then catch it) or hide a recovered one — exactly the
    trade the read mode selected.
    """
    sites = fabric.endpoint_sites
    if not sites:
        return sites
    if now is None:
        now = fabric.sim.now
    excluded = set(avoid)
    if breakers is not None:
        excluded |= breakers.blocked_targets(sites, now)
    if registry is not None:
        excluded |= {s for s in sites if not registry.is_live(s)}
    healthy = [s for s in sites if s not in excluded]
    return healthy if healthy else sites


def pick_endpoint(fabric: FaaSFabric, function: str, client_site: str,
                  policy: str = "fastest", *,
                  breakers: BreakerRegistry | None = None,
                  avoid=(), now: float | None = None,
                  registry=None) -> str:
    """Choose an endpoint site for one invocation.

    - ``fastest`` — minimal estimated RTT + service time,
    - ``nearest`` — minimal network RTT only (latency-dominated work),
    - ``least-loaded`` — shortest worker queue, ties by ``fastest``.

    ``breakers``/``avoid`` filter unhealthy endpoints first (see
    :func:`healthy_endpoints`); if the chosen endpoint's breaker is
    half-open the selection *is* its probe — callers feed the outcome
    back via ``record_success``/``record_failure``.
    """
    if not fabric.endpoint_sites:
        raise FaaSError("fabric has no endpoints deployed")
    if policy not in POLICIES:
        raise FaaSError(f"unknown routing policy {policy!r}; "
                        f"known: {POLICIES}")
    fabric.registry.get(function)
    sites = healthy_endpoints(fabric, breakers=breakers, avoid=avoid,
                              now=now, registry=registry)

    if policy == "nearest":
        return min(sites,
                   key=lambda s: rtt(fabric.topology, client_site, s))
    if policy == "least-loaded":
        return min(
            sites,
            key=lambda s: (
                fabric.endpoint_at(s).queue_length,
                estimate_total_latency(fabric, function, client_site, s),
            ),
        )
    return min(
        sites,
        key=lambda s: estimate_total_latency(fabric, function,
                                             client_site, s),
    )
