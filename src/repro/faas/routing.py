"""Endpoint-selection policies for the FaaS fabric.

The fabric routes to an explicit endpoint; these helpers choose one.
All estimates are unloaded (no queue knowledge crosses the wire in real
federations either); the ``least-loaded`` policy adds the one signal an
endpoint does export — its queue length.
"""

from __future__ import annotations

from repro.errors import FaaSError
from repro.faas.fabric import FaaSFabric
from repro.netsim.latency import rtt

POLICIES = ("fastest", "nearest", "least-loaded")


def estimate_total_latency(fabric: FaaSFabric, function: str,
                           client_site: str, endpoint_site: str) -> float:
    """Unloaded end-to-end estimate: network RTT + endpoint service."""
    endpoint = fabric.endpoint_at(endpoint_site)
    return (rtt(fabric.topology, client_site, endpoint_site)
            + endpoint.estimate_service_time(function))


def pick_endpoint(fabric: FaaSFabric, function: str, client_site: str,
                  policy: str = "fastest") -> str:
    """Choose an endpoint site for one invocation.

    - ``fastest`` — minimal estimated RTT + service time,
    - ``nearest`` — minimal network RTT only (latency-dominated work),
    - ``least-loaded`` — shortest worker queue, ties by ``fastest``.
    """
    sites = fabric.endpoint_sites
    if not sites:
        raise FaaSError("fabric has no endpoints deployed")
    if policy not in POLICIES:
        raise FaaSError(f"unknown routing policy {policy!r}; "
                        f"known: {POLICIES}")
    fabric.registry.get(function)

    if policy == "nearest":
        return min(sites,
                   key=lambda s: rtt(fabric.topology, client_site, s))
    if policy == "least-loaded":
        return min(
            sites,
            key=lambda s: (
                fabric.endpoint_at(s).queue_length,
                estimate_total_latency(fabric, function, client_site, s),
            ),
        )
    return min(
        sites,
        key=lambda s: estimate_total_latency(fabric, function,
                                             client_site, s),
    )
