"""Elastic endpoints: queue-driven worker autoscaling.

Serverless platforms grow and shrink worker pools with demand. The
:class:`Autoscaler` polls one endpoint's queue on a fixed interval and
applies the classic threshold policy:

- queue length > ``scale_up_at``      -> add ``step`` workers (after a
  ``provision_delay_s`` modeling VM/container spin-up),
- queue empty and *all* workers idle  -> remove ``step`` workers,

bounded by ``[min_workers, max_workers]``. Scale-down requires the pool
to be fully drained — an empty queue alone is not proof of idleness,
and shrinking while work is still running causes capacity flapping
under steady load. Scaling down never preempts running work (the
resource drains naturally). E4's endpoint model plus this loop
reproduces the elasticity half of the funcX story.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaaSError
from repro.faas.endpoint import Endpoint
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.simcore.process import Timeout
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ScalingPolicy:
    """Threshold-scaling knobs."""

    min_workers: int = 1
    max_workers: int = 16
    scale_up_at: int = 2        # queued requests that trigger growth
    step: int = 1
    interval_s: float = 1.0
    provision_delay_s: float = 5.0

    def __post_init__(self):
        check_positive("min_workers", self.min_workers)
        check_positive("step", self.step)
        check_positive("interval_s", self.interval_s)
        check_non_negative("provision_delay_s", self.provision_delay_s)
        check_non_negative("scale_up_at", self.scale_up_at)
        if self.max_workers < self.min_workers:
            raise FaaSError(
                f"max_workers ({self.max_workers}) < min_workers "
                f"({self.min_workers})"
            )


class Autoscaler:
    """Threshold autoscaler bound to one endpoint.

    Call :meth:`start` once; the control loop runs until the simulation
    drains or :meth:`stop` is called. ``scaling_events`` records every
    capacity change as ``(time, old, new)``.
    """

    def __init__(self, endpoint: Endpoint, policy: ScalingPolicy | None = None,
                 *, tracer: Tracer | None = None):
        self.endpoint = endpoint
        self.policy = policy or ScalingPolicy()
        self.sim = endpoint.sim
        self.tracer = (tracer if tracer is not None
                       else endpoint.tracer or NULL_TRACER)
        if endpoint.workers.capacity < self.policy.min_workers:
            raise FaaSError(
                "endpoint starts below the policy's min_workers"
            )
        self.scaling_events: list[tuple[float, int, int]] = []
        self._stopped = False
        self._provisioning = 0
        self._proc = None

    # -- control ------------------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None:
            raise FaaSError("autoscaler already started")
        self._proc = self.sim.process(self._loop(), name="autoscaler")

    def stop(self) -> None:
        self._stopped = True

    @property
    def current_workers(self) -> int:
        return self.endpoint.workers.capacity

    # -- the loop --------------------------------------------------------------------
    def _loop(self):
        policy = self.policy
        workers = self.endpoint.workers
        while not self._stopped:
            if (
                workers.queue_length == 0
                and workers.in_use == 0
                and workers.capacity == policy.min_workers
                and self._provisioning == 0
            ):
                # Idle at the floor: park event-free until the next
                # invocation. (A pending Timeout would keep the whole
                # simulation alive forever; a Signal wait does not.)
                yield self.endpoint.wait_for_activity()
                continue
            yield Timeout(policy.interval_s)
            if self._stopped:
                return
            queue = workers.queue_length
            planned = workers.capacity + self._provisioning
            if queue >= policy.scale_up_at and planned < policy.max_workers:
                step = min(policy.step, policy.max_workers - planned)
                self._provisioning += step
                self.sim.process(self._provision(step), name="provision")
            elif (
                queue == 0
                and workers.in_use == 0
                and workers.capacity > policy.min_workers
                and self._provisioning == 0
            ):
                step = min(policy.step, workers.capacity - policy.min_workers)
                self._resize(workers.capacity - step)

    def _provision(self, step: int):
        span = self.tracer.begin("provision", "scaling", step=step,
                                 endpoint=self.endpoint.name)
        if self.policy.provision_delay_s > 0:
            yield Timeout(self.policy.provision_delay_s)
        else:
            yield Timeout(0.0)
        self._provisioning -= step
        self.tracer.end(span)
        if not self._stopped:
            self._resize(self.endpoint.workers.capacity + step)

    def _resize(self, new_capacity: int) -> None:
        old = self.endpoint.workers.capacity
        if new_capacity == old:
            return
        self.endpoint.workers.set_capacity(new_capacity)
        self.scaling_events.append((self.sim.now, old, new_capacity))
        self.tracer.instant("scale", "scaling", endpoint=self.endpoint.name,
                            old=old, new=new_capacity)
