"""The real-execution dataflow kernel.

:class:`DataFlowKernel` runs Python callables with Parsl semantics:

- ``submit(fn, *args)`` returns an :class:`AppFuture` immediately,
- any :class:`~concurrent.futures.Future` among the arguments is an
  implicit dependency; the task launches when all resolve, with the
  future values substituted in place,
- failed dependencies fail dependents with :class:`TaskFailedError`,
- per-task retries (optionally paced by a
  :class:`~repro.resilience.RetryPolicy` — exponential backoff with
  seeded jitter — and bounded by a run-wide
  :class:`~repro.resilience.RetryBudget`),
- per-task attempt timeouts: a watchdog abandons an attempt that
  overruns its deadline, retries it, and guarantees the late result is
  never stored or delivered; exhausted timeouts surface as
  :class:`WorkflowError` carrying the full attempt history,
- cooperative cancellation: ``AppFuture.cancel()`` works any time
  before completion — unlaunched tasks never run, in-flight results
  are discarded (and never memoized),
- optional memoization ("app caching") and checkpointing of the memo
  table across runs; only *successful* results are ever memoized.

The kernel is executor-agnostic (threads or serial) and thread-safe:
dependency callbacks fire on worker threads.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field

from repro.errors import TaskFailedError, WorkflowError
from repro.observe.span import Span
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.resilience.retry import RetryBudget, RetryPolicy
from repro.workflow.checkpoint import load_checkpoint, save_checkpoint
from repro.workflow.executors import ExecutorBase, ThreadExecutor
from repro.workflow.futures import AppFuture
from repro.workflow.memoization import Memoizer, make_key


@dataclass
class _TaskRecord:
    fn: object
    args: tuple
    kwargs: dict
    future: AppFuture
    retries: int
    timeout_s: float | None = None
    pending: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)
    span: Span | None = None       # task-lifecycle span (tracing enabled)
    wait_span: Span | None = None  # submit -> dependencies-resolved
    attempt_token: int = 0         # bumped to orphan a timed-out attempt
    history: list[str] = field(default_factory=list)
    watchdog: threading.Timer | None = None


def _iter_futures(args: tuple, kwargs: dict):
    """Yield futures found at top level or one level inside list/tuple
    arguments (the containers app code actually passes)."""
    def scan(value):
        if isinstance(value, Future):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Future):
                    yield item

    for arg in args:
        yield from scan(arg)
    for value in kwargs.values():
        yield from scan(value)


def _substitute(value):
    if isinstance(value, Future):
        return value.result()
    if isinstance(value, list):
        return [_substitute(v) for v in value]
    if isinstance(value, tuple):
        return tuple(_substitute(v) for v in value)
    return value


class DataFlowKernel:
    """Submit-side engine tying futures, executors, and memoization."""

    def __init__(
        self,
        executor: ExecutorBase | None = None,
        *,
        memoize: bool = False,
        checkpoint_path: str | None = None,
        retries: int = 0,
        retry_policy: RetryPolicy | None = None,
        retry_budget: RetryBudget | int | None = None,
        task_timeout_s: float | None = None,
        tracer: Tracer | None = None,
    ):
        if retries < 0:
            raise WorkflowError(f"retries must be >= 0, got {retries}")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise WorkflowError(
                f"task_timeout_s must be positive, got {task_timeout_s}"
            )
        self.executor = executor if executor is not None else ThreadExecutor()
        if tracer is not None and not tracer.bound:
            tracer.bind(time.perf_counter)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.default_retries = retries
        self.retry_policy = retry_policy
        if isinstance(retry_budget, int):
            retry_budget = RetryBudget(retry_budget)
        self.retry_budget = retry_budget
        self.default_timeout_s = task_timeout_s
        self.memoizer = Memoizer() if (memoize or checkpoint_path) else None
        self.checkpoint_path = checkpoint_path
        if checkpoint_path:
            self.memoizer.load(load_checkpoint(checkpoint_path))
        self._lock = threading.Lock()
        self._task_counter = 0
        self._closed = False
        # counters
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.tasks_memoized = 0
        self.tasks_cancelled = 0
        self.tasks_timed_out = 0

    # -- submission ---------------------------------------------------------------
    def submit(self, fn, *args, retries: int | None = None,
               timeout_s: float | None = None, **kwargs) -> AppFuture:
        """Schedule ``fn(*args, **kwargs)``; returns its future now.

        ``timeout_s`` bounds each execution attempt (falling back to the
        kernel-wide ``task_timeout_s``); an attempt that overruns is
        abandoned and retried, and its late result is discarded.
        """
        if self._closed:
            raise WorkflowError("submit on a shut-down DataFlowKernel")
        if not callable(fn):
            raise WorkflowError(f"submit needs a callable, got {type(fn).__name__}")
        if timeout_s is not None and timeout_s <= 0:
            raise WorkflowError(f"timeout_s must be positive, got {timeout_s}")
        with self._lock:
            task_id = self._task_counter
            self._task_counter += 1
            self.tasks_submitted += 1
        future = AppFuture(task_id, getattr(fn, "__name__", repr(fn)))
        record = _TaskRecord(
            fn=fn, args=args, kwargs=kwargs, future=future,
            retries=self.default_retries if retries is None else retries,
            timeout_s=self.default_timeout_s if timeout_s is None else timeout_s,
        )
        deps = list({id(f): f for f in _iter_futures(args, kwargs)}.values())
        record.pending = len(deps)
        if self.tracer.enabled:
            record.span = self.tracer.begin(
                f"task:{future.func_name}#{task_id}", "dftask",
                task_id=task_id, deps=len(deps),
            )
            record.wait_span = self.tracer.begin(
                "wait-deps", "queue", parent=record.span,
            )
        if not deps:
            self._launch(record)
        else:
            for dep in deps:
                dep.add_done_callback(lambda _f, r=record: self._dep_done(r))
        return future

    def app(self, fn=None, *, retries: int | None = None):
        """Decorator turning a function into a submitting app::

            @dfk.app()
            def double(x): return 2 * x
            future = double(21)
        """
        def wrap(func):
            def submitting(*args, **kwargs):
                return self.submit(func, *args, retries=retries, **kwargs)

            submitting.__name__ = getattr(func, "__name__", "app")
            submitting.__wrapped__ = func
            return submitting

        return wrap if fn is None else wrap(fn)

    # -- dependency handling --------------------------------------------------------
    def _dep_done(self, record: _TaskRecord) -> None:
        with record.lock:
            record.pending -= 1
            ready = record.pending == 0
        if ready:
            self._launch(record)

    def _launch(self, record: _TaskRecord) -> None:
        self.tracer.end(record.wait_span)
        record.wait_span = None
        if record.future.cancelled():
            # cancelled before start: never runs, never memoizes
            with self._lock:
                self.tasks_cancelled += 1
            self.tracer.end(record.span, status="cancelled")
            return
        try:
            args = tuple(_substitute(a) for a in record.args)
            kwargs = {k: _substitute(v) for k, v in record.kwargs.items()}
        except BaseException as exc:  # a dependency failed
            self._fail(record, TaskFailedError(record.future.func_name, exc))
            return

        key = None
        if self.memoizer is not None:
            key = make_key(record.future.func_name, args, kwargs)
            found, value = self.memoizer.lookup(key)
            if found:
                record.future.from_memo = True
                with self._lock:
                    self.tasks_memoized += 1
                    self.tasks_completed += 1
                self.tracer.instant("memo-hit", "dftask", parent=record.span)
                self.tracer.end(record.span, status="ok", memoized=True)
                record.future.set_result(value)
                return
        self._execute(record, args, kwargs, key)

    def _execute(self, record: _TaskRecord, args, kwargs, key) -> None:
        if record.future.cancelled():
            with self._lock:
                self.tasks_cancelled += 1
            self.tracer.end(record.span, status="cancelled")
            return
        if self._closed:
            self._fail(record, WorkflowError(
                f"kernel shut down while task {record.future.func_name!r} "
                f"awaited a retry"
            ))
            return
        record.future.tries += 1
        with record.lock:
            token = record.attempt_token
        run_span = self.tracer.begin("run", "run", parent=record.span,
                                     attempt=record.future.tries)
        if record.timeout_s is not None:
            record.watchdog = threading.Timer(
                record.timeout_s, self._attempt_timeout,
                args=(record, token, args, kwargs, key, run_span),
            )
            record.watchdog.daemon = True
            record.watchdog.start()
        exec_future = self.executor.submit(record.fn, *args, **kwargs)
        exec_future.add_done_callback(
            lambda f: self._exec_done(record, args, kwargs, key, f,
                                      run_span, token)
        )

    def _attempt_timeout(self, record: _TaskRecord, token: int,
                         args, kwargs, key, run_span) -> None:
        """Watchdog fired: abandon the attempt and invalidate its token
        so a late result can never be delivered or memoized."""
        with record.lock:
            if record.attempt_token != token or record.future.done():
                return
            record.attempt_token += 1
        with self._lock:
            self.tasks_timed_out += 1
        attempt = record.future.tries
        record.history.append(
            f"attempt {attempt} timed out after {record.timeout_s}s"
        )
        self.tracer.end(run_span, status="timeout",
                        timeout_s=record.timeout_s)
        if attempt <= record.retries:
            self._retry(record, args, kwargs, key)
        else:
            self._fail(record, WorkflowError(
                f"task {record.future.func_name!r} timed out on all "
                f"{attempt} attempts ({'; '.join(record.history)})"
            ))

    def _exec_done(self, record: _TaskRecord, args, kwargs, key,
                   exec_future: Future, run_span=None, token: int = 0) -> None:
        with record.lock:
            stale = record.attempt_token != token
            if not stale:
                # the attempt beat its watchdog; disarm it
                if record.watchdog is not None:
                    record.watchdog.cancel()
                    record.watchdog = None
        if stale:
            # a timed-out attempt finishing late: the watchdog already
            # retried (or failed) the task — drop this result entirely,
            # and in particular never memoize it
            return
        if record.future.cancelled():
            with self._lock:
                self.tasks_cancelled += 1
            self.tracer.end(run_span, status="cancelled")
            self.tracer.end(record.span, status="cancelled")
            return
        exc = exec_future.exception()
        if exc is None:
            self.tracer.end(run_span)
            value = exec_future.result()
            if self.memoizer is not None:
                self.memoizer.store(key, value)
            with self._lock:
                self.tasks_completed += 1
            self.tracer.end(record.span, tries=record.future.tries)
            try:
                record.future.set_result(value)
            except InvalidStateError:   # cancelled in the final window
                pass
        elif record.future.tries <= record.retries:
            self.tracer.end(run_span, status="failed", error=repr(exc))
            record.history.append(
                f"attempt {record.future.tries} failed: {exc!r}"
            )
            self._retry(record, args, kwargs, key)
        else:
            self.tracer.end(run_span, status="failed", error=repr(exc))
            record.history.append(
                f"attempt {record.future.tries} failed: {exc!r}"
            )
            self._fail(record, exc)

    def _retry(self, record: _TaskRecord, args, kwargs, key) -> None:
        """Re-execute after a failed or timed-out attempt, paced by the
        retry policy's backoff and the run-wide budget when configured."""
        delay = 0.0
        if self.retry_policy is not None:
            delay = self.retry_policy.delay_s(
                record.future.tries,
                key=f"{record.future.func_name}#{record.future.task_id}",
            )
        if self.retry_budget is not None and not self.retry_budget.acquire():
            delay = max(delay, self.retry_budget.cooldown_s)
        if delay > 0:
            self.tracer.instant("retry-backoff", "dftask",
                                parent=record.span, delay_s=delay)
            timer = threading.Timer(
                delay, self._execute, args=(record, args, kwargs, key)
            )
            timer.daemon = True
            timer.start()
        else:
            self._execute(record, args, kwargs, key)

    def _fail(self, record: _TaskRecord, exc: BaseException) -> None:
        with self._lock:
            self.tasks_failed += 1
        self.tracer.end(record.span, status="failed", error=repr(exc))
        try:
            record.future.set_exception(exc)
        except InvalidStateError:       # cancelled in the final window
            pass

    def map(self, fn, *iterables, retries: int | None = None) -> list[AppFuture]:
        """Submit ``fn`` over zipped iterables; returns all futures.

        The eager counterpart of ``executor.map``: futures come back
        immediately and may be passed onward as dependencies::

            parts = dfk.map(load, paths)
            total = dfk.submit(combine, parts)
        """
        return [
            self.submit(fn, *args, retries=retries)
            for args in zip(*iterables)
        ]

    # -- lifecycle -----------------------------------------------------------------
    def wait_all(self, futures, timeout: float | None = None) -> list:
        """Block for all futures; returns their results in order.
        Raises the first failure encountered."""
        return [f.result(timeout=timeout) for f in futures]

    @staticmethod
    def as_completed(futures, timeout: float | None = None):
        """Yield futures as they finish (thin wrapper over
        :func:`concurrent.futures.as_completed`, re-exported here so app
        code needs only the kernel)."""
        import concurrent.futures as _cf

        yield from _cf.as_completed(futures, timeout=timeout)

    def checkpoint(self) -> None:
        """Persist the memo table (no-op without a checkpoint path)."""
        if self.checkpoint_path is None:
            raise WorkflowError("kernel was created without checkpoint_path")
        save_checkpoint(self.checkpoint_path, self.memoizer.export())

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self.executor.shutdown(wait=wait)

    def __enter__(self) -> "DataFlowKernel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
