"""The real-execution dataflow kernel.

:class:`DataFlowKernel` runs Python callables with Parsl semantics:

- ``submit(fn, *args)`` returns an :class:`AppFuture` immediately,
- any :class:`~concurrent.futures.Future` among the arguments is an
  implicit dependency; the task launches when all resolve, with the
  future values substituted in place,
- failed dependencies fail dependents with :class:`TaskFailedError`,
- per-task retries, optional memoization ("app caching"), and
  checkpointing of the memo table across runs.

The kernel is executor-agnostic (threads or serial) and thread-safe:
dependency callbacks fire on worker threads.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.errors import TaskFailedError, WorkflowError
from repro.observe.span import Span
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.workflow.checkpoint import load_checkpoint, save_checkpoint
from repro.workflow.executors import ExecutorBase, ThreadExecutor
from repro.workflow.futures import AppFuture
from repro.workflow.memoization import Memoizer, make_key


@dataclass
class _TaskRecord:
    fn: object
    args: tuple
    kwargs: dict
    future: AppFuture
    retries: int
    pending: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)
    span: Span | None = None       # task-lifecycle span (tracing enabled)
    wait_span: Span | None = None  # submit -> dependencies-resolved


def _iter_futures(args: tuple, kwargs: dict):
    """Yield futures found at top level or one level inside list/tuple
    arguments (the containers app code actually passes)."""
    def scan(value):
        if isinstance(value, Future):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Future):
                    yield item

    for arg in args:
        yield from scan(arg)
    for value in kwargs.values():
        yield from scan(value)


def _substitute(value):
    if isinstance(value, Future):
        return value.result()
    if isinstance(value, list):
        return [_substitute(v) for v in value]
    if isinstance(value, tuple):
        return tuple(_substitute(v) for v in value)
    return value


class DataFlowKernel:
    """Submit-side engine tying futures, executors, and memoization."""

    def __init__(
        self,
        executor: ExecutorBase | None = None,
        *,
        memoize: bool = False,
        checkpoint_path: str | None = None,
        retries: int = 0,
        tracer: Tracer | None = None,
    ):
        if retries < 0:
            raise WorkflowError(f"retries must be >= 0, got {retries}")
        self.executor = executor if executor is not None else ThreadExecutor()
        if tracer is not None and not tracer.bound:
            tracer.bind(time.perf_counter)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.default_retries = retries
        self.memoizer = Memoizer() if (memoize or checkpoint_path) else None
        self.checkpoint_path = checkpoint_path
        if checkpoint_path:
            self.memoizer.load(load_checkpoint(checkpoint_path))
        self._lock = threading.Lock()
        self._task_counter = 0
        self._closed = False
        # counters
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.tasks_memoized = 0

    # -- submission ---------------------------------------------------------------
    def submit(self, fn, *args, retries: int | None = None, **kwargs) -> AppFuture:
        """Schedule ``fn(*args, **kwargs)``; returns its future now."""
        if self._closed:
            raise WorkflowError("submit on a shut-down DataFlowKernel")
        if not callable(fn):
            raise WorkflowError(f"submit needs a callable, got {type(fn).__name__}")
        with self._lock:
            task_id = self._task_counter
            self._task_counter += 1
            self.tasks_submitted += 1
        future = AppFuture(task_id, getattr(fn, "__name__", repr(fn)))
        record = _TaskRecord(
            fn=fn, args=args, kwargs=kwargs, future=future,
            retries=self.default_retries if retries is None else retries,
        )
        deps = list({id(f): f for f in _iter_futures(args, kwargs)}.values())
        record.pending = len(deps)
        if self.tracer.enabled:
            record.span = self.tracer.begin(
                f"task:{future.func_name}#{task_id}", "dftask",
                task_id=task_id, deps=len(deps),
            )
            record.wait_span = self.tracer.begin(
                "wait-deps", "queue", parent=record.span,
            )
        if not deps:
            self._launch(record)
        else:
            for dep in deps:
                dep.add_done_callback(lambda _f, r=record: self._dep_done(r))
        return future

    def app(self, fn=None, *, retries: int | None = None):
        """Decorator turning a function into a submitting app::

            @dfk.app()
            def double(x): return 2 * x
            future = double(21)
        """
        def wrap(func):
            def submitting(*args, **kwargs):
                return self.submit(func, *args, retries=retries, **kwargs)

            submitting.__name__ = getattr(func, "__name__", "app")
            submitting.__wrapped__ = func
            return submitting

        return wrap if fn is None else wrap(fn)

    # -- dependency handling --------------------------------------------------------
    def _dep_done(self, record: _TaskRecord) -> None:
        with record.lock:
            record.pending -= 1
            ready = record.pending == 0
        if ready:
            self._launch(record)

    def _launch(self, record: _TaskRecord) -> None:
        self.tracer.end(record.wait_span)
        record.wait_span = None
        try:
            args = tuple(_substitute(a) for a in record.args)
            kwargs = {k: _substitute(v) for k, v in record.kwargs.items()}
        except BaseException as exc:  # a dependency failed
            self._fail(record, TaskFailedError(record.future.func_name, exc))
            return

        key = None
        if self.memoizer is not None:
            key = make_key(record.future.func_name, args, kwargs)
            found, value = self.memoizer.lookup(key)
            if found:
                record.future.from_memo = True
                with self._lock:
                    self.tasks_memoized += 1
                    self.tasks_completed += 1
                self.tracer.instant("memo-hit", "dftask", parent=record.span)
                self.tracer.end(record.span, status="ok", memoized=True)
                record.future.set_result(value)
                return
        self._execute(record, args, kwargs, key)

    def _execute(self, record: _TaskRecord, args, kwargs, key) -> None:
        record.future.tries += 1
        run_span = self.tracer.begin("run", "run", parent=record.span,
                                     attempt=record.future.tries)
        exec_future = self.executor.submit(record.fn, *args, **kwargs)
        exec_future.add_done_callback(
            lambda f: self._exec_done(record, args, kwargs, key, f, run_span)
        )

    def _exec_done(self, record: _TaskRecord, args, kwargs, key,
                   exec_future: Future, run_span=None) -> None:
        exc = exec_future.exception()
        if exc is None:
            self.tracer.end(run_span)
            value = exec_future.result()
            if self.memoizer is not None:
                self.memoizer.store(key, value)
            with self._lock:
                self.tasks_completed += 1
            self.tracer.end(record.span, tries=record.future.tries)
            record.future.set_result(value)
        elif record.future.tries <= record.retries:
            self.tracer.end(run_span, status="failed", error=repr(exc))
            self._execute(record, args, kwargs, key)
        else:
            self.tracer.end(run_span, status="failed", error=repr(exc))
            self._fail(record, exc)

    def _fail(self, record: _TaskRecord, exc: BaseException) -> None:
        with self._lock:
            self.tasks_failed += 1
        self.tracer.end(record.span, status="failed", error=repr(exc))
        record.future.set_exception(exc)

    def map(self, fn, *iterables, retries: int | None = None) -> list[AppFuture]:
        """Submit ``fn`` over zipped iterables; returns all futures.

        The eager counterpart of ``executor.map``: futures come back
        immediately and may be passed onward as dependencies::

            parts = dfk.map(load, paths)
            total = dfk.submit(combine, parts)
        """
        return [
            self.submit(fn, *args, retries=retries)
            for args in zip(*iterables)
        ]

    # -- lifecycle -----------------------------------------------------------------
    def wait_all(self, futures, timeout: float | None = None) -> list:
        """Block for all futures; returns their results in order.
        Raises the first failure encountered."""
        return [f.result(timeout=timeout) for f in futures]

    @staticmethod
    def as_completed(futures, timeout: float | None = None):
        """Yield futures as they finish (thin wrapper over
        :func:`concurrent.futures.as_completed`, re-exported here so app
        code needs only the kernel)."""
        import concurrent.futures as _cf

        yield from _cf.as_completed(futures, timeout=timeout)

    def checkpoint(self) -> None:
        """Persist the memo table (no-op without a checkpoint path)."""
        if self.checkpoint_path is None:
            raise WorkflowError("kernel was created without checkpoint_path")
        save_checkpoint(self.checkpoint_path, self.memoizer.export())

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self.executor.shutdown(wait=wait)

    def __enter__(self) -> "DataFlowKernel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
