"""Execution backends for the real dataflow kernel.

Two are provided: a thread-pool executor for actual parallelism (tasks
here are typically I/O-bound or numpy-bound, both of which release the
GIL), and a serial in-caller executor whose determinism the test suite
leans on. Both expose the same two-method interface, so the kernel is
backend-agnostic.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor

from repro.errors import WorkflowError


class ExecutorBase:
    """Minimal executor interface: ``submit`` and ``shutdown``."""

    label = "base"

    def submit(self, fn, *args, **kwargs) -> Future:  # pragma: no cover
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:  # pragma: no cover
        raise NotImplementedError


class SerialExecutor(ExecutorBase):
    """Runs each task synchronously in the submitting thread.

    Deterministic and exception-transparent — the reference backend for
    tests and for debugging user workflows.
    """

    label = "serial"

    def __init__(self) -> None:
        self.tasks_run = 0
        self._closed = False

    def submit(self, fn, *args, **kwargs) -> Future:
        if self._closed:
            raise WorkflowError("submit on a shut-down executor")
        future: Future = Future()
        self.tasks_run += 1
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - forwarded to future
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True


class ThreadExecutor(ExecutorBase):
    """Thread-pool backend with simple counters."""

    label = "threads"

    def __init__(self, max_workers: int = 4):
        if max_workers < 1:
            raise WorkflowError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._lock = threading.Lock()
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self._closed = False

    def submit(self, fn, *args, **kwargs) -> Future:
        if self._closed:
            raise WorkflowError("submit on a shut-down executor")
        with self._lock:
            self.tasks_submitted += 1
        future = self._pool.submit(fn, *args, **kwargs)
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, _future: Future) -> None:
        with self._lock:
            self.tasks_completed += 1

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)
