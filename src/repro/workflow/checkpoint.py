"""Memoization-table checkpointing.

A checkpoint file makes workflow restarts cheap: completed task results
survive process death, so a re-run only executes the remaining frontier.
The format is a pickle of the memo table with a version header; loading
is tolerant of a missing file (fresh start) but strict about corruption.
"""

from __future__ import annotations

import os
import pickle
import tempfile

from repro.errors import WorkflowError

_FORMAT_VERSION = 1


def save_checkpoint(path: str, table: dict) -> None:
    """Atomically and durably write the memo table to ``path``.

    The temp file is fsynced before the rename so a crash right after
    :func:`os.replace` cannot leave ``path`` pointing at unwritten
    data; a failure at any step leaves the old checkpoint intact and no
    ``.ckpt.tmp`` litter behind.
    """
    payload = {"version": _FORMAT_VERSION, "results": table}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=4)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_checkpoint(path: str) -> dict:
    """Read a memo table; a missing file yields an empty table."""
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except Exception as exc:
        raise WorkflowError(f"corrupt checkpoint {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or "results" not in payload:
        raise WorkflowError(f"corrupt checkpoint {path!r}: bad structure")
    if payload.get("version") != _FORMAT_VERSION:
        raise WorkflowError(
            f"checkpoint {path!r} has version {payload.get('version')}, "
            f"expected {_FORMAT_VERSION}"
        )
    return payload["results"]
