"""Futures returned by the real-execution dataflow kernel."""

from __future__ import annotations

from concurrent.futures import Future


class AppFuture(Future):
    """A :class:`concurrent.futures.Future` with task identity attached.

    Passing an AppFuture as an argument to a later ``submit`` call makes
    the kernel wait for it and substitute its result — Parsl's implicit
    dataflow. ``task_id``/``func_name`` identify the producing task;
    ``tries`` counts execution attempts (for retry diagnostics);
    ``from_memo`` marks results served from the memoization table.

    ``cancel()`` (inherited) succeeds any time before completion: the
    kernel never marks futures RUNNING, so a cancelled task is simply
    never launched — or, if an attempt is already in flight, its result
    is discarded on arrival and never memoized. Dependents of a
    cancelled future fail with :class:`~repro.errors.TaskFailedError`.
    """

    def __init__(self, task_id: int, func_name: str):
        super().__init__()
        self.task_id = task_id
        self.func_name = func_name
        self.tries = 0
        self.from_memo = False

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        memo = " memo" if self.from_memo else ""
        return f"<AppFuture #{self.task_id} {self.func_name} {state}{memo}>"
