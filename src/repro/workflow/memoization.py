"""Result memoization keyed on function identity + argument digest.

Parsl calls this "app caching": re-submitting a pure function with
arguments already seen returns the stored result without executing.
Keys digest the pickled arguments with SHA-256; unpicklable arguments
make a task unmemoizable (executed every time) rather than an error.
"""

from __future__ import annotations

import hashlib
import pickle
import threading


def make_key(func_name: str, args: tuple, kwargs: dict) -> str | None:
    """Stable digest of an invocation, or None when unhashable."""
    try:
        payload = pickle.dumps((args, sorted(kwargs.items())), protocol=4)
    except Exception:
        return None
    return func_name + ":" + hashlib.sha256(payload).hexdigest()


class Memoizer:
    """Thread-safe result table."""

    def __init__(self) -> None:
        self._results: dict[str, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.lookups = 0

    def lookup(self, key: str | None):
        """Return ``(found, value)``; ``found`` is False for None keys."""
        if key is None:
            return False, None
        with self._lock:
            self.lookups += 1
            if key in self._results:
                self.hits += 1
                return True, self._results[key]
        return False, None

    def store(self, key: str | None, value) -> None:
        if key is None:
            return
        with self._lock:
            self._results[key] = value

    @property
    def size(self) -> int:
        return len(self._results)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def export(self) -> dict[str, object]:
        """Snapshot for checkpointing."""
        with self._lock:
            return dict(self._results)

    def load(self, table: dict[str, object]) -> None:
        with self._lock:
            self._results.update(table)

    def clear(self) -> None:
        with self._lock:
            self._results.clear()
