"""Task specifications for declarative (simulated) workflows."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.datafabric.dataset import Dataset
from repro.errors import WorkflowError
from repro.utils.validation import check_non_negative


class TaskState(Enum):
    """Lifecycle of a task inside a scheduler run."""

    PENDING = "pending"        # dependencies unmet
    READY = "ready"            # eligible, waiting for placement/slot
    STAGING = "staging"        # inputs moving to the chosen site
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass(frozen=True)
class TaskSpec:
    """One unit of schedulable work.

    Attributes
    ----------
    name:
        DAG-unique identifier.
    work:
        Compute demand in work units (seconds on a speed-1.0 slot).
    kind:
        Matched against site specializations (accelerators).
    inputs:
        Names of datasets this task reads. Each must be produced by
        another task in the DAG or exist in the replica catalog before
        the run (an *external input*).
    outputs:
        Datasets this task produces (registered at its execution site).
    after:
        Extra control-only dependencies (task names) beyond dataflow.
    deadline_s:
        Optional per-task latency SLO measured from workflow start;
        ``None`` means best-effort.
    pinned_site:
        Optional site name forcing placement (instrument-resident steps).
    """

    name: str
    work: float
    kind: str = "generic"
    inputs: tuple[str, ...] = ()
    outputs: tuple[Dataset, ...] = ()
    after: tuple[str, ...] = ()
    deadline_s: float | None = None
    pinned_site: str | None = None

    def __post_init__(self):
        if not self.name:
            raise WorkflowError("task name must be non-empty")
        check_non_negative("work", self.work)
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        object.__setattr__(self, "after", tuple(self.after))
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise WorkflowError(
                f"deadline_s must be positive or None, got {self.deadline_s}"
            )
        seen = set()
        for out in self.outputs:
            if out.name in seen:
                raise WorkflowError(
                    f"task {self.name!r} declares output {out.name!r} twice"
                )
            seen.add(out.name)
        # cached: output_names sits on DAG-construction hot paths
        object.__setattr__(
            self, "_output_names", tuple(d.name for d in self.outputs)
        )

    @property
    def output_names(self) -> tuple[str, ...]:
        return self._output_names

    @property
    def output_bytes(self) -> float:
        return sum(d.size_bytes for d in self.outputs)
