"""Workflow (de)serialization: DAGs as data.

Like topologies (:mod:`repro.continuum.serialize`), declarative
workflows round-trip through plain dicts/JSON so experiment inputs can
live in version control. Only :class:`TaskSpec` DAGs serialize — real
callables (the DataFlowKernel side) don't belong in config files.
"""

from __future__ import annotations

import json
import os

from repro.datafabric.dataset import Dataset
from repro.errors import WorkflowError
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskSpec

_FORMAT_VERSION = 1


def task_to_dict(task: TaskSpec) -> dict:
    data = {
        "name": task.name,
        "work": task.work,
        "kind": task.kind,
        "inputs": list(task.inputs),
        "outputs": [
            {"name": d.name, "size_bytes": d.size_bytes, "kind": d.kind}
            for d in task.outputs
        ],
        "after": list(task.after),
    }
    if task.deadline_s is not None:
        data["deadline_s"] = task.deadline_s
    if task.pinned_site is not None:
        data["pinned_site"] = task.pinned_site
    return data


def task_from_dict(data: dict) -> TaskSpec:
    try:
        return TaskSpec(
            name=data["name"],
            work=data["work"],
            kind=data.get("kind", "generic"),
            inputs=tuple(data.get("inputs", ())),
            outputs=tuple(
                Dataset(d["name"], d["size_bytes"], kind=d.get("kind", "data"))
                for d in data.get("outputs", ())
            ),
            after=tuple(data.get("after", ())),
            deadline_s=data.get("deadline_s"),
            pinned_site=data.get("pinned_site"),
        )
    except KeyError as exc:
        raise WorkflowError(f"task dict missing field {exc}") from None


def dag_to_dict(dag: WorkflowDAG) -> dict:
    """Plain-data snapshot (JSON-safe); insertion order preserved so the
    rebuild sees dependencies before dependents."""
    return {
        "version": _FORMAT_VERSION,
        "name": dag.name,
        "tasks": [task_to_dict(t) for t in dag.tasks],
    }


def dag_from_dict(data: dict) -> WorkflowDAG:
    """Rebuild a workflow from its dict form; validates structure."""
    if not isinstance(data, dict) or "tasks" not in data:
        raise WorkflowError("workflow dict missing 'tasks'")
    if data.get("version", _FORMAT_VERSION) != _FORMAT_VERSION:
        raise WorkflowError(
            f"unsupported workflow format version {data.get('version')}"
        )
    dag = WorkflowDAG(data.get("name", "workflow"))
    for task_data in data["tasks"]:
        dag.add_task(task_from_dict(task_data))
    dag.validate()
    return dag


def save_workload(path: str, dag: WorkflowDAG,
                  externals: list[Dataset] | None = None) -> None:
    """Write a complete workload: the DAG plus its external input
    dataset definitions (what the DAG consumes but does not produce).
    ``load_workload`` restores both halves, which is what a scheduler
    invocation needs."""
    data = dag_to_dict(dag)
    data["externals"] = [
        {"name": d.name, "size_bytes": d.size_bytes, "kind": d.kind}
        for d in (externals or [])
    ]
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1)
    os.replace(tmp, path)


def load_workload(path: str) -> tuple[WorkflowDAG, list[Dataset]]:
    """Read back ``(dag, externals)`` written by :func:`save_workload`.

    Validates that the stored externals cover every dataset the DAG
    consumes without producing.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise WorkflowError(f"no workload file at {path!r}") from None
    except json.JSONDecodeError as exc:
        raise WorkflowError(f"corrupt workload file {path!r}: {exc}") from exc
    dag = dag_from_dict(data)
    externals = [
        Dataset(d["name"], d["size_bytes"], kind=d.get("kind", "data"))
        for d in data.get("externals", [])
    ]
    missing = dag.external_inputs() - {d.name for d in externals}
    if missing:
        raise WorkflowError(
            f"workload file {path!r} lacks external dataset definitions "
            f"for {sorted(missing)}"
        )
    return dag, externals


def save_dag(dag: WorkflowDAG, path: str) -> None:
    """Write a workflow as JSON (atomically)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(dag_to_dict(dag), handle, indent=1)
    os.replace(tmp, path)


def load_dag(path: str) -> WorkflowDAG:
    """Read a workflow JSON file."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise WorkflowError(f"no workflow file at {path!r}") from None
    except json.JSONDecodeError as exc:
        raise WorkflowError(f"corrupt workflow file {path!r}: {exc}") from exc
    return dag_from_dict(data)
