"""Process-pool backend: real parallelism for CPU-bound tasks.

Python threads serialize CPU-bound pure-Python work on the GIL; a
process pool sidesteps it at the cost of pickling. Functions and
arguments must be picklable (defined at module top level) — the usual
`concurrent.futures.ProcessPoolExecutor` contract.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor

from repro.errors import WorkflowError
from repro.workflow.executors import ExecutorBase


class ProcessExecutor(ExecutorBase):
    """ProcessPoolExecutor-backed task execution."""

    label = "processes"

    def __init__(self, max_workers: int = 2):
        if max_workers < 1:
            raise WorkflowError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool = ProcessPoolExecutor(max_workers=max_workers)
        self._lock = threading.Lock()
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self._closed = False

    def submit(self, fn, *args, **kwargs) -> Future:
        if self._closed:
            raise WorkflowError("submit on a shut-down executor")
        with self._lock:
            self.tasks_submitted += 1
        future = self._pool.submit(fn, *args, **kwargs)
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, _future: Future) -> None:
        with self._lock:
            self.tasks_completed += 1

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)
