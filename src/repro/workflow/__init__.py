"""Dataflow workflow engine (Parsl-flavoured).

Two halves share one vocabulary:

- a **declarative DAG model** (:class:`TaskSpec`, :class:`WorkflowDAG`)
  consumed by the continuum scheduler for *simulated* execution, and
- a **real execution kernel** (:class:`DataFlowKernel` with
  :class:`AppFuture`, thread/serial executors, memoization and
  checkpointing) that runs actual Python callables with Parsl-style
  implicit dataflow: pass a future as an argument and the dependency
  edge is inferred.
"""

from repro.workflow.task import TaskSpec, TaskState
from repro.workflow.dag import WorkflowDAG
from repro.workflow.futures import AppFuture
from repro.workflow.executors import SerialExecutor, ThreadExecutor
from repro.workflow.process_executor import ProcessExecutor
from repro.workflow.memoization import Memoizer
from repro.workflow.checkpoint import load_checkpoint, save_checkpoint
from repro.workflow.serialize import (
    dag_from_dict,
    dag_to_dict,
    load_dag,
    load_workload,
    save_dag,
    save_workload,
)
from repro.workflow.dataflow import DataFlowKernel

__all__ = [
    "TaskSpec",
    "TaskState",
    "WorkflowDAG",
    "AppFuture",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "Memoizer",
    "load_checkpoint",
    "save_checkpoint",
    "dag_to_dict",
    "dag_from_dict",
    "save_dag",
    "load_dag",
    "save_workload",
    "load_workload",
    "DataFlowKernel",
]
