"""Workflow DAGs: dataflow-derived dependency graphs over task specs.

Dependencies are primarily *inferred from data*: if task B reads a dataset
task A produces, B depends on A. Control-only edges (``after=``) add
ordering without data. The DAG validates acyclicity and single-producer
discipline, and offers the graph analyses (topological order, levels,
critical path, bottom levels) the placement strategies need.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import networkx as nx

from repro.errors import WorkflowError
from repro.workflow.task import TaskSpec


class WorkflowDAG:
    """A named, validated collection of :class:`TaskSpec`."""

    def __init__(self, name: str = "workflow"):
        self.name = name
        self._tasks: dict[str, TaskSpec] = {}
        self._producer: dict[str, str] = {}   # dataset name -> task name
        self._consumers: dict[str, set[str]] = {}  # dataset -> task names
        self._graph = nx.DiGraph()

    # -- construction ------------------------------------------------------------
    def add_task(self, task: TaskSpec) -> TaskSpec:
        """Insert a task; dataflow edges to already-known producers and
        consumers are wired automatically. Cycles are rejected on the
        spot so the DAG is always valid."""
        if task.name in self._tasks:
            raise WorkflowError(f"duplicate task name {task.name!r}")
        for dep in task.after:
            if dep not in self._tasks:
                raise WorkflowError(
                    f"task {task.name!r} declares after={dep!r} which does "
                    f"not exist (add dependencies first)"
                )
        for out in task.output_names:
            owner = self._producer.get(out)
            if owner is not None:
                raise WorkflowError(
                    f"dataset {out!r} produced by both {owner!r} and "
                    f"{task.name!r}"
                )
        self._tasks[task.name] = task
        self._graph.add_node(task.name)
        for out in task.output_names:
            self._producer[out] = task.name
        for inp in task.inputs:
            self._consumers.setdefault(inp, set()).add(task.name)
        self._rewire(task)
        # wire consumers added before this producer existed (index lookup,
        # not a scan — DAG construction stays near-linear)
        for out in task.output_names:
            for consumer in self._consumers.get(out, ()):
                if consumer != task.name:
                    self._graph.add_edge(task.name, consumer)
        # A new node can only close a cycle if it has both incoming and
        # outgoing edges; skip the (linear-time) acyclicity check otherwise.
        if (
            self._graph.in_degree(task.name) > 0
            and self._graph.out_degree(task.name) > 0
            and not nx.is_directed_acyclic_graph(self._graph)
        ):
            # roll back before raising
            self._graph.remove_node(task.name)
            del self._tasks[task.name]
            for out in task.output_names:
                del self._producer[out]
            for inp in task.inputs:
                self._consumers[inp].discard(task.name)
            raise WorkflowError(f"adding task {task.name!r} creates a cycle")
        return task

    def _rewire(self, task: TaskSpec) -> None:
        for inp in task.inputs:
            producer = self._producer.get(inp)
            if producer is not None and producer != task.name:
                self._graph.add_edge(producer, task.name)
        for dep in task.after:
            self._graph.add_edge(dep, task.name)

    # -- lookup --------------------------------------------------------------------
    def task(self, name: str) -> TaskSpec:
        try:
            return self._tasks[name]
        except KeyError:
            raise WorkflowError(f"unknown task {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def task_names(self) -> list[str]:
        return list(self._tasks)

    @property
    def tasks(self) -> list[TaskSpec]:
        return list(self._tasks.values())

    def producer_of(self, dataset_name: str) -> str | None:
        """Task producing ``dataset_name``, or None if external."""
        return self._producer.get(dataset_name)

    def dependencies(self, name: str) -> list[str]:
        self.task(name)
        return sorted(self._graph.predecessors(name))

    def dependents(self, name: str) -> list[str]:
        self.task(name)
        return sorted(self._graph.successors(name))

    def external_inputs(self) -> set[str]:
        """Dataset names read by tasks but produced by none — these must
        exist in the replica catalog before the workflow starts."""
        consumed = {i for t in self._tasks.values() for i in t.inputs}
        return consumed - set(self._producer)

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    @property
    def total_work(self) -> float:
        return sum(t.work for t in self._tasks.values())

    @property
    def total_output_bytes(self) -> float:
        return sum(t.output_bytes for t in self._tasks.values())

    # -- analyses ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise unless non-empty (acyclicity is maintained on insert)."""
        if not self._tasks:
            raise WorkflowError(f"workflow {self.name!r} has no tasks")

    def topological_order(self) -> list[str]:
        """Deterministic topological order (ties broken by insertion)."""
        order_index = {name: i for i, name in enumerate(self._tasks)}
        return list(
            nx.lexicographical_topological_sort(
                self._graph, key=lambda n: order_index[n]
            )
        )

    def levels(self) -> list[list[str]]:
        """Tasks grouped by dependency depth (level 0 = sources)."""
        depth: dict[str, int] = {}
        for name in self.topological_order():
            preds = list(self._graph.predecessors(name))
            depth[name] = 1 + max((depth[p] for p in preds), default=-1)
        n_levels = max(depth.values(), default=-1) + 1
        grouped: list[list[str]] = [[] for _ in range(n_levels)]
        for name, d in depth.items():
            grouped[d].append(name)
        return grouped

    def critical_path(
        self, time_of: Callable[[TaskSpec], float] | None = None
    ) -> tuple[float, list[str]]:
        """Longest path through the DAG under ``time_of`` (defaults to
        ``task.work``). Returns ``(length, task names along the path)``.
        This is the classic lower bound on makespan with infinite
        resources and free communication."""
        self.validate()
        if time_of is None:
            time_of = lambda t: t.work  # noqa: E731 - tiny default
        finish: dict[str, float] = {}
        best_pred: dict[str, str | None] = {}
        for name in self.topological_order():
            task = self._tasks[name]
            preds = list(self._graph.predecessors(name))
            if preds:
                p = max(preds, key=lambda q: finish[q])
                start = finish[p]
                best_pred[name] = p
            else:
                start = 0.0
                best_pred[name] = None
            finish[name] = start + time_of(task)
        end = max(finish, key=lambda n: finish[n])
        path = [end]
        while best_pred[path[-1]] is not None:
            path.append(best_pred[path[-1]])
        path.reverse()
        return finish[end], path

    def bottom_levels(
        self, time_of: Callable[[TaskSpec], float] | None = None
    ) -> dict[str, float]:
        """HEFT-style upward ranks: longest remaining path from each task
        (inclusive) to any sink. Used to prioritize critical tasks."""
        if time_of is None:
            time_of = lambda t: t.work  # noqa: E731 - tiny default
        rank: dict[str, float] = {}
        for name in reversed(self.topological_order()):
            succs = list(self._graph.successors(name))
            tail = max((rank[s] for s in succs), default=0.0)
            rank[name] = time_of(self._tasks[name]) + tail
        return rank

    def subgraph_counts(self) -> dict[str, int]:
        """Quick shape summary: sources, sinks, max width."""
        sources = [n for n in self._graph if self._graph.in_degree(n) == 0]
        sinks = [n for n in self._graph if self._graph.out_degree(n) == 0]
        width = max((len(level) for level in self.levels()), default=0)
        return {"sources": len(sources), "sinks": len(sinks), "max_width": width}

    def extend(self, tasks: Iterable[TaskSpec]) -> "WorkflowDAG":
        """Bulk-add; returns self for chaining."""
        for task in tasks:
            self.add_task(task)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WorkflowDAG {self.name!r} tasks={len(self._tasks)} "
            f"edges={self.edge_count}>"
        )
