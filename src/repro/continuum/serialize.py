"""Topology (de)serialization: reproducible infrastructure configs.

A topology round-trips through a plain dict (and therefore JSON), so
experiment configurations can live in version control and be shared —
the "infrastructure as data" counterpart to seeded workloads.
"""

from __future__ import annotations

import json
import os

from repro.continuum.link import Link
from repro.continuum.power import PowerModel
from repro.continuum.pricing import PricingModel
from repro.continuum.site import Site
from repro.continuum.tiers import Tier
from repro.continuum.topology import Topology
from repro.errors import TopologyError

_FORMAT_VERSION = 1


def site_to_dict(site: Site) -> dict:
    return {
        "name": site.name,
        "tier": site.tier.name,
        "speed": site.speed,
        "slots": site.slots,
        "memory_bytes": site.memory_bytes,
        "power": {"idle_watts": site.power.idle_watts,
                  "busy_watts": site.power.busy_watts},
        "pricing": {"usd_per_core_hour": site.pricing.usd_per_core_hour,
                    "usd_per_gb_egress": site.pricing.usd_per_gb_egress},
        "location_km": list(site.location_km),
        "specializations": dict(site.specializations),
    }


def site_from_dict(data: dict) -> Site:
    try:
        return Site(
            name=data["name"],
            tier=Tier.parse(data["tier"]),
            speed=data.get("speed", 1.0),
            slots=data.get("slots", 1),
            memory_bytes=data.get("memory_bytes", 8e9),
            power=PowerModel(**data.get("power", {})),
            pricing=PricingModel(**data.get("pricing", {})),
            location_km=tuple(data.get("location_km", (0.0, 0.0))),
            specializations=dict(data.get("specializations", {})),
        )
    except KeyError as exc:
        raise TopologyError(f"site dict missing field {exc}") from None


def topology_to_dict(topology: Topology) -> dict:
    """Plain-data snapshot of a topology (JSON-safe)."""
    return {
        "version": _FORMAT_VERSION,
        "name": topology.name,
        "sites": [site_to_dict(s) for s in topology.sites],
        "links": [
            {"a": a, "b": b, "latency_s": link.latency_s,
             "bandwidth_Bps": link.bandwidth_Bps,
             "usd_per_gb": link.usd_per_gb}
            for a, b, link in topology.links()
        ],
    }


def topology_from_dict(data: dict) -> Topology:
    """Rebuild a topology; validates structure and connectivity."""
    if not isinstance(data, dict) or "sites" not in data:
        raise TopologyError("topology dict missing 'sites'")
    if data.get("version", _FORMAT_VERSION) != _FORMAT_VERSION:
        raise TopologyError(
            f"unsupported topology format version {data.get('version')}"
        )
    topo = Topology(data.get("name", "topology"))
    for site_data in data["sites"]:
        topo.add_site(site_from_dict(site_data))
    for link_data in data.get("links", []):
        try:
            topo.add_link(
                link_data["a"], link_data["b"],
                Link(latency_s=link_data["latency_s"],
                     bandwidth_Bps=link_data["bandwidth_Bps"],
                     usd_per_gb=link_data.get("usd_per_gb", 0.0)),
            )
        except KeyError as exc:
            raise TopologyError(f"link dict missing field {exc}") from None
    topo.validate()
    return topo


def save_topology(topology: Topology, path: str) -> None:
    """Write a topology as JSON (atomically)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(topology_to_dict(topology), handle, indent=1, sort_keys=True)
    os.replace(tmp, path)


def load_topology(path: str) -> Topology:
    """Read a topology JSON file."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise TopologyError(f"no topology file at {path!r}") from None
    except json.JSONDecodeError as exc:
        raise TopologyError(f"corrupt topology file {path!r}: {exc}") from exc
    return topology_from_dict(data)
