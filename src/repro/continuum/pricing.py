"""Per-site monetary cost model (cloud-style pricing)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class PricingModel:
    """Usage-based pricing for one site.

    - ``usd_per_core_hour`` — compute price per slot-hour (0 for owned
      edge hardware, >0 for cloud),
    - ``usd_per_gb_egress`` — network egress charge applied to bytes
      *leaving* the site (the classic cloud lock-in term that makes
      data gravity a monetary issue, not just a latency one).
    """

    usd_per_core_hour: float = 0.0
    usd_per_gb_egress: float = 0.0

    def __post_init__(self):
        check_non_negative("usd_per_core_hour", self.usd_per_core_hour)
        check_non_negative("usd_per_gb_egress", self.usd_per_gb_egress)

    def compute_cost(self, busy_seconds: float, slots: int = 1) -> float:
        """Dollars for ``busy_seconds`` of execution on ``slots`` slots."""
        return self.usd_per_core_hour * (float(busy_seconds) / 3600.0) * slots

    def egress_cost(self, bytes_out: float) -> float:
        """Dollars for ``bytes_out`` leaving the site."""
        return self.usd_per_gb_egress * (float(bytes_out) / 1e9)
