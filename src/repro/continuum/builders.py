"""Topology builders: common continuum shapes and named presets.

Every builder accepts ``bandwidth_scale`` and ``latency_scale`` multipliers
so experiments can sweep "what if the network were 10x faster/slower"
(the Gilder axis of E1/E5/E10) without reconstructing site inventories.
"""

from __future__ import annotations

import math

import numpy as np

from repro.continuum.link import Link, propagation_latency
from repro.continuum.power import PowerModel
from repro.continuum.pricing import PricingModel
from repro.continuum.site import Site
from repro.continuum.tiers import Tier
from repro.continuum.topology import Topology
from repro.errors import TopologyError
from repro.utils.rng import RngRegistry
from repro.utils.units import GB, Gbps, MILLISECOND, Mbps

# Default hardware profile per tier: (speed per slot, slots, memory,
# power model, pricing model). Speeds are in reference-core work units/s.
TIER_PROFILES: dict[Tier, dict] = {
    Tier.DEVICE: dict(
        speed=0.25, slots=1, memory_bytes=2 * GB,
        power=PowerModel(idle_watts=2.0, busy_watts=3.0),
        pricing=PricingModel(),
    ),
    Tier.EDGE: dict(
        speed=1.0, slots=4, memory_bytes=16 * GB,
        power=PowerModel(idle_watts=10.0, busy_watts=20.0),
        pricing=PricingModel(),
    ),
    Tier.FOG: dict(
        speed=2.0, slots=16, memory_bytes=64 * GB,
        power=PowerModel(idle_watts=50.0, busy_watts=100.0),
        pricing=PricingModel(),
    ),
    Tier.CLOUD: dict(
        speed=4.0, slots=64, memory_bytes=256 * GB,
        power=PowerModel(idle_watts=80.0, busy_watts=150.0),
        pricing=PricingModel(usd_per_core_hour=0.05, usd_per_gb_egress=0.09),
    ),
    Tier.HPC: dict(
        speed=8.0, slots=256, memory_bytes=1024 * GB,
        power=PowerModel(idle_watts=200.0, busy_watts=300.0),
        pricing=PricingModel(usd_per_core_hour=0.02),
    ),
}


def make_site(name: str, tier: Tier | str, **overrides) -> Site:
    """Create a site with tier-default hardware, overridable per field."""
    tier = Tier.parse(tier)
    profile = dict(TIER_PROFILES[tier])
    profile.update(overrides)
    return Site(name=name, tier=tier, **profile)


def _scaled_link(
    latency_s: float,
    bandwidth_Bps: float,
    usd_per_gb: float,
    latency_scale: float,
    bandwidth_scale: float,
) -> Link:
    return Link(
        latency_s=latency_s * latency_scale,
        bandwidth_Bps=bandwidth_Bps * bandwidth_scale,
        usd_per_gb=usd_per_gb,
    )


def edge_cloud_pair(
    *,
    edge_speed: float = 1.0,
    cloud_speed: float = 8.0,
    bandwidth_Bps: float = 1 * Gbps,
    latency_s: float = 25 * MILLISECOND,
    cloud_specializations: dict | None = None,
    egress_usd_per_gb: float = 0.0,
) -> Topology:
    """Two-site topology for the Gilder crossover experiments (E1, E10):
    one edge site holding the data, one faster (or specialized) remote."""
    topo = Topology("edge-cloud-pair")
    topo.add_site(make_site("edge", Tier.EDGE, speed=edge_speed))
    topo.add_site(
        make_site(
            "cloud",
            Tier.CLOUD,
            speed=cloud_speed,
            specializations=cloud_specializations or {},
            pricing=PricingModel(usd_per_core_hour=0.05,
                                 usd_per_gb_egress=egress_usd_per_gb),
        )
    )
    topo.add_link("edge", "cloud", Link(latency_s, bandwidth_Bps,
                                        usd_per_gb=egress_usd_per_gb))
    topo.validate()
    return topo


def linear_chain(
    n: int,
    *,
    tier: Tier | str = Tier.FOG,
    link_latency_s: float = 5 * MILLISECOND,
    link_bandwidth_Bps: float = 1 * Gbps,
    latency_scale: float = 1.0,
    bandwidth_scale: float = 1.0,
) -> Topology:
    """``n`` identical sites in a line; useful for multi-hop routing tests."""
    if n < 1:
        raise TopologyError(f"chain needs at least 1 site, got {n}")
    topo = Topology(f"chain-{n}")
    for i in range(n):
        topo.add_site(make_site(f"s{i}", tier))
    for i in range(n - 1):
        topo.add_link(
            f"s{i}", f"s{i+1}",
            _scaled_link(link_latency_s, link_bandwidth_Bps, 0.0,
                         latency_scale, bandwidth_scale),
        )
    topo.validate()
    return topo


def star_topology(
    n_leaves: int,
    *,
    hub_tier: Tier | str = Tier.CLOUD,
    leaf_tier: Tier | str = Tier.EDGE,
    link_latency_s: float = 20 * MILLISECOND,
    link_bandwidth_Bps: float = 1 * Gbps,
    latency_scale: float = 1.0,
    bandwidth_scale: float = 1.0,
) -> Topology:
    """A hub site with ``n_leaves`` peripheral sites — the classic
    cloud-centric deployment the continuum generalizes."""
    if n_leaves < 1:
        raise TopologyError(f"star needs at least 1 leaf, got {n_leaves}")
    topo = Topology(f"star-{n_leaves}")
    topo.add_site(make_site("hub", hub_tier))
    for i in range(n_leaves):
        topo.add_site(make_site(f"leaf{i}", leaf_tier))
        topo.add_link(
            "hub", f"leaf{i}",
            _scaled_link(link_latency_s, link_bandwidth_Bps, 0.0,
                         latency_scale, bandwidth_scale),
        )
    topo.validate()
    return topo


def hierarchical_continuum(
    *,
    n_devices: int = 8,
    n_edge: int = 4,
    n_fog: int = 2,
    n_cloud: int = 1,
    n_hpc: int = 1,
    latency_scale: float = 1.0,
    bandwidth_scale: float = 1.0,
    seed: int = 0,
) -> Topology:
    """The canonical device→edge→fog→cloud/HPC hierarchy.

    Children attach round-robin to parents of the next tier; fog sites
    link to every cloud and HPC site; clouds and HPC centers are meshed.
    Link classes follow typical deployments: wireless at the periphery,
    metro fibre mid-tier, fat science-DMZ pipes at the core.
    """
    for label, n in [("devices", n_devices), ("edge", n_edge), ("fog", n_fog)]:
        if n < 1:
            raise TopologyError(f"need at least one of each tier, {label}={n}")
    if n_cloud < 0 or n_hpc < 0 or n_cloud + n_hpc < 1:
        raise TopologyError("need at least one central (cloud or hpc) site")

    rng = RngRegistry(seed).stream("topology")
    topo = Topology("hierarchical-continuum")

    devices = [topo.add_site(make_site(f"dev{i}", Tier.DEVICE,
                                       location_km=(float(rng.uniform(0, 10)),
                                                    float(rng.uniform(0, 10)))))
               for i in range(n_devices)]
    edges = [topo.add_site(make_site(f"edge{i}", Tier.EDGE,
                                     location_km=(float(rng.uniform(0, 10)),
                                                  float(rng.uniform(0, 10)))))
             for i in range(n_edge)]
    fogs = [topo.add_site(make_site(f"fog{i}", Tier.FOG,
                                    location_km=(float(rng.uniform(0, 50)),
                                                 float(rng.uniform(0, 50)))))
            for i in range(n_fog)]
    clouds = [topo.add_site(make_site(f"cloud{i}", Tier.CLOUD,
                                      location_km=(1000.0 + 500.0 * i, 800.0)))
              for i in range(n_cloud)]
    hpcs = [topo.add_site(make_site(f"hpc{i}", Tier.HPC,
                                    location_km=(1500.0, -700.0 - 500.0 * i)))
            for i in range(n_hpc)]

    def lat(a: Site, b: Site, floor: float) -> float:
        return max(propagation_latency(a.distance_km(b)), floor)

    # device -> edge: wireless, ~1 ms floor, 100 Mbps
    for i, dev in enumerate(devices):
        edge = edges[i % n_edge]
        topo.add_link(dev.name, edge.name,
                      _scaled_link(lat(dev, edge, 1 * MILLISECOND), 100 * Mbps,
                                   0.0, latency_scale, bandwidth_scale))
    # edge -> fog: metro fibre, ~2 ms floor, 1 Gbps
    for i, edge in enumerate(edges):
        fog = fogs[i % n_fog]
        topo.add_link(edge.name, fog.name,
                      _scaled_link(lat(edge, fog, 2 * MILLISECOND), 1 * Gbps,
                                   0.0, latency_scale, bandwidth_scale))
    # fog -> cloud: WAN, 10 Gbps, cloud egress priced
    for fog in fogs:
        for cloud in clouds:
            topo.add_link(fog.name, cloud.name,
                          _scaled_link(lat(fog, cloud, 10 * MILLISECOND),
                                       10 * Gbps, 0.09,
                                       latency_scale, bandwidth_scale))
        # fog -> hpc: science DMZ, 100 Gbps
        for hpc in hpcs:
            topo.add_link(fog.name, hpc.name,
                          _scaled_link(lat(fog, hpc, 10 * MILLISECOND),
                                       100 * Gbps, 0.0,
                                       latency_scale, bandwidth_scale))
    # cloud <-> hpc mesh
    for cloud in clouds:
        for hpc in hpcs:
            topo.add_link(cloud.name, hpc.name,
                          _scaled_link(lat(cloud, hpc, 15 * MILLISECOND),
                                       10 * Gbps, 0.09,
                                       latency_scale, bandwidth_scale))
    topo.validate()
    return topo


def geo_random_continuum(
    n_sites: int = 20,
    *,
    area_km: float = 2000.0,
    connect_radius_km: float = 900.0,
    bandwidth_Bps: float = 1 * Gbps,
    latency_scale: float = 1.0,
    bandwidth_scale: float = 1.0,
    seed: int = 0,
) -> Topology:
    """Random geometric continuum: sites scattered in a square, linked
    when within ``connect_radius_km``; latency from fibre distance.
    Tiers are drawn with a periphery-heavy distribution. A spanning-tree
    pass guarantees connectivity."""
    if n_sites < 2:
        raise TopologyError(f"need at least 2 sites, got {n_sites}")
    rng = RngRegistry(seed).stream("geo-topology")
    topo = Topology(f"geo-{n_sites}")
    tiers = [Tier.DEVICE, Tier.EDGE, Tier.FOG, Tier.CLOUD, Tier.HPC]
    weights = np.array([0.35, 0.3, 0.2, 0.1, 0.05])
    sites: list[Site] = []
    for i in range(n_sites):
        tier = tiers[int(rng.choice(len(tiers), p=weights))]
        site = make_site(
            f"g{i}", tier,
            location_km=(float(rng.uniform(0, area_km)),
                         float(rng.uniform(0, area_km))),
        )
        sites.append(topo.add_site(site))

    def link_between(a: Site, b: Site) -> Link:
        latency = max(propagation_latency(a.distance_km(b)), 1 * MILLISECOND)
        return _scaled_link(latency, bandwidth_Bps, 0.0,
                            latency_scale, bandwidth_scale)

    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            if a.distance_km(b) <= connect_radius_km:
                topo.add_link(a.name, b.name, link_between(a, b))

    # Guarantee connectivity: chain each site to its nearest predecessor.
    import networkx as nx

    while not nx.is_connected(topo.graph):
        comps = list(nx.connected_components(topo.graph))
        a_names, b_names = comps[0], comps[1]
        best = None
        for an in a_names:
            for bn in b_names:
                d = topo.site(an).distance_km(topo.site(bn))
                if best is None or d < best[0]:
                    best = (d, an, bn)
        _, an, bn = best
        topo.add_link(an, bn, link_between(topo.site(an), topo.site(bn)))
    topo.validate()
    return topo


def smart_city(*, latency_scale: float = 1.0, bandwidth_scale: float = 1.0) -> Topology:
    """Preset: a small smart-city deployment — cameras (devices with no
    spare compute to speak of), street-cabinet edge boxes with inference
    accelerators, a metro fog datacenter, and a regional cloud."""
    topo = Topology("smart-city")
    for i in range(6):
        topo.add_site(make_site(f"camera{i}", Tier.DEVICE, speed=0.1,
                                location_km=(i * 0.5, 0.0)))
    for i in range(3):
        topo.add_site(make_site(
            f"edgebox{i}", Tier.EDGE,
            specializations={"dnn-inference": 8.0},
            location_km=(i * 1.0, 0.2),
        ))
    topo.add_site(make_site("metro-fog", Tier.FOG, location_km=(1.5, 15.0)))
    topo.add_site(make_site("region-cloud", Tier.CLOUD,
                            specializations={"dnn-inference": 16.0,
                                             "training": 30.0},
                            location_km=(400.0, 300.0)))
    for i in range(6):
        topo.add_link(f"camera{i}", f"edgebox{i // 2}",
                      _scaled_link(2 * MILLISECOND, 50 * Mbps, 0.0,
                                   latency_scale, bandwidth_scale))
    for i in range(3):
        topo.add_link(f"edgebox{i}", "metro-fog",
                      _scaled_link(3 * MILLISECOND, 1 * Gbps, 0.0,
                                   latency_scale, bandwidth_scale))
    topo.add_link("metro-fog", "region-cloud",
                  _scaled_link(12 * MILLISECOND, 10 * Gbps, 0.09,
                               latency_scale, bandwidth_scale))
    topo.validate()
    return topo


def science_grid(*, latency_scale: float = 1.0, bandwidth_scale: float = 1.0) -> Topology:
    """Preset: a light-source science campus — an instrument producing
    data, a beamline edge cluster, the campus fog, a national HPC center
    over a fat science network, and a commercial cloud."""
    topo = Topology("science-grid")
    topo.add_site(make_site("instrument", Tier.DEVICE, speed=0.5,
                            location_km=(0.0, 0.0)))
    topo.add_site(make_site("beamline-edge", Tier.EDGE, slots=8,
                            specializations={"reconstruction": 4.0},
                            location_km=(0.1, 0.0)))
    topo.add_site(make_site("campus-fog", Tier.FOG, location_km=(2.0, 1.0)))
    topo.add_site(make_site("hpc-center", Tier.HPC,
                            specializations={"reconstruction": 6.0,
                                             "simulation": 10.0},
                            location_km=(900.0, 200.0)))
    topo.add_site(make_site("cloud", Tier.CLOUD,
                            location_km=(600.0, -500.0)))
    topo.add_link("instrument", "beamline-edge",
                  _scaled_link(0.5 * MILLISECOND, 10 * Gbps, 0.0,
                               latency_scale, bandwidth_scale))
    topo.add_link("beamline-edge", "campus-fog",
                  _scaled_link(1 * MILLISECOND, 10 * Gbps, 0.0,
                               latency_scale, bandwidth_scale))
    topo.add_link("campus-fog", "hpc-center",
                  _scaled_link(8 * MILLISECOND, 100 * Gbps, 0.0,
                               latency_scale, bandwidth_scale))
    topo.add_link("campus-fog", "cloud",
                  _scaled_link(15 * MILLISECOND, 10 * Gbps, 0.09,
                               latency_scale, bandwidth_scale))
    topo.add_link("hpc-center", "cloud",
                  _scaled_link(20 * MILLISECOND, 10 * Gbps, 0.09,
                               latency_scale, bandwidth_scale))
    topo.validate()
    return topo
