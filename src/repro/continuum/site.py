"""Sites: the compute locations of the continuum."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.continuum.power import PowerModel
from repro.continuum.pricing import PricingModel
from repro.continuum.tiers import Tier
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Site:
    """One compute location.

    Attributes
    ----------
    name:
        Unique identifier within a topology.
    tier:
        Continuum tier (DEVICE..HPC).
    speed:
        Work units processed per second *per slot*. 1.0 is the reference
        core; a cloud VM might be 4.0 and an HPC node 16.0.
    slots:
        Number of parallel worker slots (cores/containers).
    memory_bytes:
        RAM available for staged datasets and running tasks.
    power / pricing:
        Energy and monetary models (see their modules).
    location_km:
        (x, y) position in kilometres; used by builders to derive
        speed-of-light propagation latency for links.
    specializations:
        Mapping from task ``kind`` to a speed multiplier — Gilder's
        "special-purpose appliances" (e.g. ``{"dnn-inference": 20.0}``
        for a GPU box). Unlisted kinds run at base speed.
    """

    name: str
    tier: Tier
    speed: float = 1.0
    slots: int = 1
    memory_bytes: float = 8e9
    power: PowerModel = field(default_factory=PowerModel)
    pricing: PricingModel = field(default_factory=PricingModel)
    location_km: tuple[float, float] = (0.0, 0.0)
    specializations: dict = field(default_factory=dict)

    def __post_init__(self):
        check_positive("speed", self.speed)
        check_positive("slots", self.slots)
        check_non_negative("memory_bytes", self.memory_bytes)
        object.__setattr__(self, "tier", Tier.parse(self.tier))
        object.__setattr__(self, "slots", int(self.slots))
        for kind, mult in self.specializations.items():
            check_positive(f"specializations[{kind!r}]", mult)

    def effective_speed(self, kind: str | None = None) -> float:
        """Speed for a task of ``kind`` on this site (work units/s/slot)."""
        if kind is None:
            return self.speed
        return self.speed * self.specializations.get(kind, 1.0)

    def service_time(self, work: float, kind: str | None = None) -> float:
        """Seconds one slot needs for ``work`` units of a ``kind`` task."""
        check_non_negative("work", work)
        return work / self.effective_speed(kind)

    def distance_km(self, other: "Site") -> float:
        """Euclidean distance to another site's location."""
        dx = self.location_km[0] - other.location_km[0]
        dy = self.location_km[1] - other.location_km[1]
        return (dx * dx + dy * dy) ** 0.5

    def __str__(self) -> str:
        return f"{self.name}({self.tier.name.lower()})"
