"""Network links between sites."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive

# Signal propagation speed in optical fibre: roughly 2/3 of c.
FIBER_KM_PER_SECOND = 200_000.0


def propagation_latency(distance_km: float) -> float:
    """One-way speed-of-light-in-fibre latency for ``distance_km``.

    This is the physical floor the keynote's "time and space merge"
    observation refers to: no engineering removes it.
    """
    check_non_negative("distance_km", distance_km)
    return distance_km / FIBER_KM_PER_SECOND


@dataclass(frozen=True)
class Link:
    """A bidirectional network edge.

    Attributes
    ----------
    latency_s:
        One-way propagation + forwarding latency in seconds.
    bandwidth_Bps:
        Capacity in bytes/second, shared max-min fairly among flows by
        the network simulator.
    usd_per_gb:
        Monetary transfer cost per GB crossing this link (usually only
        nonzero on cloud egress edges).
    """

    latency_s: float
    bandwidth_Bps: float
    usd_per_gb: float = 0.0

    def __post_init__(self):
        check_non_negative("latency_s", self.latency_s)
        check_positive("bandwidth_Bps", self.bandwidth_Bps)
        check_non_negative("usd_per_gb", self.usd_per_gb)

    def transfer_time(self, size_bytes: float) -> float:
        """Unloaded store-and-forward time for ``size_bytes``: latency
        plus serialization at full bandwidth. The flow simulator refines
        this under contention."""
        check_non_negative("size_bytes", size_bytes)
        return self.latency_s + size_bytes / self.bandwidth_Bps

    def transfer_cost(self, size_bytes: float) -> float:
        """Dollars to move ``size_bytes`` across this link."""
        return self.usd_per_gb * (float(size_bytes) / 1e9)
