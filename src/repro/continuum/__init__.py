"""Infrastructure model of the computing continuum.

The keynote's premise is that computing now spans a *continuum* of
resources — devices, edge boxes, fog/campus clusters, commercial clouds,
and HPC centers — joined by networks whose latency is bounded by the speed
of light and whose bandwidth keeps growing (Gilder). This package models
exactly those pieces:

- :class:`Tier` — the five resource classes,
- :class:`Site` — a named compute location (speed, worker slots, memory,
  energy & pricing models, geographic position, accelerator specializations),
- :class:`Link` — a network edge (propagation latency, bandwidth, $/byte),
- :class:`Topology` — a routed graph of sites and links,
- builders — common shapes (hierarchical continuum, star, presets),
- generators — the parameterized topology zoo (clique, chain, ring,
  grid, fat-tree, multi-region) and the duty-cycle churn layer.
"""

from repro.continuum.tiers import Tier
from repro.continuum.power import PowerModel
from repro.continuum.pricing import PricingModel
from repro.continuum.site import Site
from repro.continuum.link import Link
from repro.continuum.topology import PathInfo, Topology
from repro.continuum.serialize import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.continuum.builders import (
    edge_cloud_pair,
    geo_random_continuum,
    hierarchical_continuum,
    linear_chain,
    science_grid,
    smart_city,
    star_topology,
)
from repro.continuum.generators import (
    CHURN_INTENSITIES,
    TOPOLOGY_FAMILIES,
    ChainParams,
    CliqueParams,
    DutyCycleParams,
    FatTreeParams,
    GridParams,
    MultiRegionParams,
    RingParams,
    churn_preset,
    compile_duty_cycles,
    scaled_params,
    zoo_topology,
)

__all__ = [
    "Tier",
    "PowerModel",
    "PricingModel",
    "Site",
    "Link",
    "PathInfo",
    "Topology",
    "edge_cloud_pair",
    "geo_random_continuum",
    "hierarchical_continuum",
    "linear_chain",
    "science_grid",
    "smart_city",
    "star_topology",
    "load_topology",
    "save_topology",
    "topology_from_dict",
    "topology_to_dict",
    "CHURN_INTENSITIES",
    "TOPOLOGY_FAMILIES",
    "ChainParams",
    "CliqueParams",
    "DutyCycleParams",
    "FatTreeParams",
    "GridParams",
    "MultiRegionParams",
    "RingParams",
    "churn_preset",
    "compile_duty_cycles",
    "scaled_params",
    "zoo_topology",
]
