"""Routed topology of sites and links.

A :class:`Topology` is an undirected multigraph-free graph (one link per
site pair) with latency-weighted shortest-path routing. Effective path
properties follow the usual composition rules: latencies add, bandwidth is
the bottleneck minimum, monetary transfer costs add.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.continuum.link import Link
from repro.continuum.site import Site
from repro.continuum.tiers import Tier
from repro.errors import TopologyError


@dataclass(frozen=True)
class PathInfo:
    """Composed properties of a routed path between two sites."""

    src: str
    dst: str
    hops: tuple[str, ...]          # site names, inclusive of endpoints
    latency_s: float               # one-way, sum over links
    bandwidth_Bps: float           # bottleneck (min over links)
    usd_per_gb: float              # sum over links

    @property
    def hop_count(self) -> int:
        return max(len(self.hops) - 1, 0)

    def transfer_time(self, size_bytes: float) -> float:
        """Unloaded end-to-end time for ``size_bytes`` along this path."""
        if size_bytes < 0:
            raise TopologyError(f"negative transfer size {size_bytes}")
        if self.hop_count == 0:
            return 0.0
        return self.latency_s + size_bytes / self.bandwidth_Bps

    def transfer_cost(self, size_bytes: float) -> float:
        """Dollars to move ``size_bytes`` along this path."""
        return self.usd_per_gb * (float(size_bytes) / 1e9)


class Topology:
    """Mutable-at-build-time, routed continuum graph.

    Site and link mutation invalidates the routing cache, so topologies
    can be assembled incrementally and then queried cheaply.
    """

    def __init__(self, name: str = "topology"):
        self.name = name
        self.graph = nx.Graph()
        self._sites: dict[str, Site] = {}
        self._path_cache: dict[tuple[str, str], PathInfo] = {}
        # all-pairs path-property matrices (see path_rows); rebuilt lazily
        # after any mutation, rows filled on demand
        self._site_index: dict[str, int] | None = None
        self._lat_matrix: np.ndarray | None = None
        self._bw_matrix: np.ndarray | None = None
        self._usd_matrix: np.ndarray | None = None
        self._row_filled: np.ndarray | None = None
        self._routes_epoch = 0

    def _invalidate_routes(self) -> None:
        self._path_cache.clear()
        self._site_index = None
        self._lat_matrix = None
        self._bw_matrix = None
        self._usd_matrix = None
        self._row_filled = None
        self._routes_epoch += 1

    @property
    def routes_epoch(self) -> int:
        """Monotone counter bumped on every mutation — lets cost models
        cache :attr:`site_index`-derived arrays safely."""
        return self._routes_epoch

    # -- construction -----------------------------------------------------------
    def add_site(self, site: Site) -> Site:
        if site.name in self._sites:
            raise TopologyError(f"duplicate site name {site.name!r}")
        self._sites[site.name] = site
        self.graph.add_node(site.name)
        self._invalidate_routes()
        return site

    def add_link(self, a: str, b: str, link: Link) -> Link:
        for end in (a, b):
            if end not in self._sites:
                raise TopologyError(f"unknown site {end!r} in link")
        if a == b:
            raise TopologyError(f"self-link on {a!r}")
        if self.graph.has_edge(a, b):
            raise TopologyError(f"duplicate link {a!r}--{b!r}")
        self.graph.add_edge(a, b, link=link, weight=link.latency_s)
        self._invalidate_routes()
        return link

    # -- lookup -------------------------------------------------------------------
    @property
    def site_names(self) -> list[str]:
        return list(self._sites)

    @property
    def sites(self) -> list[Site]:
        return list(self._sites.values())

    def site(self, name: str) -> Site:
        try:
            return self._sites[name]
        except KeyError:
            raise TopologyError(f"unknown site {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    def __len__(self) -> int:
        return len(self._sites)

    def sites_by_tier(self, tier: Tier | str) -> list[Site]:
        tier = Tier.parse(tier)
        return [s for s in self._sites.values() if s.tier == tier]

    def link(self, a: str, b: str) -> Link:
        try:
            return self.graph.edges[a, b]["link"]
        except KeyError:
            raise TopologyError(f"no link {a!r}--{b!r}") from None

    def links(self) -> list[tuple[str, str, Link]]:
        return [(a, b, data["link"]) for a, b, data in self.graph.edges(data=True)]

    # -- routing ---------------------------------------------------------------------
    def path_info(self, src: str, dst: str) -> PathInfo:
        """Latency-optimal route from ``src`` to ``dst`` with composed
        properties. Identical endpoints give a zero-latency,
        infinite-bandwidth local path."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        for end in (src, dst):
            if end not in self._sites:
                raise TopologyError(f"unknown site {end!r}")
        if src == dst:
            info = PathInfo(src, dst, (src,), 0.0, math.inf, 0.0)
        else:
            try:
                hops = nx.shortest_path(self.graph, src, dst, weight="weight")
            except nx.NetworkXNoPath:
                raise TopologyError(f"no route between {src!r} and {dst!r}") from None
            info = self._compose(src, dst, hops)
        self._path_cache[key] = info
        return info

    def _compose(self, src: str, dst: str, hops: list[str]) -> PathInfo:
        """Fold per-link properties along ``hops`` into a PathInfo."""
        latency = 0.0
        bandwidth = math.inf
        cost = 0.0
        for a, b in zip(hops, hops[1:]):
            link = self.graph.edges[a, b]["link"]
            latency += link.latency_s
            bandwidth = min(bandwidth, link.bandwidth_Bps)
            cost += link.usd_per_gb
        return PathInfo(src, dst, tuple(hops), latency, bandwidth, cost)

    @property
    def site_index(self) -> dict[str, int]:
        """Stable site-name -> matrix-column mapping (declaration order).

        Valid until the next topology mutation; shared by
        :meth:`path_rows` and batch cost estimation.
        """
        if self._site_index is None:
            self._site_index = {n: i for i, n in enumerate(self._sites)}
        return self._site_index

    def path_rows(self, src: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-destination ``(latency_s, bandwidth_Bps, usd_per_gb)``
        arrays for routed paths out of ``src``, indexed by
        :attr:`site_index`.

        Rows are filled lazily (one single-source Dijkstra pass per
        source) and the composed :class:`PathInfo` records are written
        into the shared path cache — already-cached routes win — so the
        scalar and batch APIs always agree. Rows are invalidated
        together with the path cache on any mutation. The returned
        arrays are read-only views into the all-pairs matrices.
        Unreachable destinations appear as ``inf`` latency, **``0.0``
        bandwidth**, and ``inf`` dollars rather than raising, so every
        vectorized ranking naturally rejects them: time- and cost-
        minimizers see infinity, and bandwidth-greedy maximizers see
        zero (an ``inf`` there would make an unreachable site the most
        attractive destination on the continuum).
        """
        index = self.site_index
        try:
            row = index[src]
        except KeyError:
            raise TopologyError(f"unknown site {src!r}") from None
        if self._lat_matrix is None:
            n = len(index)
            self._lat_matrix = np.zeros((n, n))
            self._bw_matrix = np.zeros((n, n))
            self._usd_matrix = np.zeros((n, n))
            self._row_filled = np.zeros(n, dtype=bool)
            for m in (self._lat_matrix, self._bw_matrix, self._usd_matrix):
                m.flags.writeable = False
        if not self._row_filled[row]:
            lat, bw, usd = self._lat_matrix, self._bw_matrix, self._usd_matrix
            for m in (lat, bw, usd):
                m.flags.writeable = True
            # one single-source Dijkstra pass covers every destination;
            # composed PathInfos are shared with the scalar path cache so
            # the two APIs can never disagree on a route
            cache = self._path_cache
            _, sssp = nx.single_source_dijkstra(self.graph, src, weight="weight")
            for dst, col in index.items():
                info = cache.get((src, dst))
                if info is None:
                    if dst == src:
                        info = PathInfo(src, dst, (src,), 0.0, math.inf, 0.0)
                    else:
                        hops = sssp.get(dst)
                        if hops is None:  # unreachable: rank as infinitely far
                            lat[row, col] = math.inf
                            bw[row, col] = 0.0   # no route moves no bytes
                            usd[row, col] = math.inf
                            continue
                        info = self._compose(src, dst, hops)
                    cache[(src, dst)] = info
                lat[row, col] = info.latency_s
                bw[row, col] = info.bandwidth_Bps
                usd[row, col] = info.usd_per_gb
            for m in (lat, bw, usd):
                m.flags.writeable = False
            self._row_filled[row] = True
        return (
            self._lat_matrix[row],
            self._bw_matrix[row],
            self._usd_matrix[row],
        )

    def validate(self) -> None:
        """Raise :class:`TopologyError` unless the topology is non-empty
        and fully connected (every site can reach every other)."""
        if not self._sites:
            raise TopologyError("topology has no sites")
        if len(self._sites) > 1 and not nx.is_connected(self.graph):
            components = [sorted(c) for c in nx.connected_components(self.graph)]
            raise TopologyError(f"topology is disconnected: {components}")

    # -- summary ---------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable one-paragraph summary (used by examples)."""
        by_tier = {}
        for site in self._sites.values():
            by_tier.setdefault(site.tier.name, []).append(site.name)
        tiers = ", ".join(f"{len(v)} {k.lower()}" for k, v in sorted(by_tier.items()))
        return (
            f"{self.name}: {len(self._sites)} sites ({tiers}), "
            f"{self.graph.number_of_edges()} links"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Topology {self.name!r} sites={len(self._sites)}>"
