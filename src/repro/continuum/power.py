"""Per-site energy model.

A simple linear (idle + proportional) power model: the standard
first-order approximation used in datacenter energy studies. Energy is
what the E7 multi-objective experiments trade off against makespan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class PowerModel:
    """Linear power model for one worker slot.

    ``idle_watts`` is charged whenever the site is on; ``busy_watts``
    (additional) whenever a slot is executing. Both are per-slot so that
    site-level power scales with the number of slots.
    """

    idle_watts: float = 0.0
    busy_watts: float = 0.0

    def __post_init__(self):
        check_non_negative("idle_watts", self.idle_watts)
        check_non_negative("busy_watts", self.busy_watts)

    def energy_joules(self, busy_seconds: float, wall_seconds: float = 0.0) -> float:
        """Energy for ``busy_seconds`` of execution within ``wall_seconds``
        of powered-on time (wall defaults to busy time)."""
        wall = max(float(wall_seconds), float(busy_seconds))
        return self.idle_watts * wall + self.busy_watts * float(busy_seconds)

    def marginal_energy(self, busy_seconds: float) -> float:
        """Energy attributable to the work itself (ignores idle draw);
        used by schedulers comparing placements on an always-on fleet."""
        return self.busy_watts * float(busy_seconds)
