"""The five tiers of the computing continuum."""

from __future__ import annotations

from enum import Enum


class Tier(Enum):
    """Resource class of a site, ordered from the periphery inward.

    The integer values order tiers by "distance from the data source":
    DEVICE (sensors, instruments) < EDGE (on-prem gateways) < FOG
    (campus/metro clusters) < CLOUD (commercial datacenters) < HPC
    (supercomputing centers). Several placement strategies use this
    ordering (e.g. "push work as close to the data as it fits").
    """

    DEVICE = 0
    EDGE = 1
    FOG = 2
    CLOUD = 3
    HPC = 4

    @property
    def is_peripheral(self) -> bool:
        """True for tiers co-located with data sources."""
        return self in (Tier.DEVICE, Tier.EDGE)

    @property
    def is_central(self) -> bool:
        """True for big shared facilities (cloud, HPC)."""
        return self in (Tier.CLOUD, Tier.HPC)

    def __lt__(self, other: "Tier") -> bool:
        if not isinstance(other, Tier):
            return NotImplemented
        return self.value < other.value

    def __le__(self, other: "Tier") -> bool:
        if not isinstance(other, Tier):
            return NotImplemented
        return self.value <= other.value

    def __gt__(self, other: "Tier") -> bool:
        if not isinstance(other, Tier):
            return NotImplemented
        return self.value > other.value

    def __ge__(self, other: "Tier") -> bool:
        if not isinstance(other, Tier):
            return NotImplemented
        return self.value >= other.value

    @classmethod
    def parse(cls, value) -> "Tier":
        """Accept a Tier, its name (any case), or its integer value."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                raise ValueError(f"unknown tier name {value!r}") from None
        return cls(value)
