"""Topology zoo: seeded parameter dataclasses that emit wired topologies.

All experiments before E14 ran on one hand-built continuum; the zoo adds
the scenario-diversity axis. Each family is a frozen parameter dataclass
whose :meth:`build` emits a fully-wired, validated :class:`Topology` —
construct the same params, get the same graph, byte for byte. The style
follows the topology-as-matrix test harnesses of the journal-pdc
experiments (SNIPPETS.md snippet 2): families are *functions of
parameters*, latencies carry a small seeded per-link jitter so two
instances of one family are siblings rather than clones, and per-node
uptime schedules ride alongside as first-class data.

Families
--------
- ``clique``        — every site talks to every site directly,
- ``chain``         — a line; the worst diameter per site count,
- ``ring``          — a cycle; two disjoint routes between any pair,
- ``grid``          — a 2-D mesh with a cloud core and an edge rim,
- ``fat-tree``      — the k-ary datacenter classic (hosts, edge and
  aggregation layers, core), with capacity widening toward the core,
- ``multi-region``  — geo-distributed regions of tiered edge/fog/cloud
  sites meshed over priced WAN links (speed-of-light latency).

Every family guarantees at least one EDGE and one CLOUD site so tier
strategies and E1-style local-vs-offload probes are always well-posed.

Churn layer
-----------
:class:`DutyCycleParams` describes duty-cycled nodes (edge devices that
sleep and wake on seeded schedules); :func:`compile_duty_cycles` turns
it into an :class:`~repro.faults.outages.OutageSchedule` whose dark
windows the scheduler's existing fault machinery injects — churn
composes with brownouts, chaos campaigns, and resilience policies for
free. Per-site RNG streams make the compiled schedule independent of
site iteration order. :func:`churn_preset` names the intensities E14
sweeps (``none``/``low``/``medium``/``high``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from repro.continuum.builders import make_site, _scaled_link
from repro.continuum.link import Link, propagation_latency
from repro.continuum.tiers import Tier
from repro.continuum.topology import Topology
from repro.errors import ConfigurationError, TopologyError
from repro.faults.outages import OutageSchedule, SiteOutage
from repro.utils.rng import RngRegistry
from repro.utils.units import Gbps, MILLISECOND, Mbps
from repro.utils.validation import check_positive


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------

def _jittered(base_s: float, jitter: float, rng) -> float:
    """Latency with a seeded relative jitter in ``[1-jitter, 1+jitter)``.

    One uniform draw per link, in construction order, so a family
    instance is a pure function of its params.
    """
    if jitter == 0.0:
        return base_s
    return base_s * (1.0 + jitter * (2.0 * float(rng.uniform()) - 1.0))


def _line_tiers(n: int) -> list[Tier]:
    """Tier assignment for linear families (chain/ring/clique): the
    data end is EDGE, the far end is CLOUD, interior alternates
    EDGE/FOG — every family keeps both a periphery and a core."""
    tiers = []
    for i in range(n):
        if i == 0:
            tiers.append(Tier.EDGE)
        elif i == n - 1:
            tiers.append(Tier.CLOUD)
        else:
            tiers.append(Tier.FOG if i % 2 else Tier.EDGE)
    return tiers


class _ZooParams:
    """Mixin: every family dataclass builds through one seeded path."""

    family: str = ""

    def build(self) -> Topology:
        topo = self._build(RngRegistry(self.seed).stream(f"zoo:{self.family}"))
        topo.validate()
        return topo


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CliqueParams(_ZooParams):
    """Complete graph: the all-pairs-direct best case for routing."""

    family = "clique"
    n_sites: int = 6
    link_latency_s: float = 10 * MILLISECOND
    link_bandwidth_Bps: float = 100 * Mbps
    latency_jitter: float = 0.2
    latency_scale: float = 1.0
    bandwidth_scale: float = 1.0
    seed: int = 0

    def _build(self, rng) -> Topology:
        if self.n_sites < 2:
            raise TopologyError(f"clique needs >= 2 sites, got {self.n_sites}")
        topo = Topology(f"clique-{self.n_sites}")
        for i, tier in enumerate(_line_tiers(self.n_sites)):
            topo.add_site(make_site(f"c{i}", tier))
        for i in range(self.n_sites):
            for j in range(i + 1, self.n_sites):
                topo.add_link(
                    f"c{i}", f"c{j}",
                    _scaled_link(
                        _jittered(self.link_latency_s, self.latency_jitter,
                                  rng),
                        self.link_bandwidth_Bps, 0.0,
                        self.latency_scale, self.bandwidth_scale,
                    ),
                )
        return topo


@dataclass(frozen=True)
class ChainParams(_ZooParams):
    """A line of sites: maximum diameter, every route shares links."""

    family = "chain"
    n_sites: int = 6
    link_latency_s: float = 10 * MILLISECOND
    link_bandwidth_Bps: float = 100 * Mbps
    latency_jitter: float = 0.2
    latency_scale: float = 1.0
    bandwidth_scale: float = 1.0
    seed: int = 0

    def _build(self, rng) -> Topology:
        if self.n_sites < 2:
            raise TopologyError(f"chain needs >= 2 sites, got {self.n_sites}")
        topo = Topology(f"chain-{self.n_sites}")
        for i, tier in enumerate(_line_tiers(self.n_sites)):
            topo.add_site(make_site(f"c{i}", tier))
        for i in range(self.n_sites - 1):
            topo.add_link(
                f"c{i}", f"c{i + 1}",
                _scaled_link(
                    _jittered(self.link_latency_s, self.latency_jitter, rng),
                    self.link_bandwidth_Bps, 0.0,
                    self.latency_scale, self.bandwidth_scale,
                ),
            )
        return topo


@dataclass(frozen=True)
class RingParams(_ZooParams):
    """A cycle: every pair has two disjoint routes."""

    family = "ring"
    n_sites: int = 8
    link_latency_s: float = 10 * MILLISECOND
    link_bandwidth_Bps: float = 100 * Mbps
    latency_jitter: float = 0.2
    latency_scale: float = 1.0
    bandwidth_scale: float = 1.0
    seed: int = 0

    def _build(self, rng) -> Topology:
        if self.n_sites < 3:
            raise TopologyError(f"ring needs >= 3 sites, got {self.n_sites}")
        topo = Topology(f"ring-{self.n_sites}")
        for i, tier in enumerate(_line_tiers(self.n_sites)):
            topo.add_site(make_site(f"c{i}", tier))
        for i in range(self.n_sites):
            topo.add_link(
                f"c{i}", f"c{(i + 1) % self.n_sites}",
                _scaled_link(
                    _jittered(self.link_latency_s, self.latency_jitter, rng),
                    self.link_bandwidth_Bps, 0.0,
                    self.latency_scale, self.bandwidth_scale,
                ),
            )
        return topo


@dataclass(frozen=True)
class GridParams(_ZooParams):
    """2-D mesh. Tier follows Chebyshev distance from the center cell:
    the center is CLOUD, its neighbors FOG, the rim EDGE — a metro area
    with a datacenter downtown."""

    family = "grid"
    rows: int = 3
    cols: int = 3
    link_latency_s: float = 5 * MILLISECOND
    link_bandwidth_Bps: float = 100 * Mbps
    latency_jitter: float = 0.2
    latency_scale: float = 1.0
    bandwidth_scale: float = 1.0
    seed: int = 0

    def _build(self, rng) -> Topology:
        if self.rows < 2 or self.cols < 2:
            raise TopologyError(
                f"grid needs >= 2x2, got {self.rows}x{self.cols}"
            )
        topo = Topology(f"grid-{self.rows}x{self.cols}")
        ci, cj = (self.rows - 1) // 2, (self.cols - 1) // 2
        tiers = {}
        for i in range(self.rows):
            for j in range(self.cols):
                d = max(abs(i - ci), abs(j - cj))
                tiers[(i, j)] = (Tier.CLOUD if d == 0
                                 else Tier.FOG if d == 1 else Tier.EDGE)
        if not any(t == Tier.EDGE for t in tiers.values()):
            tiers[(self.rows - 1, self.cols - 1)] = Tier.EDGE  # tiny grids
        for i in range(self.rows):
            for j in range(self.cols):
                topo.add_site(make_site(f"g{i}-{j}", tiers[(i, j)]))
        for i in range(self.rows):
            for j in range(self.cols):
                for di, dj in ((0, 1), (1, 0)):
                    ni, nj = i + di, j + dj
                    if ni < self.rows and nj < self.cols:
                        topo.add_link(
                            f"g{i}-{j}", f"g{ni}-{nj}",
                            _scaled_link(
                                _jittered(self.link_latency_s,
                                          self.latency_jitter, rng),
                                self.link_bandwidth_Bps, 0.0,
                                self.latency_scale, self.bandwidth_scale,
                            ),
                        )
        return topo


@dataclass(frozen=True)
class FatTreeParams(_ZooParams):
    """k-ary fat-tree: ``(k/2)^2`` CLOUD cores, ``k`` pods of ``k/2``
    FOG aggregation and ``k/2`` EDGE leaf sites, each leaf serving
    ``k/2`` DEVICE hosts. Capacity widens by ``uplink_multiplier`` per
    layer toward the core (a continuum reading of the datacenter
    classic: peripheral access is thin, the spine is fat)."""

    family = "fat-tree"
    k: int = 4
    access_bandwidth_Bps: float = 100 * Mbps
    uplink_multiplier: float = 4.0
    link_latency_s: float = 2 * MILLISECOND
    latency_jitter: float = 0.2
    latency_scale: float = 1.0
    bandwidth_scale: float = 1.0
    seed: int = 0

    def _build(self, rng) -> Topology:
        if self.k < 2 or self.k % 2:
            raise TopologyError(f"fat-tree arity must be even >= 2, "
                                f"got {self.k}")
        check_positive("uplink_multiplier", self.uplink_multiplier)
        half = self.k // 2
        topo = Topology(f"fat-tree-{self.k}")
        cores = [topo.add_site(make_site(f"core{i}", Tier.CLOUD))
                 for i in range(half * half)]
        for p in range(self.k):
            for a in range(half):
                topo.add_site(make_site(f"p{p}-agg{a}", Tier.FOG))
            for e in range(half):
                topo.add_site(make_site(f"p{p}-edge{e}", Tier.EDGE))
                for h in range(half):
                    topo.add_site(make_site(f"p{p}-h{e}-{h}", Tier.DEVICE))

        def link(bandwidth: float) -> Link:
            return _scaled_link(
                _jittered(self.link_latency_s, self.latency_jitter, rng),
                bandwidth, 0.0, self.latency_scale, self.bandwidth_scale,
            )

        up = self.uplink_multiplier
        for p in range(self.k):
            for e in range(half):
                for h in range(half):    # host -> leaf: access capacity
                    topo.add_link(f"p{p}-h{e}-{h}", f"p{p}-edge{e}",
                                  link(self.access_bandwidth_Bps))
                for a in range(half):    # leaf -> aggregation
                    topo.add_link(f"p{p}-edge{e}", f"p{p}-agg{a}",
                                  link(self.access_bandwidth_Bps * up))
            for a in range(half):        # aggregation -> its core group
                for c in range(half):
                    topo.add_link(f"p{p}-agg{a}", cores[a * half + c].name,
                                  link(self.access_bandwidth_Bps * up * up))
        return topo


@dataclass(frozen=True)
class MultiRegionParams(_ZooParams):
    """Geo-distributed continuum: ``n_regions`` regions on a WAN circle,
    each a tiered pocket of DEVICE/EDGE/FOG sites around a regional
    CLOUD; clouds mesh over priced, speed-of-light WAN links. Site
    scatter within a region is seeded, so two seeds give sibling
    deployments with different local distances."""

    family = "multi-region"
    n_regions: int = 3
    devices_per_region: int = 2
    edges_per_region: int = 2
    fogs_per_region: int = 1
    region_radius_km: float = 50.0
    wan_radius_km: float = 2500.0
    access_bandwidth_Bps: float = 100 * Mbps
    metro_bandwidth_Bps: float = 1 * Gbps
    backbone_bandwidth_Bps: float = 10 * Gbps
    egress_usd_per_gb: float = 0.09
    latency_scale: float = 1.0
    bandwidth_scale: float = 1.0
    seed: int = 0

    def _build(self, rng) -> Topology:
        if self.n_regions < 1:
            raise TopologyError(f"need >= 1 region, got {self.n_regions}")
        if self.edges_per_region < 1:
            raise TopologyError("each region needs >= 1 edge site")
        topo = Topology(f"multi-region-{self.n_regions}")

        def scatter(cx: float, cy: float) -> tuple[float, float]:
            return (cx + float(rng.uniform(-self.region_radius_km,
                                           self.region_radius_km)),
                    cy + float(rng.uniform(-self.region_radius_km,
                                           self.region_radius_km)))

        def wire(a: str, b: str, bandwidth: float, floor_s: float,
                 usd: float = 0.0) -> None:
            dist = topo.site(a).distance_km(topo.site(b))
            topo.add_link(a, b, _scaled_link(
                max(propagation_latency(dist), floor_s), bandwidth, usd,
                self.latency_scale, self.bandwidth_scale,
            ))

        clouds = []
        for r in range(self.n_regions):
            angle = 2.0 * math.pi * r / self.n_regions
            cx = self.wan_radius_km * math.cos(angle)
            cy = self.wan_radius_km * math.sin(angle)
            cloud = topo.add_site(make_site(f"r{r}-cloud", Tier.CLOUD,
                                            location_km=(cx, cy)))
            clouds.append(cloud)
            fogs = [topo.add_site(make_site(f"r{r}-fog{f}", Tier.FOG,
                                            location_km=scatter(cx, cy)))
                    for f in range(self.fogs_per_region)]
            edges = [topo.add_site(make_site(f"r{r}-edge{e}", Tier.EDGE,
                                             location_km=scatter(cx, cy)))
                     for e in range(self.edges_per_region)]
            devices = [topo.add_site(make_site(f"r{r}-dev{d}", Tier.DEVICE,
                                               location_km=scatter(cx, cy)))
                       for d in range(self.devices_per_region)]
            # device -> nearest-by-index edge (wireless), edge -> fog
            # (metro fibre) or straight to the cloud when fog-less
            for d, dev in enumerate(devices):
                wire(dev.name, edges[d % len(edges)].name,
                     self.access_bandwidth_Bps, 1 * MILLISECOND)
            uplinks = fogs or [cloud]
            for e, edge in enumerate(edges):
                wire(edge.name, uplinks[e % len(uplinks)].name,
                     self.metro_bandwidth_Bps, 2 * MILLISECOND)
            for fog in fogs:
                wire(fog.name, cloud.name, self.backbone_bandwidth_Bps,
                     5 * MILLISECOND, usd=self.egress_usd_per_gb)
        for i, a in enumerate(clouds):   # WAN mesh between regions
            for b in clouds[i + 1:]:
                wire(a.name, b.name, self.backbone_bandwidth_Bps,
                     10 * MILLISECOND, usd=self.egress_usd_per_gb)
        return topo


TOPOLOGY_FAMILIES: dict[str, type] = {
    cls.family: cls
    for cls in (CliqueParams, ChainParams, RingParams, GridParams,
                FatTreeParams, MultiRegionParams)
}


def zoo_topology(family: str, **params) -> Topology:
    """Build one zoo topology by family name.

    ``params`` override the family dataclass defaults (``seed``,
    ``bandwidth_scale``, sizes, ...); unknown names raise.
    """
    cls = TOPOLOGY_FAMILIES.get(family)
    if cls is None:
        raise TopologyError(
            f"unknown topology family {family!r}; "
            f"known: {sorted(TOPOLOGY_FAMILIES)}"
        )
    known = {f.name for f in fields(cls)}
    unknown = set(params) - known
    if unknown:
        raise TopologyError(
            f"unknown {family!r} parameters {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    return cls(**params).build()


# ---------------------------------------------------------------------------
# Uptime / churn layer
# ---------------------------------------------------------------------------

CHURN_INTENSITIES = ("none", "low", "medium", "high")

_CHURN_PRESETS = {
    # (period_s, on_fraction): how often nodes cycle, and how much of
    # each cycle they are awake
    "low": (300.0, 0.90),
    "medium": (180.0, 0.75),
    "high": (90.0, 0.55),
}


@dataclass(frozen=True)
class DutyCycleParams:
    """Per-node duty-cycle churn: nodes of the chosen tiers sleep and
    wake on seeded schedules.

    Each affected node is awake for ``on_fraction`` of every
    ``period_s`` cycle and dark for the rest; a per-node seeded phase
    staggers the fleet, and ``jitter`` varies each individual on/off
    window so cycles drift apart rather than locking step. Only
    peripheral tiers churn by default — duty-cycling is a battery/power
    phenomenon of the periphery, and an always-on core guarantees the
    scheduler is never left with zero candidate sites.
    """

    period_s: float = 180.0
    on_fraction: float = 0.75
    jitter: float = 0.25
    horizon_s: float = 3600.0
    tiers: tuple[Tier, ...] = (Tier.DEVICE, Tier.EDGE)
    seed: int = 0

    def __post_init__(self):
        check_positive("period_s", self.period_s)
        check_positive("horizon_s", self.horizon_s)
        if not 0.0 < self.on_fraction <= 1.0:
            raise ConfigurationError(
                f"on_fraction must be in (0, 1], got {self.on_fraction}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        object.__setattr__(
            self, "tiers", tuple(Tier.parse(t) for t in self.tiers)
        )


def duty_cycle_windows(params: DutyCycleParams, rng) -> list[tuple[float, float]]:
    """One node's dark windows ``(start_s, duration_s)`` over the horizon.

    The node starts awake, first sleeps after a seeded phase plus one
    on-window, and alternates jittered on/off windows from there.
    """
    if params.on_fraction >= 1.0:
        return []
    on_base = params.on_fraction * params.period_s
    off_base = params.period_s - on_base

    def jittered(base: float) -> float:
        return base * (1.0 + params.jitter * (2.0 * float(rng.uniform()) - 1.0))

    windows = []
    t = float(rng.uniform(0.0, params.period_s))  # phase: staggers the fleet
    t += jittered(on_base)
    while t < params.horizon_s:
        duration = max(jittered(off_base), 1e-3)
        windows.append((t, duration))
        t += duration + jittered(on_base)
    return windows


def compile_duty_cycles(topology: Topology,
                        params: DutyCycleParams) -> OutageSchedule:
    """Compile duty cycles over ``topology`` into an ``OutageSchedule``.

    Dark windows become :class:`SiteOutage` events, so churn flows
    through the scheduler's existing outage machinery (interrupt,
    re-place, recover) and composes with brownouts, chaos campaigns,
    and resilience policies. Each node draws from its own named RNG
    stream (``churn:<site>``), making the schedule a pure function of
    ``(topology, params)`` — independent of site iteration order.
    """
    rngs = RngRegistry(params.seed)
    schedule = OutageSchedule()
    for site in topology.sites:
        if site.tier not in params.tiers:
            continue
        rng = rngs.stream(f"churn:{site.name}")
        for start, duration in duty_cycle_windows(params, rng):
            schedule.add(SiteOutage(site.name, start, duration))
    return schedule


def churn_preset(intensity: str, *, seed: int = 0,
                 horizon_s: float = 3600.0) -> DutyCycleParams | None:
    """The named churn levels E14 sweeps; ``"none"`` means no churn."""
    if intensity == "none":
        return None
    try:
        period_s, on_fraction = _CHURN_PRESETS[intensity]
    except KeyError:
        raise ConfigurationError(
            f"unknown churn intensity {intensity!r}; "
            f"known: {list(CHURN_INTENSITIES)}"
        ) from None
    return DutyCycleParams(period_s=period_s, on_fraction=on_fraction,
                           horizon_s=horizon_s, seed=seed)


def scaled_params(params, *, bandwidth_scale: float = 1.0,
                  latency_scale: float = 1.0):
    """A copy of any family params with network scales multiplied in —
    the Gilder axis ("what if the network were 10x faster?") for zoo
    families, used by E14's crossover probes."""
    return replace(
        params,
        bandwidth_scale=params.bandwidth_scale * bandwidth_scale,
        latency_scale=params.latency_scale * latency_scale,
    )
