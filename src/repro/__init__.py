"""continuum — a Parsl/funcX-style continuum-computing library.

Reproduction of the system vision in "Coding the Continuum" (Ian Foster,
IPDPS 2019 keynote): workflow scripting, federated function serving, and
managed data movement over a device-edge-fog-cloud-HPC continuum, plus
the placement machinery that answers "where should I compute?".

Top-level re-exports cover the most common entry points; subpackages:

- :mod:`repro.simcore`    — discrete-event kernel
- :mod:`repro.continuum`  — sites, links, topologies, presets
- :mod:`repro.netsim`     — flow-level network (max-min fair sharing)
- :mod:`repro.datafabric` — datasets, replicas, transfers, caches
- :mod:`repro.faas`       — endpoints, containers, batching, fabric
- :mod:`repro.workflow`   — DAG model + real dataflow execution
- :mod:`repro.core`       — cost models, strategies, the scheduler,
  and the analytic offload calculus
- :mod:`repro.workloads`  — synthetic science/edge workloads
- :mod:`repro.observe`    — span tracing, Chrome trace export,
  critical-path extraction, and the unified metrics layer
  (labeled counters/gauges/histograms + Prometheus/JSON exporters)
- :mod:`repro.bench`      — the E1..E10 evaluation suite
"""

from repro._version import __version__
from repro.continuum import (
    Link,
    Site,
    Tier,
    Topology,
    edge_cloud_pair,
    hierarchical_continuum,
    science_grid,
    smart_city,
)
from repro.core import (
    ContinuumScheduler,
    GreedyEFTStrategy,
    HEFTStrategy,
    offload_analysis,
)
from repro.datafabric import Dataset
from repro.observe import (
    MetricsRegistry,
    Tracer,
    critical_path,
    to_chrome_trace,
    to_prometheus,
    use_registry,
)
from repro.workflow import DataFlowKernel, TaskSpec, WorkflowDAG

__all__ = [
    "__version__",
    "Tier",
    "Site",
    "Link",
    "Topology",
    "edge_cloud_pair",
    "hierarchical_continuum",
    "science_grid",
    "smart_city",
    "ContinuumScheduler",
    "GreedyEFTStrategy",
    "HEFTStrategy",
    "offload_analysis",
    "Dataset",
    "TaskSpec",
    "WorkflowDAG",
    "DataFlowKernel",
    "Tracer",
    "critical_path",
    "to_chrome_trace",
    "MetricsRegistry",
    "use_registry",
    "to_prometheus",
]
