"""Chaos campaigns: layered, seeded failure schedules for one run.

A :class:`ChaosCampaign` composes every fault class the library models
into one reproducible plan:

- **site outages** — Poisson dark windows (compute lost, storage kept),
- **link brownouts** — Poisson bandwidth-degradation windows per link,
- **degraded-site windows** — intervals during which task attempts at a
  site fail transiently or straggle with elevated probability (a box
  that is *up* but sick: thermal throttling, a noisy neighbour, a
  flapping NIC),
- **transient task faults / stragglers** — background rates that apply
  everywhere, all the time,
- **corrupted transfers** — a per-attempt integrity-failure probability
  for the transfer service,
- **control-plane partitions** — splits among the federation's
  metadata-replication sites (see :mod:`repro.faults.partitions`);
  rendered only when :meth:`ChaosCampaign.build` is told how many
  control sites the run replicates across.

Determinism is the design center.  Scheduled events (outages,
brownouts, degraded windows) are drawn once from named RNG streams.
Task-level fates are *keyed*, not streamed: the verdict for
``(task, attempt, site)`` depends only on the campaign seed and that
key, so two runs under different recovery policies expose each task
attempt to the identical fate — the recovery-policy shootout (E13)
compares policies against the same adversary, not different dice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.continuum.topology import Topology
from repro.errors import ConfigurationError
from repro.faults.outages import (
    LinkBrownout,
    OutageSchedule,
    poisson_outages,
)
from repro.faults.partitions import (
    PARTITION_STYLES,
    PartitionSchedule,
    poisson_partitions,
)
from repro.utils.rng import RngRegistry, derive_seed
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)


@dataclass(frozen=True)
class TaskFate:
    """What chaos does to one execution attempt.

    ``slowdown`` multiplies the attempt's execution time (1.0 = none);
    ``fail_after_frac`` aborts the attempt after that fraction of its
    (possibly slowed) execution, surfacing as a transient task fault
    the scheduler must retry.
    """

    slowdown: float = 1.0
    fail_after_frac: float | None = None

    @property
    def benign(self) -> bool:
        return self.slowdown == 1.0 and self.fail_after_frac is None


@dataclass(frozen=True)
class TaskChaos:
    """Deterministic per-attempt fate injector.

    ``degraded`` maps site name to merged ``(start_s, end_s)`` windows
    during which the elevated probabilities apply; outside them the
    base rates do.  Fates are keyed on ``(task, attempt, site)`` — see
    the module docstring for why.
    """

    seed: int = 0
    base_fail_prob: float = 0.0
    base_straggler_prob: float = 0.0
    degraded_fail_prob: float = 0.0
    degraded_straggler_prob: float = 0.0
    straggler_factor: float = 4.0
    degraded: dict[str, tuple[tuple[float, float], ...]] = field(
        default_factory=dict
    )

    def __post_init__(self):
        check_probability("base_fail_prob", self.base_fail_prob)
        check_probability("base_straggler_prob", self.base_straggler_prob)
        check_probability("degraded_fail_prob", self.degraded_fail_prob)
        check_probability("degraded_straggler_prob",
                          self.degraded_straggler_prob)
        if self.straggler_factor < 1.0:
            raise ConfigurationError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )

    @property
    def empty(self) -> bool:
        """True when no attempt can ever be harmed."""
        degraded_active = bool(self.degraded) and (
            self.degraded_fail_prob > 0 or self.degraded_straggler_prob > 0
        )
        return (self.base_fail_prob == 0.0
                and self.base_straggler_prob == 0.0
                and not degraded_active)

    def is_degraded(self, site: str, now: float) -> bool:
        for start, end in self.degraded.get(site, ()):
            if start <= now < end:
                return True
        return False

    def fate(self, task: str, attempt: int, site: str, now: float) -> TaskFate:
        """The (reproducible) verdict for one execution attempt."""
        if self.is_degraded(site, now):
            fail_p = self.degraded_fail_prob
            straggle_p = self.degraded_straggler_prob
        else:
            fail_p = self.base_fail_prob
            straggle_p = self.base_straggler_prob
        if fail_p == 0.0 and straggle_p == 0.0:
            return TaskFate()
        rng = np.random.default_rng(
            derive_seed(self.seed, f"fate:{task}:{attempt}:{site}")
        )
        # fixed draw order keeps fates stable as probabilities vary
        u_fail, u_straggle, u_frac = rng.random(3)
        slowdown = self.straggler_factor if u_straggle < straggle_p else 1.0
        fail_after = (0.1 + 0.8 * u_frac) if u_fail < fail_p else None
        return TaskFate(slowdown=slowdown, fail_after_frac=fail_after)


def poisson_brownouts(
    topology: Topology,
    *,
    rate_per_link_per_s: float,
    horizon_s: float,
    mean_duration_s: float,
    factor: float,
    rngs: RngRegistry | None = None,
) -> list[LinkBrownout]:
    """Independent Poisson brownout processes per link.

    Each link degrades to ``factor`` of its bandwidth at exponential
    intervals with exponential durations; windows of one link never
    overlap by construction (next onset is drawn after the previous
    recovery).
    """
    check_positive("rate_per_link_per_s", rate_per_link_per_s)
    check_positive("horizon_s", horizon_s)
    check_positive("mean_duration_s", mean_duration_s)
    if not 0 < factor < 1:
        raise ConfigurationError(
            f"brownout factor must be in (0, 1), got {factor}"
        )
    registry = rngs or RngRegistry(0)
    events: list[LinkBrownout] = []
    for a, b, _link in topology.links():
        rng = registry.stream(f"brownouts:{a}--{b}")
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_per_link_per_s))
            if t >= horizon_s:
                break
            duration = max(float(rng.exponential(mean_duration_s)), 1e-3)
            events.append(LinkBrownout(a, b, t, duration, factor))
            t += duration
    return events


def _poisson_windows(rng, rate: float, horizon_s: float,
                     mean_duration_s: float) -> tuple[tuple[float, float], ...]:
    """Non-overlapping (start, end) windows of one Poisson process."""
    windows = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= horizon_s:
            break
        duration = max(float(rng.exponential(mean_duration_s)), 1e-3)
        windows.append((t, t + duration))
        t += duration
    return tuple(windows)


@dataclass
class CampaignPlan:
    """One campaign rendered against one topology — ready to run."""

    outages: OutageSchedule
    task_chaos: TaskChaos
    transfer_failure_prob: float = 0.0
    partitions: PartitionSchedule = field(default_factory=PartitionSchedule)

    @property
    def site_outage_count(self) -> int:
        return len(self.outages.site_outages)

    @property
    def brownout_count(self) -> int:
        return len(self.outages.link_brownouts)

    @property
    def degraded_window_count(self) -> int:
        return sum(len(w) for w in self.task_chaos.degraded.values())

    @property
    def partition_count(self) -> int:
        return len(self.partitions)


@dataclass(frozen=True)
class ChaosCampaign:
    """A seeded, composable chaos schedule generator.

    Every layer is optional (rate 0 disables it); :meth:`build` renders
    the campaign against a topology into a :class:`CampaignPlan`.  The
    same ``(campaign, topology, seed)`` triple always renders the same
    plan — rerunning an experiment re-creates the exact adversary.
    """

    seed: int = 0
    horizon_s: float = 2_000.0
    # site outages
    outage_rate_per_site_per_s: float = 0.0
    outage_mean_duration_s: float = 15.0
    # link brownouts
    brownout_rate_per_link_per_s: float = 0.0
    brownout_mean_duration_s: float = 20.0
    brownout_factor: float = 0.25
    # degraded-site windows (up but sick)
    degraded_rate_per_site_per_s: float = 0.0
    degraded_mean_duration_s: float = 40.0
    degraded_fail_prob: float = 0.85
    degraded_straggler_prob: float = 0.5
    # background task faults
    base_fail_prob: float = 0.0
    base_straggler_prob: float = 0.0
    straggler_factor: float = 4.0
    # corrupted transfers
    transfer_failure_prob: float = 0.0
    # control-plane partitions (rendered only when ``build`` is told
    # the control-site count — data-plane-only runs have no metadata
    # cluster to split)
    partition_rate_per_s: float = 0.0
    partition_mean_duration_s: float = 30.0
    partition_styles: tuple[str, ...] = PARTITION_STYLES

    def __post_init__(self):
        check_positive("horizon_s", self.horizon_s)
        check_non_negative("outage_rate_per_site_per_s",
                           self.outage_rate_per_site_per_s)
        check_non_negative("brownout_rate_per_link_per_s",
                           self.brownout_rate_per_link_per_s)
        check_non_negative("degraded_rate_per_site_per_s",
                           self.degraded_rate_per_site_per_s)
        check_probability("transfer_failure_prob", self.transfer_failure_prob)
        check_non_negative("partition_rate_per_s", self.partition_rate_per_s)
        for style in self.partition_styles:
            if style not in PARTITION_STYLES:
                raise ConfigurationError(
                    f"unknown partition style {style!r}; "
                    f"known: {PARTITION_STYLES}"
                )

    def build(self, topology: Topology,
              n_control_sites: int | None = None) -> CampaignPlan:
        """Render the campaign against ``topology`` (reproducibly).

        ``n_control_sites`` sizes the metadata cluster the partition
        layer splits; when omitted the partition layer stays empty
        (there is nothing to partition in a single-copy run)."""
        rngs = RngRegistry(self.seed)
        outages = OutageSchedule()
        if self.outage_rate_per_site_per_s > 0:
            outages = poisson_outages(
                topology,
                rate_per_site_per_s=self.outage_rate_per_site_per_s,
                horizon_s=self.horizon_s,
                mean_duration_s=self.outage_mean_duration_s,
                rngs=rngs,
            )
        if self.brownout_rate_per_link_per_s > 0:
            for brownout in poisson_brownouts(
                topology,
                rate_per_link_per_s=self.brownout_rate_per_link_per_s,
                horizon_s=self.horizon_s,
                mean_duration_s=self.brownout_mean_duration_s,
                factor=self.brownout_factor,
                rngs=rngs,
            ):
                outages.add(brownout)
        degraded: dict[str, tuple[tuple[float, float], ...]] = {}
        if self.degraded_rate_per_site_per_s > 0:
            for name in topology.site_names:
                windows = _poisson_windows(
                    rngs.stream(f"degraded:{name}"),
                    self.degraded_rate_per_site_per_s,
                    self.horizon_s,
                    self.degraded_mean_duration_s,
                )
                if windows:
                    degraded[name] = windows
        chaos = TaskChaos(
            seed=self.seed,
            base_fail_prob=self.base_fail_prob,
            base_straggler_prob=self.base_straggler_prob,
            degraded_fail_prob=self.degraded_fail_prob,
            degraded_straggler_prob=self.degraded_straggler_prob,
            straggler_factor=self.straggler_factor,
            degraded=degraded,
        )
        outages.validate_against(topology)
        partitions = PartitionSchedule()
        if self.partition_rate_per_s > 0 and n_control_sites is not None:
            partitions = poisson_partitions(
                n_control_sites,
                rate_per_s=self.partition_rate_per_s,
                horizon_s=self.horizon_s,
                mean_duration_s=self.partition_mean_duration_s,
                styles=self.partition_styles,
                rngs=rngs,
            )
        return CampaignPlan(
            outages=outages,
            task_chaos=chaos,
            transfer_failure_prob=self.transfer_failure_prob,
            partitions=partitions,
        )

    # -- presets ----------------------------------------------------------------
    @classmethod
    def preset(cls, intensity: str, *, seed: int = 0,
               horizon_s: float = 2_000.0) -> "ChaosCampaign":
        """Named escalation levels used by E13 and ``repro chaos``.

        ``low`` — occasional outages and mild degraded windows;
        ``medium`` — adds brownouts, stragglers, corrupted transfers;
        ``high`` — frequent outages, long sick windows, heavy tails.
        """
        presets = {
            "low": dict(
                outage_rate_per_site_per_s=1 / 800.0,
                degraded_rate_per_site_per_s=1 / 600.0,
                degraded_mean_duration_s=30.0,
                degraded_straggler_prob=0.3,
                base_straggler_prob=0.02,
            ),
            "medium": dict(
                outage_rate_per_site_per_s=1 / 400.0,
                brownout_rate_per_link_per_s=1 / 500.0,
                degraded_rate_per_site_per_s=1 / 250.0,
                degraded_mean_duration_s=50.0,
                degraded_straggler_prob=0.4,
                base_fail_prob=0.02,
                base_straggler_prob=0.04,
                transfer_failure_prob=0.02,
            ),
            "high": dict(
                outage_rate_per_site_per_s=1 / 500.0,
                outage_mean_duration_s=15.0,
                brownout_rate_per_link_per_s=1 / 250.0,
                brownout_factor=0.15,
                # long sick windows with a high duty cycle: the hazard
                # that dominates "high" is a box that stays up but
                # fails almost every attempt — the failure mode circuit
                # breakers exist for.  Windows are long relative to the
                # breaker reset timeout, so a breaker shields most of
                # each window while naive retry burns through it.
                degraded_rate_per_site_per_s=1 / 120.0,
                degraded_mean_duration_s=90.0,
                degraded_fail_prob=0.95,
                degraded_straggler_prob=0.5,
                base_fail_prob=0.03,
                base_straggler_prob=0.08,
                straggler_factor=8.0,
                transfer_failure_prob=0.05,
            ),
        }
        try:
            knobs = presets[intensity]
        except KeyError:
            raise ConfigurationError(
                f"unknown campaign intensity {intensity!r}; "
                f"known: {sorted(presets)}"
            ) from None
        return cls(seed=seed, horizon_s=horizon_s, **knobs)


CAMPAIGN_INTENSITIES = ("low", "medium", "high")
