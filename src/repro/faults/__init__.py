"""Failure injection: the continuum misbehaving on schedule.

Real continuum deployments lose edge boxes to power cycles, clouds to
zone incidents, and WAN links to congestion brownouts. This package
models those as *scheduled* events so experiments stay reproducible:

- :class:`SiteOutage` / :class:`OutageSchedule` — sites going dark for
  intervals; the continuum scheduler interrupts and re-places affected
  tasks (see ``ContinuumScheduler(failures=...)``),
- :class:`LinkBrownout` — a link's bandwidth degrading for an interval,
  applied live to the flow network,
- generators — Poisson outage processes over a topology's sites.
"""

from repro.faults.outages import (
    LinkBrownout,
    OutageSchedule,
    SiteOutage,
    poisson_outages,
)

__all__ = [
    "SiteOutage",
    "LinkBrownout",
    "OutageSchedule",
    "poisson_outages",
]
