"""Failure injection: the continuum misbehaving on schedule.

Real continuum deployments lose edge boxes to power cycles, clouds to
zone incidents, and WAN links to congestion brownouts. This package
models those as *scheduled* events so experiments stay reproducible:

- :class:`SiteOutage` / :class:`OutageSchedule` — sites going dark for
  intervals; the continuum scheduler interrupts and re-places affected
  tasks (see ``ContinuumScheduler(failures=...)``),
- :class:`LinkBrownout` — a link's bandwidth degrading for an interval,
  applied live to the flow network,
- generators — Poisson outage processes over a topology's sites,
- :mod:`repro.faults.partitions` — control-plane partitions: seeded
  splits among the federation's metadata-replication sites, healing
  into follower catch-up (see :mod:`repro.controlplane`),
- :mod:`repro.faults.campaign` — composable chaos campaigns layering
  outages, brownouts, degraded-site windows, transient task faults,
  stragglers, corrupted transfers, and control-plane partitions into
  one reproducible schedule (``python -m repro chaos`` runs one from
  the command line).
"""

from repro.faults.campaign import (
    CAMPAIGN_INTENSITIES,
    CampaignPlan,
    ChaosCampaign,
    TaskChaos,
    TaskFate,
    poisson_brownouts,
)
from repro.faults.outages import (
    LinkBrownout,
    OutageSchedule,
    SiteOutage,
    poisson_outages,
)
from repro.faults.partitions import (
    PARTITION_STYLES,
    PartitionSchedule,
    PartitionWindow,
    poisson_partitions,
)

__all__ = [
    "SiteOutage",
    "LinkBrownout",
    "OutageSchedule",
    "poisson_outages",
    "poisson_brownouts",
    "TaskFate",
    "TaskChaos",
    "ChaosCampaign",
    "CampaignPlan",
    "CAMPAIGN_INTENSITIES",
    "PARTITION_STYLES",
    "PartitionWindow",
    "PartitionSchedule",
    "poisson_partitions",
]
