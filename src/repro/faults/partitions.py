"""Network partitions of the federation *control plane*.

Site outages and brownouts hit the data plane — compute and links that
carry workload bytes. Partitions hit the metadata plane: the N control
sites replicating the catalog/registry log can lose contact with each
other while every data-plane link keeps flowing. A partition window
splits the control sites into blocks that cannot exchange messages;
healing removes the split and lets follower catch-up converge the logs.

Windows are seeded and non-overlapping (the next split is drawn after
the previous heal), so a partition campaign composes deterministically
with the outage/brownout/degraded stages of a
:class:`~repro.faults.campaign.ChaosCampaign`.

Styles
------
- ``leader`` — isolate whoever leads *at window start* (resolved live
  by the control plane, since leadership is dynamic),
- ``minority`` — isolate a seeded ``floor(n/2)``-node island (the
  largest split that can never commit),
- ``single`` — isolate one seeded non-specific node (a flapping WAN
  uplink at one federation site).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.utils.rng import RngRegistry
from repro.utils.validation import check_non_negative, check_positive

PARTITION_STYLES = ("leader", "minority", "single")


@dataclass(frozen=True)
class PartitionWindow:
    """One control-plane split on ``[start_s, end_s)``.

    ``island`` holds the isolated node ids for ``minority``/``single``
    styles; for ``leader`` it is empty and the control plane isolates
    the current leader when the window opens.
    """

    start_s: float
    end_s: float
    style: str = "minority"
    island: tuple[int, ...] = ()

    def __post_init__(self):
        check_non_negative("start_s", self.start_s)
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"partition end_s must exceed start_s, got "
                f"[{self.start_s}, {self.end_s})"
            )
        if self.style not in PARTITION_STYLES:
            raise ConfigurationError(
                f"unknown partition style {self.style!r}; "
                f"known: {PARTITION_STYLES}"
            )
        if self.style != "leader" and not self.island:
            raise ConfigurationError(
                f"{self.style!r} partition needs an explicit island"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class PartitionSchedule:
    """A reproducible sequence of control-plane splits for one run."""

    windows: list[PartitionWindow] = field(default_factory=list)

    def add(self, window: PartitionWindow) -> "PartitionSchedule":
        if not isinstance(window, PartitionWindow):
            raise ConfigurationError(f"not a partition window: {window!r}")
        self.windows.append(window)
        return self

    @property
    def empty(self) -> bool:
        return not self.windows

    def __len__(self) -> int:
        return len(self.windows)

    def validate_against(self, n_control_sites: int) -> None:
        """Every island member must be a valid control-site id."""
        if n_control_sites < 1:
            raise ConfigurationError(
                f"n_control_sites must be >= 1, got {n_control_sites}"
            )
        for window in self.windows:
            bad = [i for i in window.island
                   if not 0 <= i < n_control_sites]
            if bad:
                raise ConfigurationError(
                    f"partition island references unknown control sites "
                    f"{bad} (cluster has {n_control_sites})"
                )


def poisson_partitions(
    n_control_sites: int,
    *,
    rate_per_s: float,
    horizon_s: float,
    mean_duration_s: float,
    styles: tuple[str, ...] = PARTITION_STYLES,
    rngs: RngRegistry | None = None,
) -> PartitionSchedule:
    """A seeded Poisson process of non-overlapping partition windows.

    Onsets arrive at exponential intervals with exponential durations
    (the next onset is drawn after the previous heal, so windows never
    overlap — one split at a time is the interesting regime; nested
    splits of a 5-node cluster just make more minorities). The style of
    each window and its island membership come from the same
    ``"partitions"`` stream, so the whole schedule is a pure function of
    ``(seed, n_control_sites, knobs)``.
    """
    check_positive("rate_per_s", rate_per_s)
    check_positive("horizon_s", horizon_s)
    check_positive("mean_duration_s", mean_duration_s)
    if n_control_sites < 2:
        raise ConfigurationError(
            f"partitions need >= 2 control sites, got {n_control_sites}"
        )
    if not styles:
        raise ConfigurationError("poisson_partitions needs >= 1 style")
    for style in styles:
        if style not in PARTITION_STYLES:
            raise ConfigurationError(
                f"unknown partition style {style!r}; "
                f"known: {PARTITION_STYLES}"
            )
    rng = (rngs or RngRegistry(0)).stream("partitions")
    schedule = PartitionSchedule()
    minority = max(1, n_control_sites // 2)
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= horizon_s:
            break
        duration = max(float(rng.exponential(mean_duration_s)), 1e-3)
        style = styles[int(rng.integers(len(styles)))]
        if style == "leader":
            island = ()
        else:
            size = minority if style == "minority" else 1
            picks = rng.permutation(n_control_sites)[:size]
            island = tuple(sorted(int(i) for i in picks))
        schedule.add(PartitionWindow(t, t + duration, style, island))
        t += duration
    return schedule
