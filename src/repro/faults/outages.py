"""Outage schedules: site failures and link brownouts."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.continuum.topology import Topology
from repro.errors import ConfigurationError
from repro.utils.rng import RngRegistry
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class SiteOutage:
    """One site dark on ``[start_s, start_s + duration_s)``.

    Tasks staging or executing there when it begins are interrupted and
    re-placed by the scheduler; the site accepts no new work until it
    recovers.
    """

    site: str
    start_s: float
    duration_s: float

    def __post_init__(self):
        check_non_negative("start_s", self.start_s)
        check_positive("duration_s", self.duration_s)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class LinkBrownout:
    """A link's bandwidth multiplied by ``factor`` (< 1) for an interval."""

    a: str
    b: str
    start_s: float
    duration_s: float
    factor: float

    def __post_init__(self):
        check_non_negative("start_s", self.start_s)
        check_positive("duration_s", self.duration_s)
        if not 0 < self.factor < 1:
            raise ConfigurationError(
                f"brownout factor must be in (0, 1), got {self.factor}"
            )

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class OutageSchedule:
    """A reproducible set of failures to inject into one run."""

    site_outages: list[SiteOutage] = field(default_factory=list)
    link_brownouts: list[LinkBrownout] = field(default_factory=list)

    def add(self, event: SiteOutage | LinkBrownout) -> "OutageSchedule":
        if isinstance(event, SiteOutage):
            self.site_outages.append(event)
        elif isinstance(event, LinkBrownout):
            self.link_brownouts.append(event)
        else:
            raise ConfigurationError(f"unknown failure event {event!r}")
        return self

    @property
    def empty(self) -> bool:
        return not self.site_outages and not self.link_brownouts

    def outages_for(self, site: str) -> list[SiteOutage]:
        return sorted(
            (o for o in self.site_outages if o.site == site),
            key=lambda o: o.start_s,
        )

    def validate_against(self, topology: Topology) -> None:
        """Every referenced site/link must exist."""
        for outage in self.site_outages:
            topology.site(outage.site)
        for brownout in self.link_brownouts:
            topology.link(brownout.a, brownout.b)


def poisson_outages(
    topology: Topology,
    *,
    rate_per_site_per_s: float,
    horizon_s: float,
    mean_duration_s: float,
    sites: list[str] | None = None,
    rngs: RngRegistry | None = None,
) -> OutageSchedule:
    """Independent Poisson outage processes per site.

    Each chosen site fails at exponential intervals with exponential
    repair times — the textbook availability model. Overlapping outages
    of one site are merged by construction (next failure is drawn after
    the previous repair). Duplicate names in ``sites`` are collapsed to
    their first occurrence — a repeated name must not run a second,
    independent failure process whose outages overlap the first
    (first-seen order is kept so the RNG draw sequence, and therefore
    every schedule generated for the de-duplicated prefix, is unchanged).
    """
    check_positive("rate_per_site_per_s", rate_per_site_per_s)
    check_positive("horizon_s", horizon_s)
    check_positive("mean_duration_s", mean_duration_s)
    rng = (rngs or RngRegistry(0)).stream("outages")
    schedule = OutageSchedule()
    names = list(sites) if sites is not None else topology.site_names
    names = list(dict.fromkeys(names))
    for name in names:
        topology.site(name)
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_per_site_per_s))
            if t >= horizon_s:
                break
            duration = float(rng.exponential(mean_duration_s))
            duration = max(duration, 1e-3)
            schedule.add(SiteOutage(name, t, duration))
            t += duration
    return schedule
