"""Proactive replication: push hot data toward its consumers.

Caching (pull, per-site) reacts to each miss; a *replication service*
acts on access patterns: once a dataset proves hot, copies are pushed to
designated placement sites in the background, so future reads anywhere
near those sites start from a closer source. This is the Globus-style
"share to collection" / CDN-origin behaviour of the data fabric.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.datafabric.transfer import TransferService
from repro.errors import DataFabricError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ReplicationPolicy:
    """When and where to replicate.

    ``hot_after`` accesses of a dataset trigger replication to every
    site in ``targets`` that lacks a replica. ``max_inflight`` bounds
    concurrent background pushes so replication cannot starve foreground
    traffic of scheduling slots (bandwidth is still shared fairly).
    """

    targets: tuple[str, ...]
    hot_after: int = 3
    max_inflight: int = 4
    weight: float = 0.2   # background flows yield to foreground traffic

    def __post_init__(self):
        if not self.targets:
            raise DataFabricError("replication policy needs >= 1 target site")
        check_positive("hot_after", self.hot_after)
        check_positive("max_inflight", self.max_inflight)
        check_positive("weight", self.weight)


class ReplicationService:
    """Access-count-driven background replication."""

    def __init__(self, transfers: TransferService, policy: ReplicationPolicy):
        self.transfers = transfers
        self.policy = policy
        for target in policy.targets:
            if target not in transfers.topology:
                raise DataFabricError(f"unknown replication target {target!r}")
        self.sim = transfers.sim
        self._access_counts: dict[str, int] = defaultdict(int)
        self._queued: list[tuple[str, str]] = []   # (dataset, target)
        self._scheduled: set[tuple[str, str]] = set()
        self._inflight = 0
        # stats
        self.replications_started = 0
        self.replications_done = 0
        self.bytes_replicated = 0.0

    def record_access(self, dataset_name: str, site: str) -> None:
        """Note one read of ``dataset_name`` (any site); may trigger
        background pushes once the dataset crosses the hot threshold."""
        self.transfers.catalog.dataset(dataset_name)
        self._access_counts[dataset_name] += 1
        if self._access_counts[dataset_name] < self.policy.hot_after:
            return
        for target in self.policy.targets:
            key = (dataset_name, target)
            if key in self._scheduled:
                continue
            if self.transfers.catalog.has_replica(dataset_name, target):
                self._scheduled.add(key)  # already there: never reconsider
                continue
            self._scheduled.add(key)
            self._queued.append(key)
        self._pump()

    def access_count(self, dataset_name: str) -> int:
        return self._access_counts[dataset_name]

    @property
    def pending(self) -> int:
        return len(self._queued) + self._inflight

    def _pump(self) -> None:
        while self._queued and self._inflight < self.policy.max_inflight:
            dataset_name, target = self._queued.pop(0)
            self._inflight += 1
            self.replications_started += 1
            self.sim.process(
                self._replicate(dataset_name, target),
                name=f"replicate:{dataset_name}->{target}",
            )

    def _replicate(self, dataset_name: str, target: str):
        try:
            result = yield self.transfers.stage(dataset_name, target,
                                                weight=self.policy.weight)
        except DataFabricError:
            # push failed (integrity retries exhausted): allow a future
            # access to try again
            self._scheduled.discard((dataset_name, target))
        else:
            self.replications_done += 1
            self.bytes_replicated += result.bytes_moved
        self._inflight -= 1
        self._pump()
