"""Replica catalog: which datasets live where."""

from __future__ import annotations

from collections import defaultdict

from repro.continuum.topology import Topology
from repro.datafabric.dataset import Dataset, Replica
from repro.errors import DataFabricError


class ReplicaCatalog:
    """Authoritative mapping dataset -> {site: Replica}.

    The catalog is the source of truth for placement decisions: both the
    transfer service (pick a source) and data-gravity scheduling (pick a
    compute site near the bytes) query it.
    """

    def __init__(self) -> None:
        self._datasets: dict[str, Dataset] = {}
        self._replicas: dict[str, dict[str, Replica]] = defaultdict(dict)
        self._version = 0
        self._dataset_versions: dict[str, int] = defaultdict(int)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every replica change — lets cost
        models cache nearest-source lookups safely."""
        return self._version

    def dataset_version(self, name: str) -> int:
        """Per-dataset replica-change counter: finer-grained than
        :attr:`version`, so caches of one dataset's placement survive
        other datasets being staged around the continuum."""
        return self._dataset_versions[name]

    # -- datasets ---------------------------------------------------------------
    def register(self, dataset: Dataset) -> Dataset:
        """Register a dataset definition (idempotent if identical)."""
        existing = self._datasets.get(dataset.name)
        if existing is not None and existing != dataset:
            raise DataFabricError(
                f"dataset {dataset.name!r} already registered with different "
                f"definition"
            )
        self._datasets[dataset.name] = dataset
        return dataset

    def dataset(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise DataFabricError(f"unknown dataset {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    @property
    def dataset_names(self) -> list[str]:
        return list(self._datasets)

    # -- replicas -----------------------------------------------------------------
    def add_replica(self, name: str, site: str, time: float = 0.0) -> Replica:
        dataset = self.dataset(name)
        replica = Replica(dataset, site, created_at=time)
        self._replicas[name][site] = replica
        self._version += 1
        self._dataset_versions[name] += 1
        return replica

    def drop_replica(self, name: str, site: str) -> None:
        self.dataset(name)
        if self._replicas[name].pop(site, None) is None:
            raise DataFabricError(f"no replica of {name!r} at {site!r}")
        self._version += 1
        self._dataset_versions[name] += 1

    def locations(self, name: str) -> list[str]:
        """Sites currently holding a replica (may be empty)."""
        self.dataset(name)
        return list(self._replicas[name])

    def has_replica(self, name: str, site: str) -> bool:
        return site in self._replicas.get(name, {})

    def nearest_source(
        self, topology: Topology, name: str, to_site: str
    ) -> tuple[str, float]:
        """Replica site with the lowest unloaded transfer time to
        ``to_site``; returns ``(site, estimated_seconds)``.

        Raises :class:`DataFabricError` when the dataset has no replica.
        """
        dataset = self.dataset(name)
        sources = self.locations(name)
        if not sources:
            raise DataFabricError(f"dataset {name!r} has no replicas")
        best_site, best_time = None, None
        for src in sources:
            est = topology.path_info(src, to_site).transfer_time(dataset.size_bytes)
            if best_time is None or est < best_time:
                best_site, best_time = src, est
        return best_site, best_time

    def bytes_at(self, site: str) -> float:
        """Total dataset bytes replicated at ``site``."""
        return sum(
            reps[site].dataset.size_bytes
            for reps in self._replicas.values()
            if site in reps
        )

    def datasets_at(self, site: str) -> list[Dataset]:
        return [
            reps[site].dataset
            for reps in self._replicas.values()
            if site in reps
        ]
