"""Named datasets and their replicas."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class Dataset:
    """An immutable named blob of known size.

    Immutability matches the scientific-data model (Globus, light-source
    frames): new results are new datasets, never in-place updates, which
    is what makes replica caching sound.
    """

    name: str
    size_bytes: float
    kind: str = "data"
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self):
        check_non_negative("size_bytes", self.size_bytes)
        if not self.name:
            raise ValueError("dataset name must be non-empty")


@dataclass(frozen=True)
class Replica:
    """A copy of a dataset at a site, stamped with creation time."""

    dataset: Dataset
    site: str
    created_at: float = 0.0
