"""Cache-aware reads: the staging layer experiments exercise.

:class:`StagedReader` gives each site an optional cache and answers
``read(dataset, at_site)`` requests: cache hit -> free; miss -> stage the
bytes over the network (via :class:`TransferService`), then admit into the
cache. Because staged replicas are also registered in the catalog,
caching at a fog site shortens *later* transfers for its whole subtree —
the effect E6 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datafabric.cache import Cache
from repro.datafabric.transfer import TransferResult, TransferService
from repro.errors import DataFabricError
from repro.simcore.process import Signal


@dataclass(frozen=True)
class ReadResult:
    """Outcome of one staged read."""

    dataset: str
    site: str
    cache_hit: bool
    bytes_from_network: float
    latency_s: float


class StagedReader:
    """Per-site cached access to the data fabric."""

    def __init__(self, transfers: TransferService, replication=None):
        self.transfers = transfers
        self.sim = transfers.sim
        self._caches: dict[str, Cache] = {}
        self.replication = replication  # optional ReplicationService
        # stats
        self.reads = 0
        self.network_bytes = 0.0

    def attach_cache(self, site: str, cache: Cache) -> Cache:
        if site not in self.transfers.topology:
            raise DataFabricError(f"unknown site {site!r}")
        if site in self._caches:
            raise DataFabricError(f"site {site!r} already has a cache")
        self._caches[site] = cache
        return cache

    def cache_at(self, site: str) -> Cache | None:
        return self._caches.get(site)

    def emit_metrics(self, registry) -> None:
        """Re-emit read/transfer totals plus every attached cache's
        stats through a metrics registry (no-op when disabled)."""
        if not registry.enabled:
            return
        registry.counter("datafabric_reads_total",
                         "Staged reads issued").inc(self.reads)
        registry.counter("datafabric_network_bytes_total",
                         "Bytes staged over the network"
                         ).inc(self.network_bytes)
        for site in sorted(self._caches):
            self._caches[site].emit_metrics(registry, site=site)

    def read(self, dataset_name: str, at_site: str) -> Signal:
        """Make the dataset readable at ``at_site``; fires with
        :class:`ReadResult`."""
        self.reads += 1
        self.transfers.catalog.dataset(dataset_name)  # fail fast when unknown
        signal = self.sim.signal()
        self.sim.process(
            self._read_proc(dataset_name, at_site, signal),
            name=f"read:{dataset_name}@{at_site}",
        )
        return signal

    def _read_proc(self, name: str, site: str, signal: Signal):
        start = self.sim.now
        cache = self._caches.get(site)
        dataset = self.transfers.catalog.dataset(name)
        if self.replication is not None:
            self.replication.record_access(name, site)
        if cache is not None and cache.lookup(name):
            signal.trigger(
                ReadResult(name, site, cache_hit=True,
                           bytes_from_network=0.0, latency_s=0.0)
            )
            return
        # Miss (or uncached site): pull the bytes in.
        try:
            result: TransferResult = yield self.transfers.stage(name, site)
        except DataFabricError as exc:
            signal.fail(exc)
            return
        self.network_bytes += result.bytes_moved
        if cache is not None:
            evicted_before = cache.resident
            if cache.admit(dataset):
                # Evicted datasets are no longer guaranteed present at the
                # site; drop their catalog replicas so later placement
                # decisions don't count on them.
                for gone in set(evicted_before) - set(cache.resident):
                    if self.transfers.catalog.has_replica(gone, site):
                        self.transfers.catalog.drop_replica(gone, site)
        signal.trigger(
            ReadResult(
                name, site, cache_hit=False,
                bytes_from_network=result.bytes_moved,
                latency_s=self.sim.now - start,
            )
        )
