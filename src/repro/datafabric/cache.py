"""Byte-capacity caches with pluggable eviction policies.

Used at edge/fog sites to keep hot datasets close to where work runs.
E6 compares the policies on skewed streaming workloads.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum

from repro.datafabric.dataset import Dataset
from repro.errors import DataFabricError
from repro.utils.validation import check_positive


class EvictionPolicy(Enum):
    """Which resident dataset to evict when space is needed."""

    LRU = "lru"        # least recently used
    LFU = "lfu"        # least frequently used (ties: least recent)
    FIFO = "fifo"      # oldest admission
    LARGEST = "largest"  # biggest first (greedy space recovery)

    @classmethod
    def parse(cls, value) -> "EvictionPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise DataFabricError(f"unknown eviction policy {value!r}") from None


@dataclass
class _Entry:
    dataset: Dataset
    admitted_seq: int
    last_used_seq: int
    uses: int


class Cache:
    """A single site's dataset cache.

    ``lookup`` answers hit/miss (and refreshes recency); ``admit`` inserts
    a dataset, evicting per policy until it fits. Datasets larger than the
    whole cache are rejected by ``admit`` (returned as not-admitted) —
    streaming them through without caching is the caller's job.
    """

    def __init__(self, capacity_bytes: float, policy: EvictionPolicy | str = "lru"):
        self.capacity_bytes = check_positive("capacity_bytes", capacity_bytes)
        self.policy = EvictionPolicy.parse(policy)
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._seq = 0
        self.used_bytes = 0.0
        # stats
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_evicted = 0.0

    def _tick(self) -> int:
        self._seq += 1
        return self._seq

    def _recompute_used(self) -> None:
        """Re-derive ``used_bytes`` from the resident entries.

        Incremental ``+=``/``-=`` float accounting drifts over long
        admit/drop/evict histories and can leave a phantom residue that
        makes an exact-capacity admit try to evict from an empty cache.
        ``math.fsum`` is exactly rounded, so the figure depends only on
        what is resident — never on the mutation history.
        """
        self.used_bytes = math.fsum(
            e.dataset.size_bytes for e in self._entries.values()
        )

    def _would_overflow(self, incoming: float) -> bool:
        """Exact fit check for an incoming size.

        ``used_bytes + incoming`` rounds once more and can spuriously
        exceed an exact-capacity budget that the true sum fits; one
        ``fsum`` over residents plus the newcomer cannot.
        """
        prospective = math.fsum(
            [*(e.dataset.size_bytes for e in self._entries.values()),
             incoming]
        )
        return prospective > self.capacity_bytes

    # -- queries -----------------------------------------------------------------
    def lookup(self, name: str) -> bool:
        """True on hit (refreshes recency/frequency); False on miss."""
        entry = self._entries.get(name)
        if entry is None:
            self.misses += 1
            return False
        entry.last_used_seq = self._tick()
        entry.uses += 1
        self.hits += 1
        return True

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    @property
    def resident(self) -> list[str]:
        return list(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- mutation ------------------------------------------------------------------
    def admit(self, dataset: Dataset) -> bool:
        """Insert ``dataset``, evicting as needed. Returns False (and
        caches nothing) if the dataset alone exceeds capacity."""
        if dataset.name in self._entries:
            entry = self._entries[dataset.name]
            entry.last_used_seq = self._tick()
            entry.uses += 1
            return True
        if dataset.size_bytes > self.capacity_bytes:
            return False
        while self._would_overflow(dataset.size_bytes):
            self._evict_one()
        seq = self._tick()
        self._entries[dataset.name] = _Entry(dataset, seq, seq, 1)
        self._recompute_used()
        return True

    def drop(self, name: str) -> None:
        entry = self._entries.pop(name, None)
        if entry is None:
            raise DataFabricError(f"dataset {name!r} not in cache")
        self._recompute_used()

    def _evict_one(self) -> None:
        if not self._entries:
            raise DataFabricError("cache accounting error: nothing to evict")
        if self.policy is EvictionPolicy.LRU:
            victim = min(self._entries.values(), key=lambda e: e.last_used_seq)
        elif self.policy is EvictionPolicy.LFU:
            victim = min(
                self._entries.values(), key=lambda e: (e.uses, e.last_used_seq)
            )
        elif self.policy is EvictionPolicy.FIFO:
            victim = min(self._entries.values(), key=lambda e: e.admitted_seq)
        else:  # LARGEST
            victim = max(
                self._entries.values(),
                key=lambda e: (e.dataset.size_bytes, -e.last_used_seq),
            )
        del self._entries[victim.dataset.name]
        self._recompute_used()
        self.evictions += 1
        self.bytes_evicted += victim.dataset.size_bytes

    def emit_metrics(self, registry, *, site: str = "") -> None:
        """Re-emit this cache's stats through a metrics registry as
        site-labeled counters/gauges (no-op when disabled)."""
        if not registry.enabled:
            return
        labels = ("site", "policy")
        lv = {"site": site, "policy": self.policy.value}
        registry.counter("datafabric_cache_hits_total",
                         "Cache lookups served locally",
                         labels).labels(**lv).inc(self.hits)
        registry.counter("datafabric_cache_misses_total",
                         "Cache lookups that went to the network",
                         labels).labels(**lv).inc(self.misses)
        registry.counter("datafabric_cache_evictions_total",
                         "Entries evicted to make room",
                         labels).labels(**lv).inc(self.evictions)
        registry.counter("datafabric_cache_evicted_bytes_total",
                         "Bytes evicted to make room",
                         labels).labels(**lv).inc(self.bytes_evicted)
        registry.gauge("datafabric_cache_used_bytes",
                       "Resident bytes at emission time",
                       labels).labels(**lv).set(self.used_bytes)
        registry.gauge("datafabric_cache_hit_rate",
                       "Lifetime hit rate at emission time",
                       labels).labels(**lv).set(self.hit_rate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cache {self.policy.value} {self.used_bytes:.3g}/"
            f"{self.capacity_bytes:.3g}B items={len(self._entries)}>"
        )
