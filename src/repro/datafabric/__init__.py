"""Data fabric: datasets, replica catalog, managed transfer, caching.

The keynote's data-movement substrate is Globus: named datasets with
replicas at multiple sites, moved by a managed service that retries on
failure and verifies integrity. This package reproduces those semantics
on top of the flow-level network simulator, plus the site caches and
staging policies the edge experiments (E6) evaluate.
"""

from repro.datafabric.dataset import Dataset, Replica
from repro.datafabric.catalog import ReplicaCatalog
from repro.datafabric.transfer import TransferService, TransferResult
from repro.datafabric.cache import Cache, EvictionPolicy
from repro.datafabric.replication import ReplicationPolicy, ReplicationService
from repro.datafabric.staging import StagedReader

__all__ = [
    "Dataset",
    "Replica",
    "ReplicaCatalog",
    "TransferService",
    "TransferResult",
    "Cache",
    "EvictionPolicy",
    "ReplicationPolicy",
    "ReplicationService",
    "StagedReader",
]
