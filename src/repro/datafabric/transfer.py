"""Managed transfers: retries, integrity, in-flight deduplication.

Globus semantics: a *stage* request makes a dataset present at a site.
The service picks the best replica source, drives the flow network,
re-tries integrity failures with a fresh attempt, registers the new
replica on success, and coalesces concurrent requests for the same
(dataset, destination) pair onto one wire transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.continuum.topology import Topology
from repro.datafabric.catalog import ReplicaCatalog
from repro.errors import DataFabricError
from repro.netsim.network import FlowNetwork
from repro.simcore.process import Signal, Timeout
from repro.simcore.simulation import Simulator
from repro.utils.rng import RngRegistry
from repro.utils.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class TransferResult:
    """Outcome of a completed stage request."""

    dataset: str
    src: str | None       # None when already present at the destination
    dst: str
    bytes_moved: float    # includes retried bytes
    attempts: int
    started: float
    finished: float

    @property
    def duration(self) -> float:
        return self.finished - self.started

    @property
    def was_local(self) -> bool:
        return self.src is None


class TransferService:
    """Reliable staging of datasets onto sites.

    Parameters
    ----------
    failure_prob:
        Per-attempt probability that a wire transfer fails its integrity
        check and must be retried (drawn from the ``"transfer-faults"``
        RNG stream, so runs are reproducible).
    max_attempts:
        Attempts before :class:`DataFabricError` is raised to the caller.
    """

    def __init__(
        self,
        sim: Simulator,
        network: FlowNetwork,
        catalog: ReplicaCatalog,
        *,
        failure_prob: float = 0.0,
        max_attempts: int = 3,
        rngs: RngRegistry | None = None,
        view=None,
    ):
        self.sim = sim
        self.network = network
        self.catalog = catalog
        # optional replicated-catalog view: when present, transfer
        # *sources* are resolved from the (possibly stale) control-plane
        # view instead of the authoritative catalog — destination
        # residency stays authoritative (a site knows its own disk)
        self.view = view
        self.topology: Topology = network.topology
        self.failure_prob = check_probability("failure_prob", failure_prob)
        if max_attempts < 1:
            raise DataFabricError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = int(max_attempts)
        self._rng = (rngs or RngRegistry(0)).stream("transfer-faults")
        self._inflight: dict[tuple[str, str], Signal] = {}
        # accounting
        self.total_requests = 0
        self.total_retries = 0
        self.total_bytes_wire = 0.0

    def stage(self, dataset_name: str, to_site: str,
              *, weight: float = 1.0) -> Signal:
        """Make ``dataset_name`` present at ``to_site``.

        Returns a signal firing with a :class:`TransferResult` (or
        failing with :class:`DataFabricError` after exhausted retries).
        Concurrent stages of the same dataset to the same site share one
        transfer (the first requester's ``weight`` applies). Background
        staging should pass ``weight < 1`` so it yields to foreground
        flows under weighted fairness.
        """
        self.total_requests += 1
        dataset = self.catalog.dataset(dataset_name)
        if to_site not in self.topology:
            raise DataFabricError(f"unknown destination site {to_site!r}")

        key = (dataset_name, to_site)
        existing = self._inflight.get(key)
        if existing is not None:
            return existing

        signal = self.sim.signal()
        if self.catalog.has_replica(dataset_name, to_site):
            result = TransferResult(
                dataset=dataset_name, src=None, dst=to_site,
                bytes_moved=0.0, attempts=0,
                started=self.sim.now, finished=self.sim.now,
            )
            self.sim.schedule(0.0, signal.trigger, result)
            return signal

        self._inflight[key] = signal
        self.sim.process(
            self._stage_proc(dataset.name, to_site, signal, weight),
            name=f"stage:{dataset_name}->{to_site}",
        )
        return signal

    def _pick_source(self, name: str, to_site: str) -> tuple[str, float]:
        """Resolve the wire source: through the replicated view (with
        staleness accounting and phantom-source penalties) when one is
        attached, else the authoritative nearest replica. Returns
        ``(site, extra_delay_s)``."""
        if self.view is not None:
            return self.view.transfer_source(name, to_site)
        src, _est = self.catalog.nearest_source(self.topology, name, to_site)
        return src, 0.0

    def _stage_proc(self, name: str, to_site: str, signal: Signal,
                    weight: float = 1.0):
        started = self.sim.now
        dataset = self.catalog.dataset(name)
        bytes_moved = 0.0
        attempts = 0
        try:
            while True:
                attempts += 1
                src, penalty = self._pick_source(name, to_site)
                if penalty > 0:
                    # stale metadata sent us to a phantom replica; the
                    # puller discovered it and re-resolved — pay the
                    # extra metadata round before the real transfer
                    yield Timeout(penalty)
                yield self.network.transfer(src, to_site, dataset.size_bytes,
                                            weight=weight)
                bytes_moved += dataset.size_bytes
                self.total_bytes_wire += dataset.size_bytes
                if self.failure_prob == 0.0 or self._rng.random() >= self.failure_prob:
                    break
                self.total_retries += 1
                if attempts >= self.max_attempts:
                    raise DataFabricError(
                        f"staging {name!r} to {to_site!r} failed integrity "
                        f"check {attempts} times"
                    )
        except DataFabricError as exc:
            self._inflight.pop((name, to_site), None)
            signal.fail(exc)
            return
        self.catalog.add_replica(name, to_site, time=self.sim.now)
        self._inflight.pop((name, to_site), None)
        signal.trigger(
            TransferResult(
                dataset=name, src=src, dst=to_site,
                bytes_moved=bytes_moved, attempts=attempts,
                started=started, finished=self.sim.now,
            )
        )
