"""The span: one timed interval in a run's causal structure."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Span:
    """A begin/end interval with identity, lineage, and attributes.

    Spans form trees through ``parent_id``; a span with ``end_s is None``
    is still open. An *instant* span (``instant=True``) marks a point
    event — scaling decisions, memo hits, fault transitions — and has
    ``end_s == begin_s`` by construction.

    ``status`` is ``"ok"`` unless the instrumented operation ended
    abnormally (``"interrupted"``, ``"failed"``).
    """

    name: str
    category: str
    begin_s: float
    span_id: int
    parent_id: int | None = None
    end_s: float | None = None
    status: str = "ok"
    instant: bool = False
    attrs: dict = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.begin_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end_s:.6g}" if self.end_s is not None else "open"
        return (
            f"<Span #{self.span_id} {self.category}:{self.name} "
            f"[{self.begin_s:.6g}, {end}] {self.status}>"
        )
