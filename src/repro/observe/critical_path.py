"""Critical-path extraction over a completed schedule.

Answers *why the makespan is what it is*: walks the gating chain of
task records backwards from the last finisher — at each task the
predecessor whose completion released it — and attributes every second
on that chain to compute, transfer (staging), queue wait (slot wait
plus dispatch gaps), so "the run is transfer-bound" becomes a number.

For a deterministic run the extracted ``makespan_s`` equals the
scheduler's reported makespan exactly (both are the last task's
``exec_finished``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PathStep:
    """One task on the critical chain, with its time breakdown."""

    task: str
    site: str
    gap_s: float     # gating-predecessor finish (or arrival) -> stage start
    stage_s: float   # input staging (transfer)
    queue_s: float   # waiting for a worker slot
    exec_s: float    # execution

    @property
    def total_s(self) -> float:
        return self.gap_s + self.stage_s + self.queue_s + self.exec_s


@dataclass
class CriticalPath:
    """The longest dependency chain of one run, decomposed."""

    steps: list[PathStep]          # chain in execution order
    makespan_s: float              # == scheduler's reported makespan

    @property
    def compute_s(self) -> float:
        return sum(s.exec_s for s in self.steps)

    @property
    def transfer_s(self) -> float:
        return sum(s.stage_s for s in self.steps)

    @property
    def queue_s(self) -> float:
        """Slot waits plus dispatch/re-placement gaps."""
        return sum(s.queue_s + s.gap_s for s in self.steps)

    def fractions(self) -> dict[str, float]:
        """``{"compute": ..., "transfer": ..., "queue": ...}`` of the
        makespan (all zero for an empty path)."""
        if not self.steps or self.makespan_s <= 0:
            return {"compute": 0.0, "transfer": 0.0, "queue": 0.0}
        return {
            "compute": self.compute_s / self.makespan_s,
            "transfer": self.transfer_s / self.makespan_s,
            "queue": self.queue_s / self.makespan_s,
        }

    @property
    def task_names(self) -> list[str]:
        return [s.task for s in self.steps]


def critical_path(result, dag, *, arrival_s: float = 0.0) -> CriticalPath:
    """Extract the critical path of ``result`` through ``dag``.

    ``result`` is a :class:`~repro.core.placement.ScheduleResult` (or
    any object with a ``records`` dict, or the dict itself); ``dag`` is
    the :class:`~repro.workflow.dag.WorkflowDAG` that was executed.
    ``arrival_s`` anchors the chain's start for stream jobs that
    arrived after t=0.
    """
    records = getattr(result, "records", result)
    if not records:
        return CriticalPath(steps=[], makespan_s=0.0)

    def order_key(rec):
        return (rec.exec_finished, rec.task)

    chain = []
    current = max(
        (records[name] for name in dag.task_names if name in records),
        key=order_key,
    )
    makespan = current.exec_finished
    while True:
        deps = [records[d] for d in dag.dependencies(current.task)
                if d in records]
        gate_finish = arrival_s
        gate = None
        if deps:
            gate = max(deps, key=order_key)
            gate_finish = gate.exec_finished
        chain.append(PathStep(
            task=current.task,
            site=current.site,
            gap_s=max(current.stage_started - gate_finish, 0.0),
            stage_s=current.stage_time,
            queue_s=current.queue_time,
            exec_s=current.exec_time,
        ))
        if gate is None:
            break
        current = gate
    chain.reverse()
    return CriticalPath(steps=chain, makespan_s=makespan - arrival_s)
