"""Span collection: the :class:`Tracer` every subsystem emits into.

One tracer serves one run. Instrumented code calls ``begin``/``end``
(or the ``span`` context manager) unconditionally; a *disabled* tracer
returns a shared null span and records nothing, so tracing costs one
attribute check when off. Tracers never schedule simulation events —
they only read a clock — which is what makes observability
zero-interference: a traced run is bit-identical to an untraced one.

Clocks are late-bound: the continuum scheduler binds the tracer to its
per-run :class:`~repro.simcore.simulation.Simulator` clock, while the
real-execution dataflow kernel binds ``time.perf_counter``. Explicit
``time=`` arguments override the clock (useful in tests).
"""

from __future__ import annotations

import threading
import time as _time
from collections.abc import Callable
from contextlib import contextmanager

from repro.errors import ObserveError
from repro.observe.span import Span

#: Shared sentinel returned by disabled tracers; ``end`` ignores it.
NULL_SPAN = Span(name="", category="", begin_s=0.0, span_id=0)


class Tracer:
    """Collects :class:`Span` trees against a pluggable clock.

    Thread-safe: the dataflow kernel ends spans from worker threads.
    ``spans`` holds every span in begin order; completed trees can be
    exported with :func:`repro.observe.to_chrome_trace`.
    """

    def __init__(self, clock: Callable[[], float] | None = None,
                 *, enabled: bool = True):
        self._clock = clock
        self.enabled = enabled
        self.spans: list[Span] = []
        self._next_id = 1
        self._lock = threading.Lock()

    # -- clock ---------------------------------------------------------------
    def bind(self, clock) -> None:
        """Set the time source: a callable or anything with ``.now``."""
        if callable(clock):
            self._clock = clock
        elif hasattr(clock, "now"):
            self._clock = lambda: clock.now
        else:
            raise ObserveError(f"cannot use {clock!r} as a tracer clock")

    @property
    def bound(self) -> bool:
        return self._clock is not None

    def now(self) -> float:
        """Current time (wall clock until :meth:`bind` is called)."""
        if self._clock is not None:
            return self._clock()
        return _time.perf_counter()

    # -- recording -------------------------------------------------------------
    def begin(self, name: str, category: str = "span", *,
              parent: Span | None = None, time: float | None = None,
              **attrs) -> Span:
        """Open a span; returns it (a shared null span when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        t = self.now() if time is None else float(time)
        with self._lock:
            span = Span(
                name=name, category=category, begin_s=t,
                span_id=self._next_id,
                parent_id=(parent.span_id
                           if parent is not None and parent is not NULL_SPAN
                           else None),
                attrs=dict(attrs),
            )
            self._next_id += 1
            self.spans.append(span)
        return span

    def end(self, span: Span, *, time: float | None = None,
            status: str = "ok", **attrs) -> Span:
        """Close ``span`` at the current time, merging extra attributes."""
        if span is NULL_SPAN or span is None or not self.enabled:
            return span
        if span.end_s is not None:
            raise ObserveError(f"span {span.name!r} already ended")
        t = self.now() if time is None else float(time)
        if t < span.begin_s:
            raise ObserveError(
                f"span {span.name!r} would end at {t} before its begin "
                f"{span.begin_s}"
            )
        span.end_s = t
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        return span

    def instant(self, name: str, category: str = "event", *,
                parent: Span | None = None, time: float | None = None,
                **attrs) -> Span:
        """Record a zero-duration point event."""
        span = self.begin(name, category, parent=parent, time=time, **attrs)
        if span is not NULL_SPAN:
            span.end_s = span.begin_s
            span.instant = True
        return span

    @contextmanager
    def span(self, name: str, category: str = "span", *,
             parent: Span | None = None, **attrs):
        """``with tracer.span("step"): ...`` — ends on exit, marks
        ``"failed"`` if the body raises."""
        s = self.begin(name, category, parent=parent, **attrs)
        try:
            yield s
        except BaseException:
            self.end(s, status="failed")
            raise
        self.end(s)

    # -- retrieval ---------------------------------------------------------------
    def finished(self) -> list[Span]:
        """All closed spans, in begin order."""
        return [s for s in self.spans if s.closed]

    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if not s.closed]

    def by_category(self, category: str) -> list[Span]:
        return [s for s in self.spans if s.category == category]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self._next_id = 1


#: Module-level disabled tracer instrumented code defaults to.
NULL_TRACER = Tracer(enabled=False)
