"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

:func:`to_chrome_trace` turns a tracer's span trees into the JSON
trace-event format both viewers consume: each span becomes a matched
``B``/``E`` duration pair, instants become ``i`` events, and every
span *tree* gets its own thread lane (``tid`` = root span id) so
sibling trees that overlap in time never violate the per-thread stack
discipline the format requires. Timestamps are microseconds.

:func:`validate_chrome_trace` is the schema check CI leans on:
monotonic non-negative timestamps, every ``B`` matched by an ``E`` of
the same name on the same lane, and no lane left with an open stack.
"""

from __future__ import annotations

import math

from repro.errors import ObserveError
from repro.observe.span import Span


def _roots_and_children(spans: list[Span]):
    by_id = {s.span_id: s for s in spans}
    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    return roots, children


def _tree_events(span: Span, children: dict, tid: int, out: list) -> None:
    base = {
        "name": span.name, "cat": span.category,
        "pid": 0, "tid": tid,
    }
    args = {"status": span.status, **span.attrs}
    if span.instant:
        out.append({**base, "ph": "i", "s": "t",
                    "ts": span.begin_s * 1e6, "args": args})
        return
    out.append({**base, "ph": "B", "ts": span.begin_s * 1e6, "args": args})
    for child in children.get(span.span_id, ()):
        _tree_events(child, children, tid, out)
    out.append({**base, "ph": "E", "ts": span.end_s * 1e6, "args": {}})


def to_chrome_trace(tracer_or_spans, *, recorder=None) -> dict:
    """Export closed spans as a Chrome trace-event document.

    Accepts a :class:`~repro.observe.tracer.Tracer` or a span list;
    open spans are skipped (export after the run completes). Pass a
    :class:`~repro.observe.recorder.MetricsRecorder` — or a plain
    ``name -> [(t, v), ...]`` timeseries mapping such as
    ``MetricsRegistry.timeseries`` — as ``recorder`` to interleave the
    sampled timeseries as counter events (``"ph": "C"``), which render
    as per-metric area charts above the span lanes. Returns a
    JSON-serializable dict — ``json.dump`` it and load the file in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    spans = getattr(tracer_or_spans, "spans", tracer_or_spans)
    closed = [s for s in spans if s.closed]
    roots, children = _roots_and_children(closed)
    events: list[dict] = []
    for root in roots:
        # parentless instants share lane 0; span trees get their own lane
        tid = 0 if root.instant else root.span_id
        if not root.instant:
            events.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "ts": 0.0, "args": {"name": f"{root.category}:{root.name}"},
            })
        _tree_events(root, children, tid, events)
    if recorder is not None:
        if hasattr(recorder, "counter_events"):
            events.extend(recorder.counter_events())
        else:
            from repro.observe.recorder import series_counter_events

            events.extend(series_counter_events(recorder))
    meta = [e for e in events if e["ph"] == "M"]
    timed = [e for e in events if e["ph"] != "M"]
    timed.sort(key=lambda e: e["ts"])  # stable: per-lane order preserved
    return {"traceEvents": meta + timed, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: dict) -> int:
    """Check ``doc`` against the trace-event schema; returns the event
    count. Raises :class:`ObserveError` on the first violation:
    missing/malformed fields, negative or non-finite or non-monotonic
    timestamps, unmatched or misnested begin/end pairs, counter (``C``)
    events without a non-empty dict of finite numeric series.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ObserveError("trace document must be a dict with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ObserveError("'traceEvents' must be a list")
    stacks: dict[tuple, list[str]] = {}
    last_ts = -math.inf
    for i, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ObserveError(f"event {i} missing {key!r}")
        ph = event["ph"]
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            raise ObserveError(f"event {i} has bad timestamp {ts!r}")
        if ts < last_ts:
            raise ObserveError(
                f"event {i} timestamp {ts} precedes previous {last_ts} "
                f"(non-monotonic)"
            )
        last_ts = ts
        lane = (event["pid"], event["tid"])
        if ph == "B":
            stacks.setdefault(lane, []).append(event["name"])
        elif ph == "E":
            stack = stacks.get(lane)
            if not stack:
                raise ObserveError(
                    f"event {i}: 'E' for {event['name']!r} with no open "
                    f"'B' on lane {lane}"
                )
            opened = stack.pop()
            if opened != event["name"]:
                raise ObserveError(
                    f"event {i}: 'E' for {event['name']!r} closes "
                    f"{opened!r} (misnested) on lane {lane}"
                )
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ObserveError(
                    f"event {i}: counter event needs a non-empty 'args' "
                    f"dict of numeric series"
                )
            for k, v in args.items():
                if not isinstance(v, (int, float)) or not math.isfinite(v):
                    raise ObserveError(
                        f"event {i}: counter series {k!r} has non-numeric "
                        f"value {v!r}"
                    )
        elif ph != "i":
            raise ObserveError(f"event {i} has unsupported phase {ph!r}")
    for lane, stack in stacks.items():
        if stack:
            raise ObserveError(
                f"lane {lane} ended with unclosed spans: {stack}"
            )
    return len(events)
