"""Observability: span tracing, trace export, critical-path analysis.

The keynote's question — "where should I compute?" — is only
answerable if every placement decision, transfer, and task attempt is
inspectable after the fact. This package provides that layer:

- :class:`Span` / :class:`Tracer` — begin/end interval records with
  parents and attributes, emitted by the continuum scheduler (task
  lifecycle with the estimate that drove each placement), the flow
  network (per-transfer spans with bytes/route/achieved rate), FaaS
  endpoints and autoscalers (queueing, cold starts, scaling), and the
  real-execution dataflow kernel (submit/run/memo),
- :func:`to_chrome_trace` / :func:`validate_chrome_trace` — export to
  the Chrome trace-event JSON both ``chrome://tracing`` and Perfetto
  render, plus the schema check CI runs on it,
- :func:`critical_path` — the longest gating chain of a completed run,
  decomposed into compute / transfer / queue-wait fractions,
- :class:`MetricsRegistry` with labeled :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` families, the run-scoped
  :class:`MetricsRecorder` sampling gauges on sim-clock ticks, and the
  Prometheus / canonical-JSON exporters — the unified instrument panel
  every subsystem (kernel, netsim, scheduler, resilience, cache,
  control plane) emits into.

Tracing and metrics are opt-in and zero-interference: an instrumented
simulation produces bit-identical placements and makespans to a bare
one, because tracers and recorders only read the clock, never schedule
events.
"""

from repro.observe.chrome import to_chrome_trace, validate_chrome_trace
from repro.observe.critical_path import CriticalPath, PathStep, critical_path
from repro.observe.metrics import (
    METRICS_SCHEMA,
    NULL_METRICS,
    STATE_SCHEMA,
    SUITE_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    current_registry,
    load_snapshot,
    log_buckets,
    parse_prometheus,
    set_registry,
    snapshot_to_json,
    to_prometheus,
    use_registry,
    validate_snapshot,
    validate_suite,
)
from repro.observe.recorder import MetricsRecorder, series_counter_events
from repro.observe.span import Span
from repro.observe.tracer import NULL_SPAN, NULL_TRACER, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "to_chrome_trace",
    "validate_chrome_trace",
    "CriticalPath",
    "PathStep",
    "critical_path",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsRecorder",
    "series_counter_events",
    "NULL_METRICS",
    "METRICS_SCHEMA",
    "STATE_SCHEMA",
    "SUITE_SCHEMA",
    "current_registry",
    "set_registry",
    "use_registry",
    "log_buckets",
    "to_prometheus",
    "parse_prometheus",
    "snapshot_to_json",
    "load_snapshot",
    "validate_snapshot",
    "validate_suite",
]
