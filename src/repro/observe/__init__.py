"""Observability: span tracing, trace export, critical-path analysis.

The keynote's question — "where should I compute?" — is only
answerable if every placement decision, transfer, and task attempt is
inspectable after the fact. This package provides that layer:

- :class:`Span` / :class:`Tracer` — begin/end interval records with
  parents and attributes, emitted by the continuum scheduler (task
  lifecycle with the estimate that drove each placement), the flow
  network (per-transfer spans with bytes/route/achieved rate), FaaS
  endpoints and autoscalers (queueing, cold starts, scaling), and the
  real-execution dataflow kernel (submit/run/memo),
- :func:`to_chrome_trace` / :func:`validate_chrome_trace` — export to
  the Chrome trace-event JSON both ``chrome://tracing`` and Perfetto
  render, plus the schema check CI runs on it,
- :func:`critical_path` — the longest gating chain of a completed run,
  decomposed into compute / transfer / queue-wait fractions.

Tracing is opt-in and zero-interference: a traced simulation produces
bit-identical placements and makespans to an untraced one, because
tracers only read the clock, never schedule events.
"""

from repro.observe.chrome import to_chrome_trace, validate_chrome_trace
from repro.observe.critical_path import CriticalPath, PathStep, critical_path
from repro.observe.span import Span
from repro.observe.tracer import NULL_SPAN, NULL_TRACER, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "to_chrome_trace",
    "validate_chrome_trace",
    "CriticalPath",
    "PathStep",
    "critical_path",
]
