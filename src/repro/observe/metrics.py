"""Unified metrics: labeled counters / gauges / histograms + exporters.

One :class:`MetricsRegistry` serves one run (or one merged suite). The
design goals mirror the tracer's zero-interference contract and add a
determinism contract of their own:

- **Clock-passive.** Instruments never schedule simulation events and
  never read wall clocks; every number in a snapshot is derived from
  simulated time or event counts, so the same (experiment, seed) always
  produces a byte-identical snapshot.
- **Exactly mergeable.** Counter values and histogram sums accumulate
  into Shewchuk partials (error-free float expansions), and histogram
  buckets are *fixed* log-spaced bounds chosen at declaration time.
  Addition of partials is associative and commutative in exact
  arithmetic, so merging per-shard registries in any grouping yields
  bit-identical totals to a single whole-run registry — which is what
  lets ``--jobs 1/2/4`` produce the same snapshot byte-for-byte.
- **Disabled by default.** ``NULL_METRICS`` is a shared disabled
  registry; instrumented code checks ``registry.enabled`` once at setup
  and skips all metric work when off.

Two exporters: :func:`to_prometheus` (text exposition format, scrapable
by any Prometheus server) and :meth:`MetricsRegistry.snapshot` (a
canonical JSON document with sorted keys, schema-versioned, suitable for
committing next to experiment tables).
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from contextlib import contextmanager

from repro.errors import ObserveError

#: Schema tag for canonical JSON snapshots (bump on incompatible change).
METRICS_SCHEMA = "repro-metrics/1"

#: Schema tag for mergeable state dumps shipped between bench workers.
STATE_SCHEMA = "repro-metrics-state/1"

#: Schema tag for suite files: one snapshot per experiment.
SUITE_SCHEMA = "repro-metrics-suite/1"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


# ---------------------------------------------------------------------------
# exact accumulation
# ---------------------------------------------------------------------------

class ExactSum:
    """Error-free running float sum (Shewchuk's expansion algorithm).

    The list of partials represents the *exact* real-valued sum of every
    value ever added, so :meth:`merge` of two accumulators equals adding
    their inputs in any interleaving, and :attr:`value` (one correctly
    rounded ``math.fsum``) is grouping-independent.
    """

    __slots__ = ("partials",)

    def __init__(self, partials=None):
        self.partials: list[float] = list(partials) if partials else []

    def add(self, x: float) -> None:
        partials = self.partials
        x = float(x)
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        for p in other.partials:
            self.add(p)

    @property
    def value(self) -> float:
        return math.fsum(self.partials)

    def state(self) -> list[float]:
        return list(self.partials)


def _check_finite(name: str, v: float) -> float:
    v = float(v)
    if not math.isfinite(v):
        raise ObserveError(f"metric {name!r} given non-finite value {v!r}")
    return v


# ---------------------------------------------------------------------------
# instruments (the per-label-set children)
# ---------------------------------------------------------------------------

class Counter:
    """Monotonically increasing count; ``inc`` accepts any finite
    non-negative amount."""

    __slots__ = ("name", "_sum")

    def __init__(self, name: str):
        self.name = name
        self._sum = ExactSum()

    def inc(self, amount: float = 1.0) -> None:
        amount = _check_finite(self.name, amount)
        if amount < 0:
            raise ObserveError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self._sum.add(amount)

    @property
    def value(self) -> float:
        return self._sum.value


class Gauge:
    """Point-in-time value; last write wins (also across shard merges,
    in deterministic merge order)."""

    __slots__ = ("name", "_value", "updates")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self._value = _check_finite(self.name, value)
        self.updates += 1

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + float(amount))

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - float(amount))

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bound histogram with cumulative ``le`` export semantics.

    Bounds are chosen at declaration time (log-spaced), never from the
    data, so two shards of the same metric always agree on buckets and
    merging is plain integer addition.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "_sum")

    def __init__(self, name: str, bounds: tuple[float, ...]):
        self.name = name
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self._sum = ExactSum()

    def observe(self, value: float) -> None:
        value = _check_finite(self.name, value)
        idx = bisect_left(self.bounds, value)
        if idx == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[idx] += 1
        self.count += 1
        self._sum.add(value)

    @property
    def sum(self) -> float:
        return self._sum.value

    def cumulative(self) -> list[int]:
        """Cumulative counts per bound (Prometheus ``le`` buckets),
        excluding the ``+Inf`` bucket (which equals :attr:`count`)."""
        out, total = [], 0
        for c in self.counts:
            total += c
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 <= q <= 1).

        Returns the smallest bucket bound whose cumulative count covers
        ``q`` of all observations; ``inf`` if it falls in the overflow
        bucket, ``nan`` if the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ObserveError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return math.nan
        target = q * self.count
        total = 0
        for bound, c in zip(self.bounds, self.counts):
            total += c
            if total >= target and total > 0:
                return bound
        return math.inf


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced bucket bounds: start, start*factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ObserveError(
            f"invalid histogram buckets (start={start}, factor={factor}, "
            f"count={count})")
    return tuple(start * factor ** i for i in range(count))


# ---------------------------------------------------------------------------
# families
# ---------------------------------------------------------------------------

_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its per-label-set children.

    An unlabeled family acts as its own single child: ``family.inc()``
    is shorthand for ``family.labels().inc()``.
    """

    def __init__(self, name: str, kind: str, help: str,
                 label_names: tuple[str, ...],
                 bucket_spec: tuple[float, float, int] | None = None):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.bucket_spec = bucket_spec
        self.bounds = (log_buckets(*bucket_spec)
                       if bucket_spec is not None else None)
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels):
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ObserveError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[k]) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.name, self.bounds)
            else:
                child = _TYPES[self.kind](self.name)
            self._children[key] = child
        return child

    # unlabeled shorthand -----------------------------------------------------
    def _default(self):
        if self.label_names:
            raise ObserveError(
                f"metric {self.name!r} is labeled {self.label_names}; "
                f"use .labels(...)")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> float:
        return self._default().value

    def series(self):
        """(label_values, child) pairs in sorted label order."""
        return sorted(self._children.items())


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class MetricsRegistry:
    """Holds every metric family of a run; disabled registries are inert.

    ``counter``/``gauge``/``histogram`` are idempotent get-or-create:
    re-declaring a metric with the same signature returns the existing
    family, re-declaring with a conflicting type/labels/buckets raises.
    """

    def __init__(self, *, enabled: bool = True, keep_timeseries: bool = False):
        self.enabled = enabled
        #: When set, the continuum scheduler stores the run recorder's
        #: sampled timeseries here (single-run tools: chaos/trace CLIs).
        self.keep_timeseries = keep_timeseries
        self.timeseries: dict[str, list[tuple[float, float]]] = {}
        self._families: dict[str, MetricFamily] = {}

    # -- declaration ----------------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                labels: tuple[str, ...],
                bucket_spec: tuple[float, float, int] | None = None
                ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ObserveError(f"invalid metric name {name!r}")
        labels = tuple(labels)
        for ln in labels:
            if not _LABEL_RE.match(ln):
                raise ObserveError(f"invalid label name {ln!r} on {name!r}")
        fam = self._families.get(name)
        if fam is not None:
            if (fam.kind != kind or fam.label_names != labels
                    or fam.bucket_spec != bucket_spec):
                raise ObserveError(
                    f"metric {name!r} re-declared with a different "
                    f"signature ({fam.kind}/{fam.label_names} vs "
                    f"{kind}/{labels})")
            if help and not fam.help:
                fam.help = help
            return fam
        fam = MetricFamily(name, kind, help, labels, bucket_spec)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "",
                labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: tuple[str, ...] = (), *,
                  start: float = 1e-3, factor: float = 2.0,
                  count: int = 40) -> MetricFamily:
        return self._family(name, "histogram", help, labels,
                            (float(start), float(factor), int(count)))

    # -- retrieval ------------------------------------------------------------
    def families(self):
        """Families in sorted name order."""
        return sorted(self._families.items())

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def __len__(self) -> int:
        return len(self._families)

    # -- canonical JSON snapshot ---------------------------------------------
    def snapshot(self) -> dict:
        """Canonical plain-data form: sorted names, sorted label sets,
        schema-versioned. Byte-identical across reruns of the same
        deterministic workload."""
        metrics = {}
        for name, fam in self.families():
            series = []
            for key, child in fam.series():
                entry = {"labels": dict(zip(fam.label_names, key))}
                if fam.kind == "histogram":
                    entry["buckets"] = child.cumulative()
                    entry["count"] = child.count
                    entry["sum"] = child.sum
                else:
                    entry["value"] = child.value
                series.append(entry)
            doc = {
                "type": fam.kind,
                "help": fam.help,
                "label_names": list(fam.label_names),
                "series": series,
            }
            if fam.kind == "histogram":
                doc["le"] = list(fam.bounds)
            metrics[name] = doc
        out = {"schema": METRICS_SCHEMA, "metrics": metrics}
        if self.timeseries:
            out["timeseries"] = {
                name: [[t, v] for t, v in pts]
                for name, pts in sorted(self.timeseries.items())
            }
        return out

    # -- mergeable state ------------------------------------------------------
    def dump_state(self) -> dict:
        """Lossless, mergeable form: keeps exact-sum partials so merged
        registries reproduce whole-run float totals bit-for-bit."""
        metrics = {}
        for name, fam in self.families():
            series = []
            for key, child in fam.series():
                entry = {"labels": list(key)}
                if fam.kind == "histogram":
                    entry["counts"] = list(child.counts)
                    entry["overflow"] = child.overflow
                    entry["count"] = child.count
                    entry["sum_partials"] = child._sum.state()
                elif fam.kind == "counter":
                    entry["partials"] = child._sum.state()
                else:
                    entry["value"] = child.value
                    entry["updates"] = child.updates
                series.append(entry)
            metrics[name] = {
                "type": fam.kind,
                "help": fam.help,
                "label_names": list(fam.label_names),
                "bucket_spec": (list(fam.bucket_spec)
                                if fam.bucket_spec else None),
                "series": series,
            }
        return {
            "schema": STATE_SCHEMA,
            "metrics": metrics,
            "timeseries": {
                name: [[t, v] for t, v in pts]
                for name, pts in sorted(self.timeseries.items())
            },
        }

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`dump_state` document into this registry.

        Counters and histograms add exactly (grouping-independent);
        gauges take the incoming value when the incoming shard ever set
        them (last-writer-wins in merge order).
        """
        if state.get("schema") != STATE_SCHEMA:
            raise ObserveError(
                f"cannot merge metrics state with schema "
                f"{state.get('schema')!r} (expected {STATE_SCHEMA!r})")
        for name, doc in sorted(state.get("metrics", {}).items()):
            kind = doc["type"]
            labels = tuple(doc["label_names"])
            spec = doc.get("bucket_spec")
            if kind == "histogram":
                fam = self.histogram(name, doc.get("help", ""), labels,
                                     start=spec[0], factor=spec[1],
                                     count=int(spec[2]))
            elif kind == "counter":
                fam = self.counter(name, doc.get("help", ""), labels)
            else:
                fam = self.gauge(name, doc.get("help", ""), labels)
            for entry in doc["series"]:
                child = fam.labels(**dict(zip(labels, entry["labels"])))
                if kind == "histogram":
                    for i, c in enumerate(entry["counts"]):
                        child.counts[i] += c
                    child.overflow += entry["overflow"]
                    child.count += entry["count"]
                    child._sum.merge(ExactSum(entry["sum_partials"]))
                elif kind == "counter":
                    child._sum.merge(ExactSum(entry["partials"]))
                else:
                    if entry["updates"] > 0:
                        child._value = float(entry["value"])
                        child.updates += int(entry["updates"])
        for name, pts in sorted(state.get("timeseries", {}).items()):
            self.timeseries[name] = [(t, v) for t, v in pts]


# ---------------------------------------------------------------------------
# ambient registry (mirrors the NULL_TRACER pattern)
# ---------------------------------------------------------------------------

#: Shared disabled registry; the default everywhere.
NULL_METRICS = MetricsRegistry(enabled=False)

_current: MetricsRegistry = NULL_METRICS


def current_registry() -> MetricsRegistry:
    """The ambient registry instrumented code defaults to (disabled
    unless a caller installed one with :func:`use_registry`)."""
    return _current


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` as ambient (``None`` restores the disabled
    default); returns the previous one."""
    global _current
    prev = _current
    _current = registry if registry is not None else NULL_METRICS
    return prev


@contextmanager
def use_registry(registry: MetricsRegistry):
    """``with use_registry(reg): ...`` — scoped ambient install."""
    prev = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(prev)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _fmt_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_label(v: str) -> str:
    return v.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _label_str(names, values, extra=None) -> str:
    pairs = [(n, v) for n, v in zip(names, values)]
    if extra:
        pairs = list(extra.items()) + pairs
    if not pairs:
        return ""
    inner = ",".join(f'{n}="{_escape_label(str(v))}"' for n, v in pairs)
    return "{" + inner + "}"


def to_prometheus(registry_or_snapshot, *, extra_labels: dict | None = None
                  ) -> str:
    """Render a registry (or its :meth:`~MetricsRegistry.snapshot`) in
    the Prometheus text exposition format. ``extra_labels`` are
    prepended to every series (e.g. ``{"experiment": "E13"}``)."""
    if isinstance(registry_or_snapshot, MetricsRegistry):
        snap = registry_or_snapshot.snapshot()
    else:
        snap = registry_or_snapshot
    validate_snapshot(snap)
    lines: list[str] = []
    for name, doc in sorted(snap["metrics"].items()):
        kind = doc["type"]
        label_names = doc["label_names"]
        if doc.get("help"):
            lines.append(f"# HELP {name} {doc['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in doc["series"]:
            values = [entry["labels"][k] for k in label_names]
            if kind == "histogram":
                for bound, cum in zip(doc["le"], entry["buckets"]):
                    ls = _label_str(label_names + ["le"],
                                    values + [_fmt_value(bound)],
                                    extra_labels)
                    lines.append(f"{name}_bucket{ls} {cum}")
                ls = _label_str(label_names + ["le"], values + ["+Inf"],
                                extra_labels)
                lines.append(f"{name}_bucket{ls} {entry['count']}")
                base = _label_str(label_names, values, extra_labels)
                lines.append(f"{name}_sum{base} {_fmt_value(entry['sum'])}")
                lines.append(f"{name}_count{base} {entry['count']}")
            else:
                ls = _label_str(label_names, values, extra_labels)
                lines.append(f"{name}{ls} {_fmt_value(entry['value'])}")
    return "\n".join(lines) + "\n"


_SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$")
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def _unescape_label(v: str) -> str:
    return (v.replace(r"\n", "\n").replace(r'\"', '"')
             .replace(r"\\", "\\"))


def _parse_num(s: str) -> float:
    if s == "+Inf":
        return math.inf
    if s == "-Inf":
        return -math.inf
    return float(s)


def parse_prometheus(text: str) -> dict:
    """Parse text produced by :func:`to_prometheus` back into
    ``{name: {"type", "series": {label_tuple: value-or-histogram}}}``.

    A deliberately minimal parser for round-trip testing — it only
    understands our own exporter's output, not arbitrary exposition.
    """
    out: dict[str, dict] = {}
    types: dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            mname, _, kind = rest.partition(" ")
            types[mname] = kind.strip()
            out.setdefault(mname, {"type": kind.strip(), "series": {}})
            continue
        if line.startswith("#"):
            continue
        m = _SERIES_RE.match(line)
        if m is None:
            raise ObserveError(f"unparseable exposition line {line!r}")
        sname, labels_s, value_s = (m.group("name"), m.group("labels"),
                                    m.group("value"))
        labels = {}
        if labels_s:
            for lm in _LABEL_PAIR_RE.finditer(labels_s):
                labels[lm.group("name")] = _unescape_label(lm.group("value"))
        base, suffix = sname, ""
        for suf in ("_bucket", "_sum", "_count"):
            trimmed = sname[:-len(suf)] if sname.endswith(suf) else None
            if trimmed and types.get(trimmed) == "histogram":
                base, suffix = trimmed, suf
                break
        doc = out.setdefault(base, {"type": types.get(base, "untyped"),
                                    "series": {}})
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        if doc["type"] == "histogram":
            series = doc["series"].setdefault(
                key, {"buckets": {}, "sum": None, "count": None})
            if suffix == "_bucket":
                series["buckets"][_parse_num(labels["le"])] = (
                    int(float(value_s)))
            elif suffix == "_sum":
                series["sum"] = _parse_num(value_s)
            elif suffix == "_count":
                series["count"] = int(float(value_s))
        else:
            doc["series"][key] = _parse_num(value_s)
    return out


# ---------------------------------------------------------------------------
# snapshot files
# ---------------------------------------------------------------------------

def validate_snapshot(doc) -> dict:
    """Structural check of a metrics snapshot; raises one-line
    :class:`ObserveError` on anything malformed."""
    if not isinstance(doc, dict):
        raise ObserveError("metrics snapshot is not a JSON object")
    schema = doc.get("schema")
    if schema != METRICS_SCHEMA:
        raise ObserveError(
            f"unknown metrics snapshot schema {schema!r} "
            f"(expected {METRICS_SCHEMA!r})")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ObserveError("metrics snapshot missing 'metrics' object")
    for name, mdoc in metrics.items():
        if not isinstance(mdoc, dict) or "type" not in mdoc:
            raise ObserveError(f"metric {name!r} entry missing 'type'")
        kind = mdoc["type"]
        if kind not in _TYPES:
            raise ObserveError(f"metric {name!r} has unknown type {kind!r}")
        if not isinstance(mdoc.get("series"), list):
            raise ObserveError(f"metric {name!r} missing 'series' list")
        if kind == "histogram" and not isinstance(mdoc.get("le"), list):
            raise ObserveError(
                f"histogram {name!r} missing 'le' bucket bounds")
        for entry in mdoc["series"]:
            if not isinstance(entry, dict) or "labels" not in entry:
                raise ObserveError(f"metric {name!r} series entry "
                                   f"missing 'labels'")
            if kind == "histogram":
                if ("buckets" not in entry or "count" not in entry
                        or "sum" not in entry):
                    raise ObserveError(
                        f"histogram {name!r} series entry incomplete")
                if len(entry["buckets"]) != len(mdoc["le"]):
                    raise ObserveError(
                        f"histogram {name!r} bucket count mismatch")
            elif "value" not in entry:
                raise ObserveError(
                    f"metric {name!r} series entry missing 'value'")
    return doc


def snapshot_to_json(doc: dict) -> str:
    """Canonical serialization: sorted keys, stable separators, trailing
    newline — byte-identical for equal documents."""
    return json.dumps(doc, sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


def load_snapshot(path: str) -> dict:
    """Read + validate a snapshot file; one-line errors for missing,
    corrupt, or unknown-schema files."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise ObserveError(f"metrics file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ObserveError(
            f"metrics file {path} is not valid JSON ({exc.msg} at "
            f"line {exc.lineno})") from None
    except OSError as exc:
        raise ObserveError(f"cannot read metrics file {path}: "
                           f"{exc.strerror or exc}") from None
    try:
        if isinstance(doc, dict) and doc.get("schema") == SUITE_SCHEMA:
            validate_suite(doc)
        else:
            validate_snapshot(doc)
    except ObserveError as exc:
        raise ObserveError(f"{path}: {exc}") from None
    return doc


def validate_suite(doc) -> dict:
    """Structural check of a suite metrics file (one snapshot per
    experiment under ``experiments``)."""
    if not isinstance(doc, dict) or doc.get("schema") != SUITE_SCHEMA:
        raise ObserveError(
            f"unknown metrics suite schema "
            f"{doc.get('schema') if isinstance(doc, dict) else doc!r} "
            f"(expected {SUITE_SCHEMA!r})")
    experiments = doc.get("experiments")
    if not isinstance(experiments, dict) or not experiments:
        raise ObserveError("metrics suite file has no 'experiments'")
    for exp, snap in sorted(experiments.items()):
        try:
            validate_snapshot(snap)
        except ObserveError as exc:
            raise ObserveError(f"experiment {exp}: {exc}") from None
    return doc
