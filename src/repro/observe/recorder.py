"""Run-scoped gauge sampling on simulated-clock ticks.

A :class:`MetricsRecorder` is attached to a
:class:`~repro.simcore.simulation.Simulator` by the continuum scheduler
when metrics are enabled. The kernel's dispatch loop checks
``now >= recorder.next_t`` once per event (one attribute compare) and
calls :meth:`tick`, which reads every registered *probe* — a plain
callable like ``lambda: len(queue)`` — and appends ``(sim_time, value)``
to that probe's timeseries.

The recorder is clock-passive: it never schedules events, so attaching
one cannot change event order, sequence numbers, or any simulation
output. Sample count is bounded by deterministic interval doubling —
when a series exceeds ``max_samples``, every other sample is dropped and
the sampling interval doubles, which keeps long runs at bounded memory
while remaining a pure function of simulated time.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ObserveError


class MetricsRecorder:
    """Samples gauge probes into timeseries on sim-clock ticks."""

    __slots__ = ("interval_s", "max_samples", "next_t", "series", "_probes")

    def __init__(self, *, interval_s: float = 1.0, max_samples: int = 512):
        if interval_s <= 0:
            raise ObserveError(f"recorder interval must be positive, "
                               f"got {interval_s}")
        if max_samples < 4:
            raise ObserveError(f"recorder max_samples must be >= 4, "
                               f"got {max_samples}")
        self.interval_s = float(interval_s)
        self.max_samples = int(max_samples)
        #: Next simulated time at/after which the kernel should tick us.
        self.next_t = 0.0
        self.series: dict[str, list[tuple[float, float]]] = {}
        self._probes: list[tuple[str, Callable[[], float]]] = []

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register ``fn`` to be sampled as timeseries ``name``."""
        if any(n == name for n, _ in self._probes):
            raise ObserveError(f"duplicate recorder probe {name!r}")
        self._probes.append((name, fn))
        self.series[name] = []

    def tick(self, now: float) -> None:
        """Sample every probe at simulated time ``now``; called by the
        kernel dispatch loop when ``now >= next_t``."""
        for name, fn in self._probes:
            self.series[name].append((now, float(fn())))
        self.next_t = now + self.interval_s
        first = next(iter(self.series.values()), None)
        if first is not None and len(first) > self.max_samples:
            self._decimate()

    def _decimate(self) -> None:
        # Keep every other sample (newest kept) and double the interval;
        # purely a function of sample count, hence deterministic.
        for name, pts in self.series.items():
            self.series[name] = pts[1::2] if len(pts) > 1 else pts
        self.interval_s *= 2.0

    def sample_count(self) -> int:
        first = next(iter(self.series.values()), None)
        return len(first) if first is not None else 0

    def counter_events(self, *, pid: int = 0, tid: int = 0) -> list[dict]:
        """Chrome trace-event counter records (``"ph": "C"``) — one per
        sample, timestamps in microseconds, renderable alongside span
        events in ``chrome://tracing`` / Perfetto."""
        return series_counter_events(self.series, pid=pid, tid=tid)


def series_counter_events(series: dict[str, list[tuple[float, float]]],
                          *, pid: int = 0, tid: int = 0) -> list[dict]:
    """Chrome counter events from a plain ``name -> [(t, v), ...]``
    timeseries mapping — the shape a registry preserves under
    ``keep_timeseries`` — so exports work after the recorder is gone."""
    events = []
    for name in sorted(series):
        for t, v in series[name]:
            events.append({
                "name": name,
                "ph": "C",
                "ts": t * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {"value": v},
            })
    events.sort(key=lambda e: (e["ts"], e["name"]))
    return events
