"""Exception hierarchy for the ``repro`` (continuum) library.

Every error raised by library code derives from :class:`ContinuumError` so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ContinuumError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ContinuumError):
    """Raised for misuse of the discrete-event kernel (e.g. scheduling in
    the past, running a finished simulation)."""


class TopologyError(ContinuumError):
    """Raised for malformed infrastructure descriptions: unknown sites,
    duplicate names, disconnected routes, non-positive capacities."""


class NetworkError(ContinuumError):
    """Raised by the flow-level network simulator (unknown endpoints,
    transfers on routes with no bandwidth, duplicate flow ids)."""


class DataFabricError(ContinuumError):
    """Raised by the data substrate (missing datasets, integrity failures
    after exhausting retries, cache misconfiguration)."""


class FaaSError(ContinuumError):
    """Raised by the federated function-serving substrate (unregistered
    functions, endpoints with no capacity, bad batch configuration)."""


class WorkflowError(ContinuumError):
    """Raised by the dataflow engine (cyclic DAGs, unknown dependencies,
    double submission, executor misuse)."""


class TaskFailedError(WorkflowError):
    """A task exhausted its retries; carries the original exception."""

    def __init__(self, task_name: str, cause: BaseException | None = None):
        self.task_name = task_name
        self.cause = cause
        msg = f"task {task_name!r} failed"
        if cause is not None:
            msg += f": {cause!r}"
        super().__init__(msg)


class SchedulingError(ContinuumError):
    """Raised by placement strategies and the continuum scheduler
    (infeasible placements, unknown strategies, empty site sets)."""


class ConfigurationError(ContinuumError):
    """Raised when user-supplied configuration values are invalid."""


class ObserveError(ContinuumError):
    """Raised by the observability layer (span misuse, malformed trace
    exports failing schema validation)."""


class ControlPlaneError(ContinuumError):
    """Raised by the replicated control plane (malformed log operations,
    reads against a dead cluster, misconfigured replication)."""
