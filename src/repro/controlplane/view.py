"""Catalog/registry views over the replicated control plane.

Three adapters connect the consensus machinery to the layers that
consume metadata:

- :class:`MirroredCatalog` — a drop-in :class:`ReplicaCatalog` that
  *also* submits every replica mutation to the control plane. The bare
  catalog stays the physical ground truth (a site always knows what is
  on its own disk); the plane is the federation's lagged metadata
  service replicating that truth.
- :class:`ReplicatedCatalogView` — duck-types the catalog *read* API
  against the image the session's last placement read resolved: the
  physical catalog itself when the read linearized at a leased or
  quorum-confirmed leader (the leader serializes every mutation the
  moment it physically happens, so its image *is* ground truth), or a
  follower's lagged applied state otherwise. :class:`CostModel`,
  placement strategies, and the transfer service all plan against
  this view. It also does the staleness accounting: every
  transfer-source decision is compared against the physical catalog,
  and divergence is booked as a misplacement (plus wasted bytes when
  the stale choice is strictly slower).
- :class:`RegistryView` — endpoint liveness per the replicated
  registry, for faas routing's ``healthy_endpoints``.
"""

from __future__ import annotations

from repro.continuum.topology import Topology
from repro.controlplane.cluster import ControlPlane
from repro.controlplane.log import Command
from repro.controlplane.session import ControlPlaneSession
from repro.datafabric.catalog import ReplicaCatalog
from repro.datafabric.dataset import Dataset, Replica
from repro.errors import DataFabricError


class MirroredCatalog(ReplicaCatalog):
    """Authoritative catalog that mirrors mutations into the plane.

    ``register`` calls made before the run starts are *bootstrapped*
    (pre-replicated, no lag): the federation converged on the initial
    dataset definitions long ago. Replica add/drop during the run are
    real replicated writes and pay commit latency before remote control
    sites observe them.
    """

    def __init__(self, plane: ControlPlane):
        super().__init__()
        self.plane = plane
        self._clock = lambda: 0.0

    def bind_clock(self, clock) -> None:
        """Attach the simulation clock (called once the run owns one)."""
        self._clock = clock

    def register(self, dataset: Dataset) -> Dataset:
        out = super().register(dataset)
        self._mirror(Command(
            "register", (dataset.name, dataset.size_bytes, dataset.kind)))
        return out

    def add_replica(self, name: str, site: str, time: float = 0.0) -> Replica:
        replica = super().add_replica(name, site, time)
        self.plane.submit(
            Command("add_replica", (name, site, time)), self._clock())
        return replica

    def drop_replica(self, name: str, site: str) -> None:
        super().drop_replica(name, site)
        self.plane.submit(
            Command("drop_replica", (name, site)), self._clock())

    def bootstrap_replica(self, name: str, site: str,
                          time: float = 0.0) -> Replica:
        """Seed replica whose metadata is already federation-wide: a
        free pre-replicated log entry before the plane starts, a normal
        replicated write afterwards (late-arriving stream jobs)."""
        replica = super().add_replica(name, site, time)
        self._mirror(Command("add_replica", (name, site, time)))
        return replica

    def _mirror(self, command: Command) -> None:
        if self.plane.started:
            self.plane.submit(command, self._clock())
        else:
            self.plane.bootstrap([command])

    def endpoint_up(self, site: str) -> None:
        self.plane.submit(Command("endpoint_up", (site,)), self._clock())

    def endpoint_down(self, site: str) -> None:
        self.plane.submit(Command("endpoint_down", (site,)), self._clock())


class ReplicatedCatalogView:
    """The catalog as the control plane currently believes it to be."""

    def __init__(self, session: ControlPlaneSession,
                 authoritative: ReplicaCatalog, topology: Topology):
        self.session = session
        self.authoritative = authoritative
        self.topology = topology
        self.stats = session.stats

    @property
    def _truth(self) -> bool:
        return self.session.pinned_truth

    @property
    def _state(self):
        return self.session.current_state()

    # -- read API (CostModel / strategies) ---------------------------------------
    @property
    def version(self) -> int:
        if self._truth:
            return self.authoritative.version
        return self._state.version

    def dataset_version(self, name: str) -> int:
        if self._truth:
            return self.authoritative.dataset_version(name)
        return self._state.dataset_version(name)

    def dataset(self, name: str) -> Dataset:
        if self._truth:
            return self.authoritative.dataset(name)
        state = self._state
        if name in state:
            return state.dataset(name)
        return self.authoritative.dataset(name)

    def __contains__(self, name: str) -> bool:
        return name in self._state or name in self.authoritative

    @property
    def dataset_names(self) -> list[str]:
        if self._truth:
            return self.authoritative.dataset_names
        return self._state.dataset_names

    def locations(self, name: str) -> list[str]:
        """Replica sites per the view. When a follower view knows
        *none* (the mutation hasn't replicated yet) planning falls back
        to the dataset's **origin** replica only — the one location the
        scheduler knows out-of-band from the producing task's
        completion event. It does NOT get the full physical replica
        set: closer staged copies the control plane hasn't told it
        about stay invisible. Counted as a fallback read."""
        if self._truth:
            return self.authoritative.locations(name)
        state = self._state
        locs = state.locations(name) if name in state else []
        if locs:
            return locs
        origin = self._origin(name)
        if origin is not None:
            self.stats.fallback_reads += 1
            return [origin]
        return []

    def _origin(self, name: str) -> str | None:
        """First-created authoritative replica (insertion order)."""
        if name not in self.authoritative:
            return None
        auth_locs = self.authoritative.locations(name)
        return auth_locs[0] if auth_locs else None

    def has_replica(self, name: str, site: str) -> bool:
        if self._truth:
            return self.authoritative.has_replica(name, site)
        return self._state.has_replica(name, site)

    def nearest_source(self, topology: Topology, name: str,
                       to_site: str) -> tuple[str, float]:
        if self._truth:
            return self.authoritative.nearest_source(topology, name, to_site)
        sources = self.locations(name)
        dataset = self.dataset(name)
        if not sources:
            raise DataFabricError(f"dataset {name!r} has no replicas")
        best_site, best_time = None, None
        for src in sources:
            est = topology.path_info(src, to_site).transfer_time(
                dataset.size_bytes)
            if best_time is None or est < best_time:
                best_site, best_time = src, est
        return best_site, best_time

    def bytes_at(self, site: str) -> float:
        if self._truth:
            return self.authoritative.bytes_at(site)
        return self._state.bytes_at(site)

    def datasets_at(self, site: str) -> list[Dataset]:
        if self._truth:
            return self.authoritative.datasets_at(site)
        return self._state.datasets_at(site)

    # -- transfer-source resolution with staleness accounting ---------------------
    def transfer_source(self, name: str, to_site: str) -> tuple[str, float]:
        """Pick the wire source for staging ``name`` to ``to_site``
        from the replicated view, booking divergence from the physical
        catalog as misplacement/waste, and guarding against *phantom*
        sources (the view says a replica exists; physically it
        doesn't — the puller discovers this and re-resolves against the
        authoritative catalog, paying an extra metadata round)."""
        if self._truth:
            # linearized read: the leader's image is the physical
            # catalog, so divergence is structurally impossible
            src, _ = self.authoritative.nearest_source(
                self.topology, name, to_site)
            return src, 0.0
        view_src = self._best_or_none(self._state, name, to_site)
        if view_src is None:
            # the follower view has never heard of this dataset's
            # replicas: pull from the origin the completion event named
            # (the only location known out-of-band), even if a closer
            # staged copy physically exists
            self.stats.fallback_reads += 1
            origin = self._origin(name)
            if origin is None:
                src, _ = self.authoritative.nearest_source(
                    self.topology, name, to_site)
                return src, 0.0
            size = self.authoritative.dataset(name).size_bytes
            view_src = (origin, self.topology.path_info(
                origin, to_site).transfer_time(size))
        src, est = view_src
        ref_src, ref_est = self.authoritative.nearest_source(
            self.topology, name, to_site)
        if src != ref_src:
            self.stats.misplacements += 1
            if est > ref_est:
                self.stats.wasted_bytes += \
                    self.authoritative.dataset(name).size_bytes
        if not self.authoritative.has_replica(name, src):
            self.stats.phantom_sources += 1
            # one wasted metadata round to discover and re-resolve
            return ref_src, 2.0 * self.session.config.local_read_rtt_s
        return src, 0.0

    def _best_or_none(self, state, name, to_site):
        if name not in state:
            return None
        try:
            return state.nearest_source(self.topology, name, to_site)
        except DataFabricError:
            return None


class RegistryView:
    """Endpoint liveness per the replicated registry."""

    def __init__(self, session: ControlPlaneSession):
        self.session = session

    def is_live(self, site: str) -> bool:
        return self.session.current_state().endpoint_live(site)

    @property
    def down_endpoints(self) -> list[str]:
        return self.session.current_state().down_endpoints
