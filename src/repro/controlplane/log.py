"""Replicated-log primitives: commands, entries, snapshots.

The control plane replicates *metadata mutations* — replica add/drop
and endpoint liveness — as a leader-ordered log. Commands are plain
data (op name + positional args) so entries hash, compare, and copy
trivially; the applied state machine lives in
:mod:`repro.controlplane.state`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ControlPlaneError

#: Operations a log entry may carry. ``noop`` is appended by a freshly
#: elected leader so entries from earlier terms become committable
#: (Raft §5.4.2); it does not touch catalog state.
COMMAND_OPS = (
    "noop",
    "register",
    "add_replica",
    "drop_replica",
    "endpoint_up",
    "endpoint_down",
)


@dataclass(frozen=True)
class Command:
    """One metadata mutation, as plain data.

    ``args`` by op:
      - ``noop``: ``()``
      - ``register``: ``(name, size_bytes, kind)``
      - ``add_replica``: ``(name, site, created_at)``
      - ``drop_replica``: ``(name, site)``
      - ``endpoint_up`` / ``endpoint_down``: ``(site,)``
    """

    op: str
    args: tuple = ()

    def __post_init__(self):
        if self.op not in COMMAND_OPS:
            raise ControlPlaneError(f"unknown command op {self.op!r}")


NOOP = Command("noop")


@dataclass(frozen=True)
class LogEntry:
    index: int
    term: int
    command: Command


@dataclass(frozen=True)
class Snapshot:
    """A compacted prefix: the state-machine image at ``last_index``."""

    last_index: int
    last_term: int
    state: dict  # ControlState.to_snapshot() document


class ReplicatedLog:
    """One node's log: a snapshot base plus the live entry suffix.

    Indices are 1-based as in the Raft paper; index 0 is the empty-log
    sentinel with term 0. After compaction, entries at or below
    ``base_index`` exist only inside the snapshot.
    """

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self.base_index = 0
        self.base_term = 0
        self.snapshot: Snapshot | None = None

    # -- shape -------------------------------------------------------------------
    @property
    def last_index(self) -> int:
        return self._entries[-1].index if self._entries else self.base_index

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else self.base_term

    def __len__(self) -> int:
        return len(self._entries)

    def term_at(self, index: int) -> int | None:
        """Term of ``index``, ``None`` when the entry is unknown (past
        the end, or compacted away below the snapshot base)."""
        if index == self.base_index:
            return self.base_term
        if index < self.base_index or index > self.last_index:
            return None
        return self._entries[index - self.base_index - 1].term

    def entry(self, index: int) -> LogEntry:
        if index <= self.base_index or index > self.last_index:
            raise ControlPlaneError(f"log entry {index} not available")
        return self._entries[index - self.base_index - 1]

    # -- mutation -----------------------------------------------------------------
    def append(self, term: int, command: Command) -> LogEntry:
        entry = LogEntry(self.last_index + 1, term, command)
        self._entries.append(entry)
        return entry

    def entries_from(self, index: int) -> tuple[LogEntry, ...]:
        """Entries at ``index`` and beyond (empty when up to date).
        Raises when ``index`` has been compacted away — the caller must
        fall back to snapshot installation."""
        if index <= self.base_index:
            raise ControlPlaneError(
                f"entries from {index} compacted (base {self.base_index})"
            )
        return tuple(self._entries[index - self.base_index - 1:])

    def truncate_from(self, index: int) -> None:
        """Drop ``index`` and everything after it (conflict repair)."""
        if index <= self.base_index:
            raise ControlPlaneError(
                f"cannot truncate into compacted prefix at {index}"
            )
        del self._entries[index - self.base_index - 1:]

    def compact(self, snapshot: Snapshot) -> None:
        """Discard entries covered by ``snapshot``, keeping the suffix."""
        if snapshot.last_index <= self.base_index:
            return
        keep = snapshot.last_index - self.base_index
        self._entries = self._entries[keep:]
        self.base_index = snapshot.last_index
        self.base_term = snapshot.last_term
        self.snapshot = snapshot

    def install(self, snapshot: Snapshot) -> None:
        """Replace the whole log with ``snapshot`` (follower catch-up
        when the leader has compacted past our tail)."""
        self._entries = []
        self.base_index = snapshot.last_index
        self.base_term = snapshot.last_term
        self.snapshot = snapshot
