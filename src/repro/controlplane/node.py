"""One control site's consensus participant (Raft-style).

Nodes are passive state machines: the :class:`ControlPlane` cluster
owns the clock, the message fabric, and the partition model, and calls
``on_timer`` / ``on_message`` as simulated time advances. Every handler
returns the messages it wants sent — ``(dst, msg)`` pairs — so all
delivery (lag, drops across partitions) is decided in one place and the
node itself stays deterministic and side-effect free.

Election timeouts are drawn per-node from named RNG streams
(``ctl:election:<id>``), so who wins each election is a pure function of
the run seed — the property the determinism tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.controlplane.log import NOOP, Command, LogEntry, ReplicatedLog, Snapshot
from repro.controlplane.state import ControlState
from repro.resilience.retry import RetryBudget


class Role(Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


# -- messages ---------------------------------------------------------------------
@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate: int
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class VoteReply:
    term: int
    voter: int
    granted: bool


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader: int
    prev_index: int
    prev_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int
    sent_at: float  # leader clock at send; echoed back for lease math


@dataclass(frozen=True)
class AppendReply:
    term: int
    follower: int
    success: bool
    match_index: int   # on success: last replicated index; on failure: hint
    sent_at: float     # echo of AppendEntries.sent_at


@dataclass(frozen=True)
class InstallSnapshot:
    term: int
    leader: int
    snapshot: Snapshot
    sent_at: float


@dataclass(frozen=True)
class SnapshotReply:
    term: int
    follower: int
    match_index: int
    sent_at: float


class RaftNode:
    """Consensus state for one control site (id ``0..n-1``)."""

    def __init__(self, node_id: int, n_nodes: int, *, election_rng,
                 heartbeat_interval_s: float,
                 election_timeout_s: tuple[float, float],
                 snapshot_threshold: int,
                 catchup_budget: RetryBudget | None = None):
        self.id = node_id
        self.n = n_nodes
        self.quorum = n_nodes // 2 + 1
        self._rng = election_rng
        self.heartbeat_interval_s = heartbeat_interval_s
        self.election_timeout_s = election_timeout_s
        self.snapshot_threshold = snapshot_threshold
        # out-of-band catch-up resends (beyond heartbeats) draw on a
        # retry budget so a flapping follower cannot turn the leader
        # into a resend firehose
        self.catchup_budget = catchup_budget

        self.term = 0
        self.voted_for: int | None = None
        self.role = Role.FOLLOWER
        self.leader_hint: int | None = None
        self.log = ReplicatedLog()
        self.commit_index = 0
        self.state = ControlState()

        self.election_deadline = self._draw_timeout(0.0)
        self.last_leader_contact = 0.0
        self.elections_started = 0
        self.terms_led: list[int] = []

        # leader-only bookkeeping
        self.next_index: dict[int, int] = {}
        self.match_index: dict[int, int] = {}
        self.ack_time: dict[int, float] = {}  # newest acked sent_at per peer
        self.heartbeat_due = 0.0
        self._votes: set[int] = set()

    # -- timeouts -----------------------------------------------------------------
    def _draw_timeout(self, now: float) -> float:
        lo, hi = self.election_timeout_s
        return now + float(self._rng.uniform(lo, hi))

    @property
    def peers(self) -> list[int]:
        return [i for i in range(self.n) if i != self.id]

    def next_deadline(self) -> float:
        """When this node next wants a timer callback."""
        if self.role is Role.LEADER:
            return self.heartbeat_due
        return self.election_deadline

    # -- role transitions ---------------------------------------------------------
    def _become_follower(self, term: int) -> None:
        if term > self.term:
            self.term = term
            self.voted_for = None
        self.role = Role.FOLLOWER
        self._votes = set()

    def _become_leader(self, now: float) -> list[tuple[int, object]]:
        self.role = Role.LEADER
        self.leader_hint = self.id
        self.terms_led.append(self.term)
        self.next_index = {p: self.log.last_index + 1 for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        self.ack_time = {p: float("-inf") for p in self.peers}
        self.heartbeat_due = now + self.heartbeat_interval_s
        # barrier entry: lets this leader commit predecessors' entries
        self.log.append(self.term, NOOP)
        return [(p, self._append_for(p, now)) for p in self.peers]

    # -- timer events -------------------------------------------------------------
    def on_timer(self, now: float) -> list[tuple[int, object]]:
        if self.role is Role.LEADER:
            if now < self.heartbeat_due:
                return []
            self.heartbeat_due = now + self.heartbeat_interval_s
            self.maybe_compact()
            return [(p, self._append_for(p, now)) for p in self.peers]
        if now < self.election_deadline:
            return []
        # start (or restart) an election
        self.term += 1
        self.role = Role.CANDIDATE
        self.voted_for = self.id
        self._votes = {self.id}
        self.leader_hint = None
        self.elections_started += 1
        self.election_deadline = self._draw_timeout(now)
        if self.quorum == 1:
            return self._become_leader(now)
        msg = RequestVote(self.term, self.id, self.log.last_index,
                          self.log.last_term)
        return [(p, msg) for p in self.peers]

    # -- client entry point (leader only) ------------------------------------------
    def propose(self, command: Command, now: float) -> LogEntry:
        assert self.role is Role.LEADER
        entry = self.log.append(self.term, command)
        if self.quorum == 1:
            self._advance_commit()
        return entry

    # -- message handling ---------------------------------------------------------
    def on_message(self, msg, now: float) -> list[tuple[int, object]]:
        if msg.term > self.term:
            self._become_follower(msg.term)
        if isinstance(msg, RequestVote):
            return self._on_request_vote(msg, now)
        if isinstance(msg, VoteReply):
            return self._on_vote_reply(msg, now)
        if isinstance(msg, AppendEntries):
            return self._on_append(msg, now)
        if isinstance(msg, AppendReply):
            return self._on_append_reply(msg, now)
        if isinstance(msg, InstallSnapshot):
            return self._on_install_snapshot(msg, now)
        if isinstance(msg, SnapshotReply):
            return self._on_snapshot_reply(msg, now)
        return []

    def _on_request_vote(self, msg: RequestVote, now: float):
        granted = False
        if msg.term == self.term and self.voted_for in (None, msg.candidate):
            up_to_date = (msg.last_log_term, msg.last_log_index) >= (
                self.log.last_term, self.log.last_index)
            if up_to_date:
                granted = True
                self.voted_for = msg.candidate
                self.election_deadline = self._draw_timeout(now)
        return [(msg.candidate, VoteReply(self.term, self.id, granted))]

    def _on_vote_reply(self, msg: VoteReply, now: float):
        if self.role is not Role.CANDIDATE or msg.term != self.term:
            return []
        if msg.granted:
            self._votes.add(msg.voter)
            if len(self._votes) >= self.quorum:
                return self._become_leader(now)
        return []

    def _on_append(self, msg: AppendEntries, now: float):
        if msg.term < self.term:
            return [(msg.leader,
                     AppendReply(self.term, self.id, False,
                                 self.log.last_index, msg.sent_at))]
        # valid leader for our term
        self._become_follower(msg.term)
        self.leader_hint = msg.leader
        self.last_leader_contact = now
        self.election_deadline = self._draw_timeout(now)

        prev_term = self.log.term_at(msg.prev_index)
        if prev_term is None or prev_term != msg.prev_term:
            # missing or conflicting prev entry: hint how far back to go
            hint = min(self.log.last_index, max(msg.prev_index - 1, 0))
            return [(msg.leader,
                     AppendReply(self.term, self.id, False, hint,
                                 msg.sent_at))]
        match = msg.prev_index
        for entry in msg.entries:
            if entry.index <= self.log.base_index:
                match = max(match, entry.index)
                continue  # already compacted == already committed here
            existing = self.log.term_at(entry.index)
            if existing is not None and existing != entry.term:
                self.log.truncate_from(entry.index)
                existing = None
            if existing is None:
                self.log.append(entry.term, entry.command)
            match = entry.index
        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.log.last_index)
            self._apply_committed()
        self.maybe_compact()
        return [(msg.leader,
                 AppendReply(self.term, self.id, True, match, msg.sent_at))]

    def _on_append_reply(self, msg: AppendReply, now: float):
        if self.role is not Role.LEADER or msg.term != self.term:
            return []
        peer = msg.follower
        self.ack_time[peer] = max(self.ack_time.get(peer, float("-inf")),
                                  msg.sent_at)
        if msg.success:
            if msg.match_index > self.match_index.get(peer, 0):
                self.match_index[peer] = msg.match_index
            self.next_index[peer] = max(self.next_index.get(peer, 1),
                                        msg.match_index + 1)
            self._advance_commit()
            if (self.next_index[peer] <= self.log.last_index
                    and self._may_resend()):
                return [(peer, self._append_for(peer, now))]
            return []
        # log mismatch: back off next_index toward the follower's hint
        self.next_index[peer] = max(
            1, min(self.next_index.get(peer, 1) - 1, msg.match_index + 1))
        if self._may_resend():
            return [(peer, self._append_for(peer, now))]
        return []

    def _on_install_snapshot(self, msg: InstallSnapshot, now: float):
        if msg.term < self.term:
            return [(msg.leader,
                     SnapshotReply(self.term, self.id, self.log.last_index,
                                   msg.sent_at))]
        self._become_follower(msg.term)
        self.leader_hint = msg.leader
        self.last_leader_contact = now
        self.election_deadline = self._draw_timeout(now)
        snap = msg.snapshot
        if snap.last_index > self.log.base_index:
            if snap.last_index <= self.log.last_index and \
                    self.log.term_at(snap.last_index) == snap.last_term:
                self.log.compact(snap)  # snapshot covers a prefix we hold
            else:
                self.log.install(snap)
            if snap.last_index > self.commit_index:
                self.commit_index = snap.last_index
            if snap.last_index > self.state.applied_index:
                self.state = ControlState.from_snapshot(snap.state)
        return [(msg.leader,
                 SnapshotReply(self.term, self.id, self.log.base_index,
                               msg.sent_at))]

    def _on_snapshot_reply(self, msg: SnapshotReply, now: float):
        if self.role is not Role.LEADER or msg.term != self.term:
            return []
        peer = msg.follower
        self.ack_time[peer] = max(self.ack_time.get(peer, float("-inf")),
                                  msg.sent_at)
        if msg.match_index > self.match_index.get(peer, 0):
            self.match_index[peer] = msg.match_index
        self.next_index[peer] = max(self.next_index.get(peer, 1),
                                    msg.match_index + 1)
        if (self.next_index[peer] <= self.log.last_index
                and self._may_resend()):
            return [(peer, self._append_for(peer, now))]
        return []

    # -- leader internals ---------------------------------------------------------
    def _may_resend(self) -> bool:
        if self.catchup_budget is None:
            return True
        return self.catchup_budget.acquire()

    def _append_for(self, peer: int, now: float):
        """Build the AppendEntries (or InstallSnapshot) for ``peer``."""
        nxt = self.next_index.get(peer, self.log.last_index + 1)
        if nxt <= self.log.base_index:
            snap = self.log.snapshot or Snapshot(
                self.log.base_index, self.log.base_term,
                self.state.to_snapshot())
            return InstallSnapshot(self.term, self.id, snap, now)
        prev_index = nxt - 1
        prev_term = self.log.term_at(prev_index)
        entries = self.log.entries_from(nxt)
        return AppendEntries(self.term, self.id, prev_index, prev_term,
                             entries, self.commit_index, now)

    def _advance_commit(self) -> None:
        """Commit the highest current-term index replicated on a
        quorum (Raft §5.4.2: never count older-term replicas)."""
        for idx in range(self.log.last_index, self.commit_index, -1):
            if self.log.term_at(idx) != self.term:
                break
            replicated = 1 + sum(
                1 for p in self.peers if self.match_index.get(p, 0) >= idx)
            if replicated >= self.quorum:
                self.commit_index = idx
                break
        self._apply_committed()

    def lease_valid(self, now: float, lease_duration_s: float) -> bool:
        """Leader lease: quorum-acked heartbeat rounds extend a lease of
        ``lease_duration_s`` past the (quorum-1)-th freshest ack time.
        Only within the lease may the leader serve local reads without a
        quorum round-trip."""
        if self.role is not Role.LEADER:
            return False
        acks = sorted((self.ack_time.get(p, float("-inf"))
                       for p in self.peers), reverse=True)
        need = self.quorum - 1  # leader vouches for itself
        if need == 0:
            return True
        anchor = acks[need - 1]
        return now < anchor + lease_duration_s

    # -- apply / compaction -------------------------------------------------------
    def _apply_committed(self) -> None:
        while self.state.applied_index < self.commit_index:
            idx = self.state.applied_index + 1
            entry = self.log.entry(idx)
            self.state.apply(entry.command, idx)

    def maybe_compact(self) -> None:
        """Snapshot + truncate once the applied suffix outgrows the
        threshold. Only applied (hence committed) entries compact, so a
        snapshot never contains uncommitted writes."""
        applied = self.state.applied_index
        if applied - self.log.base_index < self.snapshot_threshold:
            return
        snap = Snapshot(applied, self.log.term_at(applied) or 0,
                        self.state.to_snapshot())
        self.log.compact(snap)
