"""The simulated control-plane cluster: N Raft nodes, one message fabric.

The cluster is *clock-passive*: it never schedules anything on the
discrete-event kernel. Callers (the scheduler, a session, tests) push
simulated time forward with :meth:`ControlPlane.advance`, and the plane
drains its internal ``(deliver_at, seq)``-ordered queue plus node
timers up to that instant. ``advance`` is monotone and idempotent for
``now`` at or below the internal clock, so any layer may call it freely
without perturbing another layer's view — the same discipline the
resilience breakers use.

Partitions split the *control* sites into islands; data-plane traffic
and client→control messages are unaffected (a client can always reach
its nearest control site — it just might learn stale things from it).
A minority island's leader keeps accepting proposals but can never
reach quorum, so no write is ever acknowledged from a minority: the
split-brain safety the acceptance tests pin.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.controlplane.log import Command
from repro.controlplane.node import RaftNode, Role
from repro.errors import ControlPlaneError
from repro.faults.partitions import PartitionWindow
from repro.resilience.retry import RetryBudget
from repro.utils.rng import RngRegistry
from repro.utils.validation import check_non_negative, check_positive

READ_MODES = ("quorum", "stale", "lease")


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Replication knobs for one run (all seconds, simulated).

    ``replication_lag_s`` is the one-way message delay between control
    sites — the single most important knob: stale reads diverge by
    roughly the lag × mutation rate, quorum reads pay ~4× lag.
    """

    n_sites: int = 3
    replication_lag_s: float = 0.05
    heartbeat_interval_s: float = 0.5
    election_timeout_s: tuple[float, float] = (3.0, 6.0)
    lease_duration_s: float = 2.0
    snapshot_threshold: int = 64
    read_mode: str = "quorum"
    local_read_rtt_s: float = 0.002
    max_staleness_s: float = 5.0
    attached_node: int = 0
    warm_start: bool = True
    read_retry_interval_s: float = 1.0
    max_read_retries: int = 12
    catchup_max_fast: int = 64
    catchup_cooldown_s: float = 5.0
    rpc_failure_threshold: int = 3
    rpc_reset_timeout_s: float = 10.0

    def __post_init__(self):
        if self.n_sites < 1:
            raise ControlPlaneError(
                f"n_sites must be >= 1, got {self.n_sites}")
        if self.read_mode not in READ_MODES:
            raise ControlPlaneError(
                f"unknown read mode {self.read_mode!r}; known: {READ_MODES}")
        check_non_negative("replication_lag_s", self.replication_lag_s)
        check_positive("heartbeat_interval_s", self.heartbeat_interval_s)
        lo, hi = self.election_timeout_s
        if not (0 < lo < hi):
            raise ControlPlaneError(
                f"election_timeout_s must be an increasing positive pair, "
                f"got {self.election_timeout_s}")
        if lo <= 2 * self.heartbeat_interval_s:
            raise ControlPlaneError(
                "election timeout must exceed two heartbeat intervals or "
                "healthy leaders get deposed")
        check_positive("lease_duration_s", self.lease_duration_s)
        if self.snapshot_threshold < 1:
            raise ControlPlaneError(
                f"snapshot_threshold must be >= 1, got "
                f"{self.snapshot_threshold}")
        check_non_negative("local_read_rtt_s", self.local_read_rtt_s)
        check_positive("max_staleness_s", self.max_staleness_s)
        if not 0 <= self.attached_node < self.n_sites:
            raise ControlPlaneError(
                f"attached_node {self.attached_node} outside cluster of "
                f"{self.n_sites}")
        check_positive("read_retry_interval_s", self.read_retry_interval_s)

    @classmethod
    def for_lag(cls, replication_lag_s: float, *, n_sites: int = 5,
                read_mode: str = "quorum", **overrides) -> "ControlPlaneConfig":
        """Derive mutually consistent timers from the lag: heartbeats a
        few RTTs apart, election timeouts several heartbeats beyond
        that, leases strictly inside the election minimum."""
        check_non_negative("replication_lag_s", replication_lag_s)
        hb = max(2.5 * replication_lag_s, 0.2)
        defaults = dict(
            n_sites=n_sites,
            replication_lag_s=replication_lag_s,
            heartbeat_interval_s=hb,
            election_timeout_s=(6.0 * hb, 12.0 * hb),
            lease_duration_s=4.0 * hb,
            read_mode=read_mode,
            max_staleness_s=max(10.0 * replication_lag_s, 8.0 * hb),
            read_retry_interval_s=2.0 * hb,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class WriteTicket:
    """Tracks one submitted command to its ack (or supersession)."""

    command: Command
    submitted_at: float
    index: int | None = None
    term: int | None = None
    leader: int | None = None
    acked_at: float | None = None
    failed: bool = False

    @property
    def acked(self) -> bool:
        return self.acked_at is not None

    @property
    def commit_latency_s(self) -> float | None:
        if self.acked_at is None:
            return None
        return self.acked_at - self.submitted_at


@dataclass
class _ClientRequest:
    ticket: WriteTicket


@dataclass
class PartitionEvent:
    """What actually happened when a window opened (for reports)."""

    window: PartitionWindow
    started_at: float
    island: tuple[int, ...] = ()
    healed_at: float | None = None


class ControlPlane:
    """N replicated control sites plus the lagged message fabric."""

    def __init__(self, config: ControlPlaneConfig,
                 rngs: RngRegistry | None = None):
        self.config = config
        rngs = rngs or RngRegistry(0)
        self.catchup_budget = RetryBudget(
            max_fast_retries=config.catchup_max_fast,
            cooldown_s=config.catchup_cooldown_s)
        self.nodes = [
            RaftNode(
                i, config.n_sites,
                election_rng=rngs.stream(f"ctl:election:{i}"),
                heartbeat_interval_s=config.heartbeat_interval_s,
                election_timeout_s=config.election_timeout_s,
                snapshot_threshold=config.snapshot_threshold,
                catchup_budget=self.catchup_budget,
            )
            for i in range(config.n_sites)
        ]
        self._time = 0.0
        self._started = False
        self._queue: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self._islands: list[frozenset[int]] | None = None
        self._outbox: list[WriteTicket] = []
        self._pending: list[WriteTicket] = []
        self.partition_events: list[PartitionEvent] = []
        # counters
        self.messages_sent = 0
        self.messages_dropped = 0
        self.writes_submitted = 0
        self.writes_acked = 0
        self.writes_failed = 0
        self.commit_latencies: list[float] = []
        # steady-state start: a long-running federation already has a
        # leader; elections only matter when it fails. Installed lazily
        # on the first advance so bootstrap entries (term 0) land below
        # the initial leader's term-1 barrier entry.
        self._warm_leader: int | None = None
        if config.warm_start:
            self._warm_leader = int(
                rngs.stream("ctl:boot").integers(config.n_sites))

    def _ensure_warm(self) -> None:
        if self._warm_leader is None:
            return
        leader_id, self._warm_leader = self._warm_leader, None
        leader = self.nodes[leader_id]
        leader.term = 1
        leader.voted_for = leader_id
        for node in self.nodes:
            if node.id != leader_id:
                node.term = 1
                node.voted_for = leader_id
                node.leader_hint = leader_id
        self._send_all(leader_id, leader._become_leader(0.0), 0.0)
        # the pre-run heartbeat round is assumed acked at t=0, so the
        # steady-state lease is live from the start
        leader.ack_time = {p: 0.0 for p in leader.peers}

    # -- time ----------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._time

    def advance(self, now: float) -> None:
        """Drain messages and timers up to ``now`` in deterministic
        ``(time, kind, seq-or-node)`` order. No-op for ``now`` at or
        below the internal clock."""
        if now < self._time:
            return
        self._ensure_warm()
        if now > 0.0:
            self._started = True
        while True:
            t_msg = self._queue[0][0] if self._queue else None
            t_timer, timer_node = self._next_timer()
            # messages win ties so a heartbeat arriving exactly at an
            # election deadline suppresses the election
            if t_msg is not None and t_msg <= t_timer:
                if t_msg > now:
                    break
                t, _seq, dst, msg = heapq.heappop(self._queue)
                self._time = max(self._time, t)
                self._deliver(dst, msg, t)
            else:
                if t_timer > now:
                    break
                self._time = max(self._time, t_timer)
                node = self.nodes[timer_node]
                self._send_all(timer_node, node.on_timer(t_timer), t_timer)
                self._settle(t_timer)
        self._time = max(self._time, now)
        self._drain_outbox(self._time)

    def _next_timer(self) -> tuple[float, int]:
        best_t, best_i = float("inf"), -1
        for node in self.nodes:
            t = node.next_deadline()
            if t < best_t:
                best_t, best_i = t, node.id
        return best_t, best_i

    # -- fabric --------------------------------------------------------------------
    def reachable(self, a: int, b: int) -> bool:
        if a == b:
            return True
        if self._islands is None:
            return True
        for island in self._islands:
            if a in island:
                return b in island
        return False

    def _send_all(self, src: int, outgoing, now: float) -> None:
        for dst, msg in outgoing:
            self.messages_sent += 1
            if not self.reachable(src, dst):
                self.messages_dropped += 1
                continue
            self._seq += 1
            heapq.heappush(
                self._queue,
                (now + self.config.replication_lag_s, self._seq, dst, msg))

    def _deliver(self, dst: int, msg, t: float) -> None:
        if isinstance(msg, _ClientRequest):
            self._deliver_client(dst, msg.ticket, t)
            return
        sender = getattr(msg, "leader", None)
        if sender is None:
            sender = getattr(msg, "candidate", None)
        if sender is None:
            sender = getattr(msg, "voter", None)
        if sender is None:
            sender = getattr(msg, "follower", None)
        # partition applies at delivery too: packets in flight when the
        # split lands are lost with it
        if sender is not None and not self.reachable(int(sender), dst):
            self.messages_dropped += 1
            return
        node = self.nodes[dst]
        self._send_all(dst, node.on_message(msg, t), t)
        self._settle(t)

    def _settle(self, t: float) -> None:
        """Post-event bookkeeping: resolve pending write tickets."""
        if not self._pending:
            return
        still = []
        for ticket in self._pending:
            if self._resolve_ticket(ticket, t):
                continue
            still.append(ticket)
        self._pending = still

    def _resolve_ticket(self, ticket: WriteTicket, t: float) -> bool:
        idx, term = ticket.index, ticket.term
        for node in self.nodes:
            if node.commit_index >= idx:
                committed_term = node.log.term_at(idx)
                if committed_term is None:
                    # compacted: committed with *some* term; the entry
                    # survived iff the proposing leader's state has it
                    committed_term = term if node.state.applied_index >= idx \
                        else None
                if committed_term == term:
                    ticket.acked_at = t
                    self.writes_acked += 1
                    self.commit_latencies.append(t - ticket.submitted_at)
                    return True
                if committed_term is not None:
                    ticket.failed = True
                    self.writes_failed += 1
                    return True
        return False

    # -- clients --------------------------------------------------------------------
    def submit(self, command: Command, now: float, *,
               target: int | None = None) -> WriteTicket:
        """Submit a mutation; returns a ticket that resolves when a
        quorum commits (acks never come from minority leaders — they
        cannot advance their commit index)."""
        self.advance(now)
        self.writes_submitted += 1
        ticket = WriteTicket(command, now)
        leader = target if target is not None else self.leader_id()
        if leader is None:
            self._outbox.append(ticket)
        else:
            self._seq += 1
            heapq.heappush(
                self._queue,
                (now + self.config.replication_lag_s, self._seq, leader,
                 _ClientRequest(ticket)))
        return ticket

    def _deliver_client(self, dst: int, ticket: WriteTicket, t: float) -> None:
        node = self.nodes[dst]
        if node.role is Role.LEADER:
            entry = node.propose(ticket.command, t)
            ticket.index, ticket.term, ticket.leader = (
                entry.index, entry.term, dst)
            self._pending.append(ticket)
            self._send_all(dst, [(p, node._append_for(p, t))
                                 for p in node.peers], t)
            self._settle(t)
            return
        hint = node.leader_hint
        if hint is not None and hint != dst:
            self._seq += 1
            heapq.heappush(
                self._queue,
                (t + self.config.replication_lag_s, self._seq, hint,
                 _ClientRequest(ticket)))
        else:
            self._outbox.append(ticket)

    def _drain_outbox(self, now: float) -> None:
        if not self._outbox:
            return
        leader = self.leader_id()
        if leader is None:
            return
        box, self._outbox = self._outbox, []
        for ticket in box:
            self._seq += 1
            heapq.heappush(
                self._queue,
                (now + self.config.replication_lag_s, self._seq, leader,
                 _ClientRequest(ticket)))

    # -- cluster views ---------------------------------------------------------------
    def leader_id(self) -> int | None:
        """The highest-term leader (clients discover via any node); a
        deposed minority leader loses this title the moment a majority
        elects a successor at a higher term."""
        self._ensure_warm()
        best = None
        for node in self.nodes:
            if node.role is Role.LEADER:
                if best is None or node.term > self.nodes[best].term:
                    best = node.id
        return best

    def node_state(self, node_id: int):
        return self.nodes[node_id].state

    def quorum_connected(self, node_id: int) -> bool:
        if self._islands is None:
            return True
        quorum = self.config.n_sites // 2 + 1
        for island in self._islands:
            if node_id in island:
                return len(island) >= quorum
        return False

    def committed_state(self):
        """The most-applied node's state = the longest committed prefix
        (unique by log matching); the reference truth for staleness
        accounting."""
        best = self.nodes[0]
        for node in self.nodes[1:]:
            if node.state.applied_index > best.state.applied_index:
                best = node
        return best.state

    def freshest_node(self) -> int:
        best = self.nodes[0]
        for node in self.nodes[1:]:
            if node.last_leader_contact > best.last_leader_contact:
                best = node
        return best.id

    @property
    def elections_started(self) -> int:
        return sum(n.elections_started for n in self.nodes)

    @property
    def leader_changes(self) -> int:
        return sum(len(n.terms_led) for n in self.nodes)

    def fingerprints(self) -> list[tuple]:
        return [n.state.fingerprint() for n in self.nodes]

    def converged(self) -> bool:
        """All nodes applied the same prefix up to the max commit."""
        target = max(n.commit_index for n in self.nodes)
        return all(n.state.applied_index == target for n in self.nodes) and \
            len(set(self.fingerprints())) == 1

    # -- bootstrap -------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """True once simulated time has advanced past zero — from then
        on logs may diverge (elections, partitions) and only replicated
        writes keep them consistent."""
        return self._started

    def bootstrap(self, commands: list[Command]) -> None:
        """Install ``commands`` as a pre-replicated committed prefix on
        every node — initial dataset registrations and seed replicas
        that exist before the run starts (no replication cost: the
        federation converged on them long ago). Illegal once the plane
        has started: direct multi-log appends would corrupt consensus."""
        if self._started:
            raise ControlPlaneError(
                "bootstrap after the control plane started; submit a "
                "replicated write instead"
            )
        for node in self.nodes:
            for command in commands:
                entry = node.log.append(0, command)
                node.commit_index = entry.index
            node._apply_committed()

    # -- partitions ------------------------------------------------------------------
    def begin_partition(self, window: PartitionWindow, now: float) -> PartitionEvent:
        self.advance(now)
        if window.style == "leader":
            leader = self.leader_id()
            if leader is None:
                # no leader to isolate: pick the max-term node (it is
                # the likeliest next winner), deterministically
                leader = max(self.nodes, key=lambda n: (n.term, -n.id)).id
            island = frozenset([leader])
        else:
            island = frozenset(window.island)
        rest = frozenset(range(self.config.n_sites)) - island
        self._islands = [island, rest] if rest else [island]
        event = PartitionEvent(window, now, tuple(sorted(island)))
        self.partition_events.append(event)
        return event

    def end_partition(self, now: float) -> None:
        self.advance(now)
        self._islands = None
        for event in reversed(self.partition_events):
            if event.healed_at is None:
                event.healed_at = now
                break

    @property
    def partitioned(self) -> bool:
        return self._islands is not None
