"""Per-run bundle: plane + session + mirrored catalog + views.

The scheduler owns one :class:`ControlRuntime` when a run opts into the
replicated control plane (``control=ControlPlaneConfig(...)``). It
wires the catalog mirror, the client session, and the planner-facing
views together so the scheduler touches one object instead of five.
"""

from __future__ import annotations

from repro.continuum.topology import Topology
from repro.controlplane.cluster import ControlPlane, ControlPlaneConfig
from repro.controlplane.session import ControlPlaneSession, ControlPlaneStats
from repro.controlplane.view import (
    MirroredCatalog, RegistryView, ReplicatedCatalogView,
)
from repro.faults.partitions import PartitionSchedule, PartitionWindow
from repro.utils.rng import RngRegistry


class ControlRuntime:
    """Everything one scheduled run needs from the control plane."""

    def __init__(self, config: ControlPlaneConfig, topology: Topology,
                 *, rngs: RngRegistry | None = None):
        self.config = config
        self.plane = ControlPlane(config, rngs=rngs)
        self.stats = ControlPlaneStats()
        self.session = ControlPlaneSession(self.plane, stats=self.stats)
        self.catalog = MirroredCatalog(self.plane)
        self.view = ReplicatedCatalogView(self.session, self.catalog, topology)
        self.registry = RegistryView(self.session)

    def bind_clock(self, clock) -> None:
        self.catalog.bind_clock(clock)

    def emit_metrics(self, registry) -> None:
        """Re-emit the run's control-plane activity through a metrics
        registry (no-op when disabled): read-path counters labeled by
        consistency mode, election/commit activity, and the commit /
        read latency distributions as histograms."""
        if not registry.enabled:
            return
        s = self.stats
        reads = registry.counter(
            "controlplane_reads_total",
            "Metadata reads by consistency mode actually served",
            ("mode",))
        reads.labels(mode="quorum").inc(s.quorum_reads)
        reads.labels(mode="lease").inc(s.lease_reads)
        reads.labels(mode="stale").inc(s.stale_reads)
        for name, help_, value in (
            ("controlplane_degraded_reads_total",
             "Quorum/lease demands served stale during partitions",
             s.degraded_reads),
            ("controlplane_failover_reads_total",
             "Stale reads re-pointed to a fresher node", s.failover_reads),
            ("controlplane_staleness_violations_total",
             "Reads where even the freshest node exceeded the bound",
             s.staleness_violations),
            ("controlplane_unavailable_events_total",
             "Leaderless windows a read had to wait out",
             s.unavailable_events),
            ("controlplane_unavailable_seconds_total",
             "Simulated seconds spent waiting out leaderless windows",
             s.unavailable_s),
            ("controlplane_misplacements_total",
             "Placements where the view disagreed with physical truth",
             s.misplacements),
            ("controlplane_wasted_bytes_total",
             "Bytes pulled from a strictly worse source", s.wasted_bytes),
            ("controlplane_phantom_sources_total",
             "View offered a replica that wasn't there", s.phantom_sources),
            ("controlplane_fallback_reads_total",
             "View empty, authoritative answer used", s.fallback_reads),
            ("controlplane_elections_total",
             "Leader elections started across the cluster",
             self.plane.elections_started),
            ("controlplane_leader_changes_total",
             "Distinct terms led across the cluster",
             self.plane.leader_changes),
            ("controlplane_commits_total",
             "Replicated log commits", len(self.plane.commit_latencies)),
        ):
            registry.counter(name, help_).inc(value)
        read_h = registry.histogram(
            "controlplane_read_latency_seconds",
            "Metadata read latency distribution",
            start=1e-4, factor=2.0, count=30)
        for lat in s.read_latencies:
            read_h.observe(lat)
        commit_h = registry.histogram(
            "controlplane_commit_latency_seconds",
            "Replicated log commit latency distribution",
            start=1e-4, factor=2.0, count=30)
        for lat in self.plane.commit_latencies:
            commit_h.observe(lat)

    def placement_read(self, now: float) -> float:
        return self.session.placement_read(now)

    def begin_partition(self, window: PartitionWindow, now: float) -> None:
        self.plane.begin_partition(window, now)

    def end_partition(self, now: float) -> None:
        self.plane.end_partition(now)

    def arm_partitions(self, sim, schedule: PartitionSchedule) -> None:
        """Schedule every window's split and heal on the simulator; the
        plane resolves leader-style islands at fire time."""
        schedule.validate_against(self.config.n_sites)
        for window in schedule.windows:
            def begin(w=window):
                self.plane.begin_partition(w, sim.now)

            def end():
                self.plane.end_partition(sim.now)

            sim.schedule_at(window.start_s, begin)
            sim.schedule_at(window.end_s, end)
