"""Per-run bundle: plane + session + mirrored catalog + views.

The scheduler owns one :class:`ControlRuntime` when a run opts into the
replicated control plane (``control=ControlPlaneConfig(...)``). It
wires the catalog mirror, the client session, and the planner-facing
views together so the scheduler touches one object instead of five.
"""

from __future__ import annotations

from repro.continuum.topology import Topology
from repro.controlplane.cluster import ControlPlane, ControlPlaneConfig
from repro.controlplane.session import ControlPlaneSession, ControlPlaneStats
from repro.controlplane.view import (
    MirroredCatalog, RegistryView, ReplicatedCatalogView,
)
from repro.faults.partitions import PartitionSchedule, PartitionWindow
from repro.utils.rng import RngRegistry


class ControlRuntime:
    """Everything one scheduled run needs from the control plane."""

    def __init__(self, config: ControlPlaneConfig, topology: Topology,
                 *, rngs: RngRegistry | None = None):
        self.config = config
        self.plane = ControlPlane(config, rngs=rngs)
        self.stats = ControlPlaneStats()
        self.session = ControlPlaneSession(self.plane, stats=self.stats)
        self.catalog = MirroredCatalog(self.plane)
        self.view = ReplicatedCatalogView(self.session, self.catalog, topology)
        self.registry = RegistryView(self.session)

    def bind_clock(self, clock) -> None:
        self.catalog.bind_clock(clock)

    def placement_read(self, now: float) -> float:
        return self.session.placement_read(now)

    def begin_partition(self, window: PartitionWindow, now: float) -> None:
        self.plane.begin_partition(window, now)

    def end_partition(self, now: float) -> None:
        self.plane.end_partition(now)

    def arm_partitions(self, sim, schedule: PartitionSchedule) -> None:
        """Schedule every window's split and heal on the simulator; the
        plane resolves leader-style islands at fire time."""
        schedule.validate_against(self.config.n_sites)
        for window in schedule.windows:
            def begin(w=window):
                self.plane.begin_partition(w, sim.now)

            def end():
                self.plane.end_partition(sim.now)

            sim.schedule_at(window.start_s, begin)
            sim.schedule_at(window.end_s, end)
