"""Client sessions against the control plane: the three read modes.

A session belongs to one metadata client (the scheduler run). Each
*placement read* resolves a consistent state image to plan against and
returns the simulated latency that resolution cost:

- ``stale``  — read the attached control site's applied state. One
  local RTT. If the attached site hasn't heard from a leader within
  ``max_staleness_s``, fail over to the freshest reachable site (the
  bounded-lag promise) and count the violation if even that is stale.
- ``lease``  — read the leader's local state while its quorum lease
  holds: one client→leader round trip (2× replication lag), no quorum
  round. Falls back to the retry path when no leased leader exists.
- ``quorum`` — leader confirms leadership with a quorum round before
  answering: 4× replication lag (client→leader→quorum→leader→client),
  but the answer is the leader's image — linearizable, and immune to
  stale-view misplacement by construction.

The leader is the serialization point for every catalog mutation: a
site registers a replica with the live leader the moment the bytes
land, so the leader's image *is* the physical ground truth (commit
acks to the writer still pay the quorum round — that cost shows up in
write tickets, not reads). Follower images lag behind by replication +
heartbeat delay, which is exactly the staleness the ``stale`` mode
trades latency for. Reads that resolve at a leased or
quorum-confirmed leader therefore pin ``truth``; everything else pins
a follower's applied state.

Unavailability (no reachable leader with quorum, e.g. mid-failover) is
handled with deterministic retry probes paced by
``read_retry_interval_s``; a circuit breaker on the leader RPC path
short-circuits repeat probing during long outages, and after
``max_read_retries`` the read *degrades* to stale (counted) rather than
blocking placement forever — the continuum keeps scheduling on old maps
when the control plane is sick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.controlplane.cluster import ControlPlane
from repro.controlplane.state import ControlState
from repro.resilience.breaker import (
    BreakerConfig, BreakerRegistry, BreakerState,
)


@dataclass
class ControlPlaneStats:
    """What one run's metadata access actually cost."""

    reads: int = 0
    read_latencies: list = field(default_factory=list)
    quorum_reads: int = 0
    lease_reads: int = 0
    stale_reads: int = 0
    degraded_reads: int = 0       # quorum/lease demands served stale
    failover_reads: int = 0       # stale reads re-pointed to a fresher node
    staleness_violations: int = 0  # even the freshest node exceeded the bound
    unavailable_s: float = 0.0    # time spent waiting out leaderless windows
    unavailable_events: int = 0
    misplacements: int = 0        # view disagreed with physical truth
    wasted_bytes: float = 0.0     # bytes pulled from a strictly worse source
    phantom_sources: int = 0      # view offered a replica that wasn't there
    fallback_reads: int = 0       # view empty -> authoritative answer used

    def read_latency_p99(self) -> float:
        if not self.read_latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.read_latencies), 99))

    def read_latency_mean(self) -> float:
        if not self.read_latencies:
            return 0.0
        return float(np.mean(np.asarray(self.read_latencies)))


class ControlPlaneSession:
    """One client's read path; pins the state image reads resolve to."""

    def __init__(self, plane: ControlPlane,
                 stats: ControlPlaneStats | None = None):
        self.plane = plane
        self.config = plane.config
        self.stats = stats or ControlPlaneStats()
        self.breakers = BreakerRegistry(BreakerConfig(
            failure_threshold=self.config.rpc_failure_threshold,
            reset_timeout_s=self.config.rpc_reset_timeout_s,
        ))
        self._pinned: ControlState = plane.node_state(self.config.attached_node)
        self._pinned_truth = False

    # -- resolved views -----------------------------------------------------------
    def current_state(self) -> ControlState:
        """The image pinned by the most recent placement read."""
        return self._pinned

    @property
    def pinned_truth(self) -> bool:
        """True when the last read resolved at a leased/quorum-confirmed
        leader, whose image coincides with the physical catalog."""
        return self._pinned_truth

    # -- the read itself ----------------------------------------------------------
    def placement_read(self, now: float) -> float:
        """Resolve a state image for one placement round; returns the
        simulated seconds the resolution cost (the scheduler pays this
        as a delay before dispatching)."""
        self.plane.advance(now)
        self.stats.reads += 1
        mode = self.config.read_mode
        if mode == "stale":
            latency = self._read_stale(now)
        elif mode == "lease":
            latency = self._read_lease(now)
        else:
            latency = self._read_quorum(now)
        self.stats.read_latencies.append(latency)
        return latency

    # -- stale --------------------------------------------------------------------
    def _read_stale(self, now: float) -> float:
        cfg = self.config
        node = self.plane.nodes[cfg.attached_node]
        if now - node.last_leader_contact > cfg.max_staleness_s:
            fresh = self.plane.freshest_node()
            if fresh != node.id:
                self.stats.failover_reads += 1
                node = self.plane.nodes[fresh]
            if now - node.last_leader_contact > cfg.max_staleness_s:
                self.stats.staleness_violations += 1
        self._pinned = node.state
        self._pinned_truth = False
        self.stats.stale_reads += 1
        return cfg.local_read_rtt_s

    # -- lease --------------------------------------------------------------------
    def _read_lease(self, now: float) -> float:
        cfg = self.config
        leader = self.plane.leader_id()
        if leader is not None and self.plane.nodes[leader].lease_valid(
                now, cfg.lease_duration_s):
            self._pinned = self.plane.nodes[leader].state
            self._pinned_truth = True
            self.stats.lease_reads += 1
            return 2.0 * cfg.replication_lag_s
        return self._retry_then_degrade(
            now, self._lease_ready, self._finish_lease)

    def _lease_ready(self, t: float) -> int | None:
        leader = self.plane.leader_id()
        if leader is not None and self.plane.nodes[leader].lease_valid(
                t, self.config.lease_duration_s):
            return leader
        return None

    def _finish_lease(self, leader: int, waited: float) -> float:
        self._pinned = self.plane.nodes[leader].state
        self._pinned_truth = True
        self.stats.lease_reads += 1
        return waited + 2.0 * self.config.replication_lag_s

    # -- quorum -------------------------------------------------------------------
    def _read_quorum(self, now: float) -> float:
        cfg = self.config
        leader = self.plane.leader_id()
        if leader is not None and self.plane.quorum_connected(leader):
            breaker = self.breakers.get("ctl:leader-rpc")
            breaker.record_success(now)
            self._pinned = self.plane.nodes[leader].state
            self._pinned_truth = True
            self.stats.quorum_reads += 1
            return 4.0 * cfg.replication_lag_s
        return self._retry_then_degrade(
            now, self._quorum_ready, self._finish_quorum)

    def _quorum_ready(self, t: float) -> int | None:
        leader = self.plane.leader_id()
        if leader is not None and self.plane.quorum_connected(leader):
            return leader
        return None

    def _finish_quorum(self, leader: int, waited: float) -> float:
        self._pinned = self.plane.nodes[leader].state
        self._pinned_truth = True
        self.stats.quorum_reads += 1
        return waited + 4.0 * self.config.replication_lag_s

    # -- shared retry / degrade path ------------------------------------------------
    def _retry_then_degrade(self, now: float, ready, finish) -> float:
        """Deterministic probe loop: advance simulated time in
        ``read_retry_interval_s`` steps until the mode's precondition
        holds, the breaker trips, or the retry cap is hit — then serve
        the attached node's state (degraded)."""
        cfg = self.config
        breaker = self.breakers.get("ctl:leader-rpc")
        self.stats.unavailable_events += 1
        waited = 0.0
        if not breaker.blocked(now):
            if breaker.state(now) is BreakerState.HALF_OPEN:
                breaker.note_probe(now)
            for _ in range(cfg.max_read_retries):
                waited += cfg.read_retry_interval_s
                t = now + waited
                self.plane.advance(t)
                leader = ready(t)
                if leader is not None:
                    breaker.record_success(t)
                    self.stats.unavailable_s += waited
                    return finish(leader, waited)
            breaker.record_failure(now + waited)
        self.stats.unavailable_s += waited
        self.stats.degraded_reads += 1
        self.stats.stale_reads += 1
        self._pinned = self.plane.nodes[cfg.attached_node].state
        self._pinned_truth = False
        return waited + cfg.local_read_rtt_s
