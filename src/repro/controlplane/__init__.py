"""Replicated federation control plane.

A simulated leader-based replicated log (elections with seeded
randomized timeouts, quorum commit, follower catch-up,
snapshot/compaction) carrying `ReplicaCatalog` and endpoint-registry
mutations across N federation control sites, plus the client session
layer exposing ``quorum`` / ``stale`` / ``lease`` read modes to the
scheduler, datafabric, and faas routing. Single-copy runs never touch
this package — the control plane is strictly opt-in per run.
"""

from repro.controlplane.cluster import (
    READ_MODES,
    ControlPlane,
    ControlPlaneConfig,
    WriteTicket,
)
from repro.controlplane.log import Command, LogEntry, ReplicatedLog, Snapshot
from repro.controlplane.node import RaftNode, Role
from repro.controlplane.runtime import ControlRuntime
from repro.controlplane.session import ControlPlaneSession, ControlPlaneStats
from repro.controlplane.state import ControlState
from repro.controlplane.view import (
    MirroredCatalog,
    RegistryView,
    ReplicatedCatalogView,
)

__all__ = [
    "READ_MODES",
    "Command",
    "ControlPlane",
    "ControlPlaneConfig",
    "ControlPlaneSession",
    "ControlPlaneStats",
    "ControlRuntime",
    "ControlState",
    "LogEntry",
    "MirroredCatalog",
    "RaftNode",
    "RegistryView",
    "ReplicatedCatalogView",
    "ReplicatedLog",
    "Role",
    "Snapshot",
    "WriteTicket",
]
