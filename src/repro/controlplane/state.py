"""The control-plane state machine: a catalog + registry image.

Each control node applies its committed log prefix to one
:class:`ControlState`. The read API deliberately mirrors
:class:`~repro.datafabric.catalog.ReplicaCatalog` — same method names,
same insertion-order iteration, same strict ``<`` first-wins
``nearest_source`` scan — so a quorum read and a single-copy catalog
read are *differentially testable*: applied over the same mutation
sequence they must agree bit-for-bit.

``version`` counts replica mutations in the applied prefix. Because
committed prefixes are identical across nodes (Raft log matching), two
nodes at the same applied index report the same version — which makes
the version safe to key :class:`~repro.core.cost.CostModel` caches even
when reads migrate between replicas.
"""

from __future__ import annotations

from repro.continuum.topology import Topology
from repro.controlplane.log import Command
from repro.datafabric.dataset import Dataset, Replica
from repro.errors import ControlPlaneError, DataFabricError


class ControlState:
    """Applied image of the replicated catalog/registry log."""

    def __init__(self) -> None:
        self._datasets: dict[str, Dataset] = {}
        self._replicas: dict[str, dict[str, float]] = {}
        self._version = 0
        self._dataset_versions: dict[str, int] = {}
        self._endpoints: dict[str, bool] = {}
        self.applied_index = 0

    # -- log application ----------------------------------------------------------
    def apply(self, command: Command, index: int) -> None:
        if index != self.applied_index + 1:
            raise ControlPlaneError(
                f"apply out of order: index {index} after {self.applied_index}"
            )
        self.applied_index = index
        op, args = command.op, command.args
        if op == "noop":
            return
        if op == "register":
            name, size_bytes, kind = args
            self._datasets.setdefault(
                name, Dataset(name, float(size_bytes), kind)
            )
            self._replicas.setdefault(name, {})
            self._dataset_versions.setdefault(name, 0)
            return
        if op == "add_replica":
            name, site, created_at = args
            if name not in self._datasets:
                raise ControlPlaneError(
                    f"add_replica for unregistered dataset {name!r}"
                )
            self._replicas[name][site] = float(created_at)
            self._bump(name)
            return
        if op == "drop_replica":
            name, site = args
            if name not in self._datasets:
                raise ControlPlaneError(
                    f"drop_replica for unregistered dataset {name!r}"
                )
            self._replicas[name].pop(site, None)
            self._bump(name)
            return
        if op == "endpoint_up":
            self._endpoints[args[0]] = True
            return
        if op == "endpoint_down":
            self._endpoints[args[0]] = False
            return
        raise ControlPlaneError(f"unknown command op {op!r}")

    def _bump(self, name: str) -> None:
        self._version += 1
        self._dataset_versions[name] = self._dataset_versions.get(name, 0) + 1

    # -- catalog read API (mirrors ReplicaCatalog) --------------------------------
    @property
    def version(self) -> int:
        return self._version

    def dataset_version(self, name: str) -> int:
        return self._dataset_versions.get(name, 0)

    def dataset(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise DataFabricError(f"unknown dataset {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    @property
    def dataset_names(self) -> list[str]:
        return list(self._datasets)

    def locations(self, name: str) -> list[str]:
        self.dataset(name)
        return list(self._replicas.get(name, {}))

    def has_replica(self, name: str, site: str) -> bool:
        return site in self._replicas.get(name, {})

    def replica(self, name: str, site: str) -> Replica:
        created = self._replicas.get(name, {}).get(site)
        if created is None:
            raise DataFabricError(f"no replica of {name!r} at {site!r}")
        return Replica(self.dataset(name), site, created_at=created)

    def nearest_source(
        self, topology: Topology, name: str, to_site: str
    ) -> tuple[str, float]:
        """Identical scan to ``ReplicaCatalog.nearest_source``: insertion
        order, strict ``<``, first winner kept."""
        dataset = self.dataset(name)
        sources = self.locations(name)
        if not sources:
            raise DataFabricError(f"dataset {name!r} has no replicas")
        best_site, best_time = None, None
        for src in sources:
            est = topology.path_info(src, to_site).transfer_time(dataset.size_bytes)
            if best_time is None or est < best_time:
                best_site, best_time = src, est
        return best_site, best_time

    def bytes_at(self, site: str) -> float:
        return sum(
            self._datasets[name].size_bytes
            for name, reps in self._replicas.items()
            if site in reps
        )

    def datasets_at(self, site: str) -> list[Dataset]:
        return [
            self._datasets[name]
            for name, reps in self._replicas.items()
            if site in reps
        ]

    # -- endpoint registry --------------------------------------------------------
    def endpoint_known(self, site: str) -> bool:
        return site in self._endpoints

    def endpoint_live(self, site: str) -> bool:
        """Liveness per this replica's view; unknown endpoints default to
        live (the registry only records observed transitions)."""
        return self._endpoints.get(site, True)

    @property
    def down_endpoints(self) -> list[str]:
        return [s for s, up in self._endpoints.items() if not up]

    # -- snapshot / convergence ---------------------------------------------------
    def to_snapshot(self) -> dict:
        return {
            "applied_index": self.applied_index,
            "version": self._version,
            "datasets": [
                (d.name, d.size_bytes, d.kind) for d in self._datasets.values()
            ],
            "replicas": [
                (name, tuple(reps.items()))
                for name, reps in self._replicas.items()
            ],
            "dataset_versions": tuple(self._dataset_versions.items()),
            "endpoints": tuple(self._endpoints.items()),
        }

    @classmethod
    def from_snapshot(cls, doc: dict) -> "ControlState":
        state = cls()
        state.applied_index = int(doc["applied_index"])
        state._version = int(doc["version"])
        for name, size_bytes, kind in doc["datasets"]:
            state._datasets[name] = Dataset(name, float(size_bytes), kind)
            state._replicas.setdefault(name, {})
        for name, reps in doc["replicas"]:
            state._replicas[name] = {site: float(t) for site, t in reps}
        state._dataset_versions = dict(doc["dataset_versions"])
        state._endpoints = dict(doc["endpoints"])
        return state

    def fingerprint(self) -> tuple:
        """Order-sensitive identity of the applied image; equal
        fingerprints mean byte-equal catalog views (used by the
        post-heal convergence tests)."""
        return (
            self.applied_index,
            self._version,
            tuple(self._datasets.items()),
            tuple(
                (name, tuple(reps.items()))
                for name, reps in self._replicas.items()
            ),
            tuple(self._dataset_versions.items()),
            tuple(self._endpoints.items()),
        )
