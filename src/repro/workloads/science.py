"""Science-shaped workflows: the keynote's motivating applications.

Two pipelines from Foster's own application domains:

- **beamline_pipeline** — an X-ray light source streams detector frames;
  each needs reconstruction (accelerator-friendly ``kind``) and quality
  assessment; results aggregate into one product. High data-to-compute
  ratio, data born at the instrument: the data-gravity regime.
- **climate_ensemble** — N independent simulation members (compute-heavy,
  tiny inputs) followed by per-member post-processing and a global
  statistics step: the ship-everything-to-HPC regime.
"""

from __future__ import annotations

from repro.datafabric.dataset import Dataset
from repro.errors import WorkflowError
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskSpec


def beamline_pipeline(
    n_frames: int,
    *,
    frame_bytes: float = 2e8,
    reconstruction_work: float = 16.0,
    qa_work: float = 2.0,
    aggregate_work: float = 8.0,
    deadline_s: float | None = None,
    name: str = "beamline",
) -> tuple[WorkflowDAG, list[Dataset]]:
    """Frame-parallel reconstruction with a final aggregation.

    Per frame: reconstruct (``kind="reconstruction"``) then QA; QA
    outputs are small. Optional per-frame deadline models the on-line
    feedback loop beam scientists want ("is this sample aligned?").
    """
    if n_frames < 1:
        raise WorkflowError(f"need >= 1 frame, got {n_frames}")
    dag = WorkflowDAG(name)
    externals = []
    qa_outputs = []
    for i in range(n_frames):
        frame = Dataset(f"{name}-frame{i}", frame_bytes)
        externals.append(frame)
        recon = Dataset(f"{name}-recon{i}", frame_bytes / 4)
        dag.add_task(TaskSpec(
            f"{name}-reconstruct{i}", work=reconstruction_work,
            kind="reconstruction", inputs=(frame.name,), outputs=(recon,),
            deadline_s=deadline_s,
        ))
        qa = Dataset(f"{name}-qa{i}", 1e5)
        qa_outputs.append(qa)
        dag.add_task(TaskSpec(
            f"{name}-qa{i}", work=qa_work, inputs=(recon.name,),
            outputs=(qa,), deadline_s=deadline_s,
        ))
    dag.add_task(TaskSpec(
        f"{name}-aggregate", work=aggregate_work,
        inputs=tuple(q.name for q in qa_outputs),
    ))
    return dag, externals


def climate_ensemble(
    n_members: int,
    *,
    config_bytes: float = 1e6,
    member_work: float = 200.0,
    member_output_bytes: float = 5e8,
    post_work: float = 10.0,
    stats_work: float = 20.0,
    name: str = "climate",
) -> tuple[WorkflowDAG, list[Dataset]]:
    """Ensemble fan-out -> per-member post-processing -> statistics.

    Members carry heavy ``kind="simulation"`` work (HPC-specialized in
    the science-grid preset) with tiny configs in and large model output,
    post-processed down before the cross-member statistics step.
    """
    if n_members < 1:
        raise WorkflowError(f"need >= 1 member, got {n_members}")
    dag = WorkflowDAG(name)
    externals = []
    summaries = []
    for i in range(n_members):
        config = Dataset(f"{name}-cfg{i}", config_bytes)
        externals.append(config)
        raw_out = Dataset(f"{name}-member{i}", member_output_bytes)
        dag.add_task(TaskSpec(
            f"{name}-sim{i}", work=member_work, kind="simulation",
            inputs=(config.name,), outputs=(raw_out,),
        ))
        summary = Dataset(f"{name}-summary{i}", member_output_bytes / 50)
        summaries.append(summary)
        dag.add_task(TaskSpec(
            f"{name}-post{i}", work=post_work, inputs=(raw_out.name,),
            outputs=(summary,),
        ))
    dag.add_task(TaskSpec(
        f"{name}-stats", work=stats_work,
        inputs=tuple(s.name for s in summaries),
    ))
    return dag, externals
