"""Synthetic workloads shaped like the keynote's motivating domains.

DAG families (chains, fork-join, map-reduce, layered random, montage-like)
parameterize the compute-to-data ratio experiments; the science module
builds light-source and climate-ensemble pipelines; the edge-AI module
builds deadline-carrying inference workloads; the streaming module
provides arrival processes and skewed dataset reference streams.
"""

from repro.workloads.dags import (
    chain_dag,
    fork_join_dag,
    layered_random_dag,
    map_reduce_dag,
    montage_like_dag,
    stencil_dag,
)
from repro.workloads.streaming import (
    poisson_arrivals,
    uniform_arrivals,
    zipf_dataset_stream,
)
from repro.workloads.science import beamline_pipeline, climate_ensemble
from repro.workloads.edge_ai import inference_dag, InferenceRequest, request_stream
from repro.workloads.traces import result_rows, save_rows, load_rows

__all__ = [
    "chain_dag",
    "fork_join_dag",
    "layered_random_dag",
    "map_reduce_dag",
    "montage_like_dag",
    "stencil_dag",
    "poisson_arrivals",
    "uniform_arrivals",
    "zipf_dataset_stream",
    "beamline_pipeline",
    "climate_ensemble",
    "inference_dag",
    "InferenceRequest",
    "request_stream",
    "result_rows",
    "save_rows",
    "load_rows",
]
