"""Parameterized DAG families.

Every builder returns ``(dag, externals)`` where ``externals`` is the
list of :class:`Dataset` objects the DAG consumes but does not produce;
the caller decides which sites those start at (usually the edge — data
is born at the periphery).
"""

from __future__ import annotations

from repro.datafabric.dataset import Dataset
from repro.errors import WorkflowError
from repro.utils.rng import RngRegistry
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskSpec


def chain_dag(
    n_stages: int,
    *,
    work: float = 10.0,
    data_bytes: float = 1e8,
    kind: str = "generic",
    name: str = "chain",
) -> tuple[WorkflowDAG, list[Dataset]]:
    """A linear pipeline: raw -> s0 -> s1 -> ... (equal stages)."""
    if n_stages < 1:
        raise WorkflowError(f"chain needs >= 1 stage, got {n_stages}")
    dag = WorkflowDAG(name)
    raw = Dataset(f"{name}-raw", data_bytes)
    prev = raw.name
    for i in range(n_stages):
        outputs = ()
        if i < n_stages - 1:
            outputs = (Dataset(f"{name}-d{i}", data_bytes),)
        dag.add_task(TaskSpec(f"{name}-s{i}", work=work, kind=kind,
                              inputs=(prev,), outputs=outputs))
        prev = outputs[0].name if outputs else None
    return dag, [raw]


def fork_join_dag(
    width: int,
    *,
    split_work: float = 1.0,
    branch_work: float = 10.0,
    join_work: float = 2.0,
    data_bytes: float = 1e8,
    kind: str = "generic",
    name: str = "forkjoin",
) -> tuple[WorkflowDAG, list[Dataset]]:
    """split -> ``width`` parallel branches -> join."""
    if width < 1:
        raise WorkflowError(f"fork-join needs width >= 1, got {width}")
    dag = WorkflowDAG(name)
    raw = Dataset(f"{name}-raw", data_bytes)
    shards = tuple(
        Dataset(f"{name}-shard{i}", data_bytes / width) for i in range(width)
    )
    dag.add_task(TaskSpec(f"{name}-split", work=split_work,
                          inputs=(raw.name,), outputs=shards))
    partials = []
    for i in range(width):
        out = Dataset(f"{name}-part{i}", data_bytes / width)
        partials.append(out)
        dag.add_task(TaskSpec(f"{name}-branch{i}", work=branch_work,
                              kind=kind, inputs=(shards[i].name,),
                              outputs=(out,)))
    dag.add_task(TaskSpec(f"{name}-join", work=join_work,
                          inputs=tuple(p.name for p in partials)))
    return dag, [raw]


def map_reduce_dag(
    n_map: int,
    n_reduce: int,
    *,
    map_work: float = 10.0,
    reduce_work: float = 5.0,
    input_bytes: float = 1e8,
    intermediate_bytes: float = 1e7,
    name: str = "mapreduce",
) -> tuple[WorkflowDAG, list[Dataset]]:
    """Classic shuffle: every reducer reads every mapper's partition."""
    if n_map < 1 or n_reduce < 1:
        raise WorkflowError("map-reduce needs >= 1 mapper and reducer")
    dag = WorkflowDAG(name)
    externals = []
    partitions: list[list[Dataset]] = []
    for m in range(n_map):
        raw = Dataset(f"{name}-in{m}", input_bytes)
        externals.append(raw)
        parts = [
            Dataset(f"{name}-m{m}r{r}", intermediate_bytes / n_reduce)
            for r in range(n_reduce)
        ]
        partitions.append(parts)
        dag.add_task(TaskSpec(f"{name}-map{m}", work=map_work,
                              inputs=(raw.name,), outputs=tuple(parts)))
    for r in range(n_reduce):
        inputs = tuple(partitions[m][r].name for m in range(n_map))
        dag.add_task(TaskSpec(f"{name}-reduce{r}", work=reduce_work,
                              inputs=inputs))
    return dag, externals


def layered_random_dag(
    n_tasks: int,
    *,
    n_levels: int = 4,
    max_inputs: int = 4,
    work_range: tuple[float, float] = (5.0, 50.0),
    data_range: tuple[float, float] = (1e7, 1e8),
    kind_mix: dict[str, float] | None = None,
    seed: int = 0,
    name: str = "layered",
) -> tuple[WorkflowDAG, list[Dataset]]:
    """Random layered DAG: tasks spread over levels; each non-source
    task reads 1..``max_inputs`` randomly chosen outputs of the previous
    level. Bounded fan-in keeps edge count linear in ``n_tasks`` (the
    standard construction in scheduler-comparison literature; E2/E3)."""
    if n_tasks < 1 or n_levels < 1:
        raise WorkflowError("need >= 1 task and >= 1 level")
    rng = RngRegistry(seed).stream(f"dag:{name}")
    kinds, weights = ["generic"], [1.0]
    if kind_mix:
        kinds = list(kind_mix)
        total = sum(kind_mix.values())
        weights = [v / total for v in kind_mix.values()]
    dag = WorkflowDAG(name)
    externals: list[Dataset] = []
    # assign tasks to levels (each level gets at least one while any remain)
    level_of = sorted(int(rng.integers(n_levels)) for _ in range(n_tasks))
    levels: list[list[str]] = [[] for _ in range(n_levels)]
    outputs_by_level: list[list[Dataset]] = [[] for _ in range(n_levels)]
    for i in range(n_tasks):
        level = level_of[i]
        task_name = f"{name}-t{i}"
        work = float(rng.uniform(*work_range))
        out_bytes = float(rng.uniform(*data_range))
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        out = Dataset(f"{name}-o{i}", out_bytes)
        if level == 0 or not outputs_by_level[level - 1]:
            raw = Dataset(f"{name}-x{i}", float(rng.uniform(*data_range)))
            externals.append(raw)
            inputs = (raw.name,)
        else:
            prev = outputs_by_level[level - 1]
            k = min(int(rng.integers(1, max_inputs + 1)), len(prev))
            picks = rng.choice(len(prev), size=k, replace=False)
            inputs = tuple(prev[int(p)].name for p in picks)
        dag.add_task(TaskSpec(task_name, work=work, kind=kind,
                              inputs=inputs, outputs=(out,)))
        levels[level].append(task_name)
        outputs_by_level[level].append(out)
    return dag, externals


def stencil_dag(
    n_partitions: int,
    n_iterations: int,
    *,
    work_per_step: float = 10.0,
    halo_bytes: float = 1e6,
    name: str = "stencil",
) -> tuple[WorkflowDAG, list[Dataset]]:
    """Iterative halo-exchange stencil (1-D domain decomposition).

    Partition ``p`` at iteration ``k`` reads its own previous state plus
    the previous states of its neighbours ``p-1``/``p+1`` — the
    communication pattern of explicit PDE solvers. Tight halo coupling
    punishes placements that scatter neighbouring partitions across slow
    links, which makes this the adversarial workload for data-gravity
    versus locality-blind strategies.
    """
    if n_partitions < 1 or n_iterations < 1:
        raise WorkflowError("stencil needs >= 1 partition and iteration")
    dag = WorkflowDAG(name)
    externals = []
    # state[k][p] is the dataset produced by partition p at iteration k
    state: list[list[Dataset]] = [[]]
    for p in range(n_partitions):
        initial = Dataset(f"{name}-init{p}", halo_bytes)
        externals.append(initial)
        state[0].append(initial)
    for k in range(1, n_iterations + 1):
        state.append([])
        for p in range(n_partitions):
            out = Dataset(f"{name}-s{k}p{p}", halo_bytes)
            neighbours = [p]
            if p > 0:
                neighbours.append(p - 1)
            if p < n_partitions - 1:
                neighbours.append(p + 1)
            inputs = tuple(state[k - 1][q].name for q in sorted(neighbours))
            dag.add_task(TaskSpec(f"{name}-k{k}p{p}", work=work_per_step,
                                  inputs=inputs, outputs=(out,)))
            state[k].append(out)
    return dag, externals


def montage_like_dag(
    n_inputs: int,
    *,
    project_work: float = 8.0,
    diff_work: float = 2.0,
    fit_work: float = 1.0,
    background_work: float = 4.0,
    add_work: float = 20.0,
    tile_bytes: float = 5e7,
    name: str = "montage",
) -> tuple[WorkflowDAG, list[Dataset]]:
    """Astronomy-mosaic shape: per-tile projection, pairwise diffs over
    neighbouring tiles, a global fit, per-tile background correction,
    and a final co-addition — the classic data-bound science workflow."""
    if n_inputs < 2:
        raise WorkflowError(f"montage needs >= 2 inputs, got {n_inputs}")
    dag = WorkflowDAG(name)
    externals = []
    projected = []
    for i in range(n_inputs):
        raw = Dataset(f"{name}-img{i}", tile_bytes)
        externals.append(raw)
        out = Dataset(f"{name}-proj{i}", tile_bytes)
        projected.append(out)
        dag.add_task(TaskSpec(f"{name}-project{i}", work=project_work,
                              inputs=(raw.name,), outputs=(out,)))
    diffs = []
    for i in range(n_inputs - 1):
        out = Dataset(f"{name}-diff{i}", tile_bytes / 10)
        diffs.append(out)
        dag.add_task(TaskSpec(
            f"{name}-diff{i}", work=diff_work,
            inputs=(projected[i].name, projected[i + 1].name),
            outputs=(out,),
        ))
    fit_out = Dataset(f"{name}-fit", 1e6)
    dag.add_task(TaskSpec(f"{name}-fit", work=fit_work,
                          inputs=tuple(d.name for d in diffs),
                          outputs=(fit_out,)))
    corrected = []
    for i in range(n_inputs):
        out = Dataset(f"{name}-bg{i}", tile_bytes)
        corrected.append(out)
        dag.add_task(TaskSpec(f"{name}-background{i}", work=background_work,
                              inputs=(projected[i].name, fit_out.name),
                              outputs=(out,)))
    dag.add_task(TaskSpec(f"{name}-add", work=add_work,
                          inputs=tuple(c.name for c in corrected)))
    return dag, externals
