"""Edge-AI inference workloads (the DLHub/model-serving regime).

Small requests, tight deadlines, accelerator-specialized work — the
workload where placement is dominated by latency, not bandwidth (E5).
Two forms are provided: a deadline-carrying DAG of independent inference
tasks for the continuum scheduler, and a timed request stream for the
FaaS fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datafabric.dataset import Dataset
from repro.errors import WorkflowError
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskSpec
from repro.workloads.streaming import poisson_arrivals


def inference_dag(
    n_requests: int,
    *,
    work: float = 0.5,
    input_bytes: float = 2e5,
    deadline_s: float = 0.5,
    kind: str = "dnn-inference",
    name: str = "inference",
) -> tuple[WorkflowDAG, list[Dataset]]:
    """``n_requests`` independent inference tasks, each with its own
    (small) input and a per-task deadline."""
    if n_requests < 1:
        raise WorkflowError(f"need >= 1 request, got {n_requests}")
    dag = WorkflowDAG(name)
    externals = []
    for i in range(n_requests):
        payload = Dataset(f"{name}-req{i}", input_bytes)
        externals.append(payload)
        dag.add_task(TaskSpec(
            f"{name}-infer{i}", work=work, kind=kind,
            inputs=(payload.name,), deadline_s=deadline_s,
        ))
    return dag, externals


@dataclass(frozen=True)
class InferenceRequest:
    """One timed request for the FaaS fabric experiments."""

    arrival_s: float
    request_bytes: float
    deadline_s: float


def request_stream(
    rate_per_s: float,
    horizon_s: float,
    *,
    request_bytes: float = 2e5,
    deadline_s: float = 0.5,
    rng: np.random.Generator,
) -> list[InferenceRequest]:
    """Poisson stream of inference requests."""
    times = poisson_arrivals(rate_per_s, horizon_s, rng)
    return [
        InferenceRequest(float(t), request_bytes, deadline_s) for t in times
    ]
