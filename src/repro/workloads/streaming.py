"""Arrival processes and reference streams for online experiments."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive


def poisson_arrivals(
    rate_per_s: float, horizon_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival times of a Poisson process on ``[0, horizon)``.

    Exponential inter-arrival sampling; returned sorted ascending.
    """
    check_positive("rate_per_s", rate_per_s)
    check_positive("horizon_s", horizon_s)
    # over-sample then trim: mean count + 6 sigma covers the horizon w.h.p.
    expected = rate_per_s * horizon_s
    n_draw = int(expected + 6.0 * np.sqrt(expected + 1.0)) + 8
    while True:
        gaps = rng.exponential(1.0 / rate_per_s, size=n_draw)
        times = np.cumsum(gaps)
        if times[-1] >= horizon_s:
            return times[times < horizon_s]
        n_draw *= 2  # pragma: no cover - astronomically rare


def uniform_arrivals(rate_per_s: float, horizon_s: float) -> np.ndarray:
    """Deterministic, evenly spaced arrivals (the no-burstiness baseline)."""
    check_positive("rate_per_s", rate_per_s)
    check_positive("horizon_s", horizon_s)
    n = int(np.floor(rate_per_s * horizon_s))
    return np.arange(n) / rate_per_s


def zipf_dataset_stream(
    n_datasets: int,
    n_requests: int,
    *,
    alpha: float = 1.1,
    rng: np.random.Generator,
) -> list[int]:
    """Zipf-skewed sequence of dataset indices in ``[0, n_datasets)``.

    ``alpha`` > 1 controls skew (larger = hotter head). This is the
    standard model for content popularity, and what makes caching pay
    in E6: a small hot set absorbs most requests.
    """
    if n_datasets < 1:
        raise ConfigurationError(f"n_datasets must be >= 1, got {n_datasets}")
    if n_requests < 0:
        raise ConfigurationError(f"n_requests must be >= 0, got {n_requests}")
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be > 0, got {alpha}")
    ranks = np.arange(1, n_datasets + 1, dtype=float)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    return [int(i) for i in rng.choice(n_datasets, size=n_requests, p=weights)]
