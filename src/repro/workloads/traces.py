"""Result traces: flatten schedule results to rows, persist as JSON.

Benchmarks record their measurements this way so EXPERIMENTS.md numbers
can be regenerated and diffed run-over-run.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.core.placement import ScheduleResult
from repro.errors import ConfigurationError


def result_rows(result: ScheduleResult) -> list[dict]:
    """One dict per task with the measured lifecycle fields."""
    rows = []
    for name, r in sorted(result.records.items()):
        rows.append({
            "task": name,
            "site": r.site,
            "kind": r.kind,
            "ready_at": r.ready_at,
            "stage_time": r.stage_time,
            "queue_time": r.queue_time,
            "exec_time": r.exec_time,
            "finished": r.exec_finished,
            "bytes_staged": r.bytes_staged,
            "energy_j": r.energy_j,
            "met_deadline": r.met_deadline,
        })
    return rows


def save_rows(path: str, rows: list[dict], meta: dict | None = None) -> None:
    """Write rows (+ metadata) as a JSON document, atomically and durably.

    Same ``mkstemp`` + flush + ``os.fsync`` + :func:`os.replace`
    discipline as rendered benchmark tables (:func:`save_rendered`): the
    temp name is unique, so parallel shard workers writing sibling
    traces can never collide on a shared ``path + ".tmp"``, and the
    fsync-before-replace ordering means a crash leaves either the old
    complete file or the new complete file — never a torn one.
    """
    payload = {"meta": meta or {}, "rows": rows}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".trace.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_rows(path: str) -> tuple[list[dict], dict]:
    """Read back ``(rows, meta)``."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise ConfigurationError(f"no trace file at {path!r}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"corrupt trace file {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or "rows" not in payload:
        raise ConfigurationError(f"corrupt trace file {path!r}: bad structure")
    return payload["rows"], payload.get("meta", {})
