"""Human-readable reporting: DAG exports and schedule timelines.

- :func:`dag_to_dot` / :func:`dag_to_mermaid` — graph exports for
  Graphviz and Markdown renderers,
- :func:`ascii_gantt` — per-site timeline of a schedule result,
- :func:`utilization_table` — how busy each site was,
- :func:`placement_summary` — tasks-per-site breakdown,
- :func:`span_summary` / :func:`critical_path_report` — render a
  traced run (see :mod:`repro.observe`).
"""

from repro.report.dagviz import dag_to_dot, dag_to_mermaid
from repro.report.timeline import ascii_gantt, placement_summary, utilization_table
from repro.report.tracereport import critical_path_report, span_summary

__all__ = [
    "dag_to_dot",
    "dag_to_mermaid",
    "ascii_gantt",
    "utilization_table",
    "placement_summary",
    "span_summary",
    "critical_path_report",
]
