"""Schedule-result timelines: ASCII Gantt and utilization tables."""

from __future__ import annotations

from repro.core.placement import ScheduleResult
from repro.utils.tables import ascii_table
from repro.utils.units import format_time


def ascii_gantt(result: ScheduleResult, *, width: int = 72) -> str:
    """Per-site execution timeline.

    Each site gets one lane; task executions render as labelled bars on
    a shared time axis scaled to ``width`` characters. Staging time is
    drawn with dots before the execution bar.
    """
    if not result.records:
        return "(empty schedule)"
    horizon = max(r.exec_finished for r in result.records.values())
    if horizon <= 0:
        horizon = 1.0
    scale = width / horizon
    by_site: dict[str, list] = {}
    for record in result.records.values():
        by_site.setdefault(record.site, []).append(record)

    lines = [f"Gantt: {result.workflow} via {result.strategy} "
             f"(makespan {format_time(result.makespan)})"]
    label_width = max(len(site) for site in by_site)
    for site in sorted(by_site):
        records = sorted(by_site[site], key=lambda r: r.exec_started)
        lane = [" "] * width
        for record in records:
            stage_start = int(record.stage_started * scale)
            start = int(record.exec_started * scale)
            end = max(int(record.exec_finished * scale), start + 1)
            for i in range(stage_start, min(start, width)):
                if lane[i] == " ":
                    lane[i] = "."
            name = record.task
            for offset, i in enumerate(range(start, min(end, width))):
                lane[i] = name[offset] if offset < len(name) else "="
        lines.append(f"{site.rjust(label_width)} |{''.join(lane)}|")
    axis = f"{'0'.rjust(label_width)} +{'-' * (width - 1)}+"
    lines.append(axis)
    lines.append(
        f"{' ' * label_width}  0{format_time(horizon).rjust(width - 1)}"
    )
    return "\n".join(lines)


def utilization_table(result: ScheduleResult) -> str:
    """Busy-seconds and share-of-makespan per site."""
    rows = []
    makespan = result.makespan or 1.0
    for site, busy in sorted(result.site_busy_s.items()):
        rows.append({
            "site": site,
            "busy_s": busy,
            "tasks": len(result.tasks_at(site)),
            "busy_over_makespan": busy / makespan,
        })
    return ascii_table(rows, title=f"Utilization ({result.strategy})")


def placement_summary(result: ScheduleResult) -> str:
    """One-line-per-site task placement breakdown."""
    lines = [f"Placement of {result.task_count} tasks "
             f"({result.strategy}, makespan {format_time(result.makespan)}):"]
    by_site: dict[str, list[str]] = {}
    for name, record in sorted(result.records.items()):
        by_site.setdefault(record.site, []).append(name)
    for site in sorted(by_site):
        tasks = by_site[site]
        shown = ", ".join(tasks[:6]) + (", ..." if len(tasks) > 6 else "")
        lines.append(f"  {site}: {len(tasks)} tasks ({shown})")
    return "\n".join(lines)
