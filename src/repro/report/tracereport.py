"""Render a traced run: span summaries and critical-path breakdowns.

Text companions to the Chrome-trace JSON export — what ``repro trace``
prints so a run is inspectable without leaving the terminal.
"""

from __future__ import annotations

from collections import defaultdict

from repro.observe.critical_path import CriticalPath
from repro.observe.tracer import Tracer
from repro.utils.tables import ascii_table


def span_summary(tracer: Tracer) -> str:
    """Per-category span counts and time totals for one traced run."""
    buckets: dict[str, list[float]] = defaultdict(list)
    statuses: dict[str, int] = defaultdict(int)
    for span in tracer.finished():
        if span.instant:
            statuses[f"{span.category}:{span.name}"] += 1
        else:
            buckets[span.category].append(span.duration_s)
    rows = []
    for category in sorted(buckets):
        durations = buckets[category]
        rows.append({
            "category": category,
            "spans": len(durations),
            "total_s": sum(durations),
            "mean_s": sum(durations) / len(durations),
            "max_s": max(durations),
        })
    parts = [ascii_table(rows, title="span summary")] if rows else []
    if statuses:
        events = ", ".join(f"{name} x{count}"
                           for name, count in sorted(statuses.items()))
        parts.append(f"  events: {events}")
    if not parts:
        return "(no spans recorded)"
    return "\n".join(parts)


def critical_path_report(cp: CriticalPath) -> str:
    """The gating chain plus its compute/transfer/queue decomposition."""
    if not cp.steps:
        return "(empty critical path)"
    rows = [
        {
            "task": step.task,
            "site": step.site,
            "wait_s": step.gap_s + step.queue_s,
            "stage_s": step.stage_s,
            "exec_s": step.exec_s,
        }
        for step in cp.steps
    ]
    fractions = cp.fractions()
    breakdown = "  ".join(
        f"{name} {fraction * 100.0:.1f}%"
        for name, fraction in fractions.items()
    )
    return "\n".join([
        ascii_table(rows, title=f"critical path ({len(cp.steps)} tasks, "
                                f"makespan {cp.makespan_s:.3f}s)"),
        f"  breakdown: {breakdown}",
    ])
