"""Workflow DAG exports (Graphviz DOT, Mermaid)."""

from __future__ import annotations

from repro.workflow.dag import WorkflowDAG


def _sanitize(name: str) -> str:
    """Identifier-safe node id for both DOT and Mermaid."""
    return "".join(c if c.isalnum() else "_" for c in name)


def dag_to_dot(dag: WorkflowDAG, *, include_datasets: bool = False) -> str:
    """Graphviz DOT text for a workflow.

    With ``include_datasets`` the dataflow is shown explicitly: task
    boxes connect through ellipse dataset nodes; otherwise edges go
    task-to-task.
    """
    dag.validate()
    lines = [f'digraph "{dag.name}" {{', "  rankdir=LR;",
             "  node [shape=box];"]
    for task in dag.tasks:
        node = _sanitize(task.name)
        label = f"{task.name}\\nwork={task.work:g}"
        if task.kind != "generic":
            label += f"\\nkind={task.kind}"
        lines.append(f'  {node} [label="{label}"];')
    if include_datasets:
        seen = set()
        for task in dag.tasks:
            for out in task.outputs:
                ds = _sanitize("ds_" + out.name)
                if ds not in seen:
                    seen.add(ds)
                    lines.append(
                        f'  {ds} [shape=ellipse,label="{out.name}\\n'
                        f'{out.size_bytes:g}B"];'
                    )
                lines.append(f"  {_sanitize(task.name)} -> {ds};")
            for inp in task.inputs:
                ds = _sanitize("ds_" + inp)
                if ds not in seen:
                    seen.add(ds)
                    lines.append(f'  {ds} [shape=ellipse,label="{inp}"];')
                lines.append(f"  {ds} -> {_sanitize(task.name)};")
        # control-only edges still need drawing
        for task in dag.tasks:
            for dep in task.after:
                lines.append(
                    f"  {_sanitize(dep)} -> {_sanitize(task.name)} "
                    f"[style=dashed];"
                )
    else:
        for name in dag.task_names:
            for succ in dag.dependents(name):
                lines.append(f"  {_sanitize(name)} -> {_sanitize(succ)};")
    lines.append("}")
    return "\n".join(lines)


def dag_to_mermaid(dag: WorkflowDAG) -> str:
    """Mermaid ``graph LR`` text (renders in GitHub/GitLab Markdown)."""
    dag.validate()
    lines = ["graph LR"]
    for task in dag.tasks:
        node = _sanitize(task.name)
        lines.append(f'  {node}["{task.name} ({task.work:g})"]')
    for name in dag.task_names:
        for succ in dag.dependents(name):
            lines.append(f"  {_sanitize(name)} --> {_sanitize(succ)}")
    return "\n".join(lines)
