"""The event loop: :class:`Simulator`."""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.errors import SimulationError
from repro.simcore.event import Event, EventQueue
from repro.simcore.process import Process, Signal, Timeout, Waitable


class Simulator:
    """Deterministic discrete-event loop with a float clock (seconds).

    Typical use::

        sim = Simulator()
        sim.process(my_generator(sim))
        sim.run()                      # until no events remain
        print(sim.now)
    """

    def __init__(self, start_time: float = 0.0):
        self._queue = EventQueue()
        self._now = float(start_time)
        self._running = False
        self._processes_started = 0
        self.event_count = 0

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable, *args) -> Event:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (t={time} < now={self._now})"
            )
        return self._queue.push(time, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (no-op if it already fired/cancelled)."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    def _immediate(self, callback: Callable, arg) -> None:
        """Schedule ``callback(arg)`` at the current instant (after events
        already queued for this instant — preserves FIFO causality)."""
        self._queue.push(self._now, callback, (arg,))

    # -- processes & waitables ------------------------------------------------
    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns the joinable Process."""
        proc = Process(gen, name=name)
        proc._bind(self)
        self._processes_started += 1
        return proc

    def timeout(self, delay: float, result=None) -> Timeout:
        """Create a bound :class:`Timeout` (usable outside a process)."""
        t = Timeout(delay, result)
        t._bind(self)
        return t

    def signal(self) -> Signal:
        """Create a bound :class:`Signal`."""
        return Signal(self)

    # -- running ---------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError("event queue produced a time in the past")
        self._now = event.time
        self.event_count += 1
        event.callback(*event.args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` more events have fired. Returns the final clock.

        When stopping at ``until`` the clock is advanced to exactly
        ``until`` (events beyond it remain queued).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                if until is not None and next_time is not None and next_time > until:
                    self._now = max(self._now, until)
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_process(self, gen: Generator, until: float | None = None):
        """Convenience: start ``gen``, run, and return its result.

        Raises the process's exception if it failed, or
        :class:`SimulationError` if the simulation drained before the
        process finished (deadlock).
        """
        proc = self.process(gen)
        self.run(until=until)
        if not proc.fired:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock or until-limit)"
            )
        return proc.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.6g} pending={len(self._queue)}>"
