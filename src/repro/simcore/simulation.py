"""The event loop: :class:`Simulator`."""

from __future__ import annotations

from math import inf, isfinite
from collections.abc import Callable, Generator

from repro.errors import SimulationError
from repro.simcore.event import Event, EventQueue
from repro.simcore.process import Process, Signal, Timeout, Waitable


class Simulator:
    """Deterministic discrete-event loop with a float clock (seconds).

    Typical use::

        sim = Simulator()
        sim.process(my_generator(sim))
        sim.run()                      # until no events remain
        print(sim.now)
    """

    def __init__(self, start_time: float = 0.0, queue: EventQueue | None = None):
        # `queue` swaps the scheduler implementation (default: the
        # calendar queue; `HeapEventQueue` is the drop-in fallback the
        # kernel benchmarks measure against). Any implementation must
        # preserve global (time, seq) FIFO order.
        self._queue = queue if queue is not None else EventQueue()
        self._now = float(start_time)
        self._running = False
        self._processes_started = 0
        self.event_count = 0
        self._recorder = None

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0 or not isfinite(delay):
            # NaN compares False against everything, so a plain `< 0`
            # check would wave NaN through and corrupt heap order.
            raise SimulationError(f"cannot schedule at non-finite or past "
                                  f"time (delay={delay})")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable, *args) -> Event:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now or not isfinite(time):
            raise SimulationError(
                f"cannot schedule at non-finite or past time "
                f"(t={time}, now={self._now})"
            )
        return self._queue.push(time, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (no-op if it already fired/cancelled)."""
        if not event.cancelled:
            event.cancelled = True
            self._queue.note_cancelled()

    def _immediate(self, callback: Callable, arg) -> None:
        """Schedule ``callback(arg)`` at the current instant (after events
        already queued for this instant — preserves FIFO causality)."""
        self._queue.push_ready(self._now, callback, (arg,))

    def _wakeup(self, delay: float, callback: Callable, args: tuple) -> None:
        """Kernel-internal deferred callback (e.g. a Timeout firing).

        No reference escapes, so the event is pooled; zero-delay wakeups
        take the same-instant ready lane and skip the heap entirely.
        """
        if delay == 0.0:
            self._queue.push_ready(self._now, callback, args)
        else:
            self._queue.push_pooled(self._now + delay, callback, args)

    # -- processes & waitables ------------------------------------------------
    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns the joinable Process."""
        proc = Process(gen, name=name)
        proc._bind(self)
        self._processes_started += 1
        return proc

    def timeout(self, delay: float, result=None) -> Timeout:
        """Create a bound :class:`Timeout` (usable outside a process)."""
        t = Timeout(delay, result)
        t._bind(self)
        return t

    def signal(self) -> Signal:
        """Create a bound :class:`Signal`."""
        return Signal(self)

    # -- observability --------------------------------------------------------
    def attach_recorder(self, recorder) -> None:
        """Attach a :class:`~repro.observe.recorder.MetricsRecorder` to
        be ticked from the dispatch loop whenever the clock reaches its
        ``next_t``. Recorders are clock-passive — they sample probe
        callables but never schedule events — so attaching one cannot
        change any simulation outcome. Costs one ``is not None`` check
        per event when detached."""
        self._recorder = recorder

    # -- running ---------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        """Advance the clock to ``event`` and run its callback."""
        if event.time < self._now:
            raise SimulationError("event queue produced a time in the past")
        self._now = event.time
        self.event_count += 1
        event.callback(*event.args)
        if event.pooled:
            self._queue.recycle(event)
        else:
            # A caller may still hold this event and cancel() it later;
            # marking it cancelled keeps that a true no-op instead of
            # corrupting the queue's dead-entry accounting.
            event.cancelled = True

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        event = self._queue._pop_or_none()
        if event is None:
            return False
        self._dispatch(event)
        rec = self._recorder
        if rec is not None and self._now >= rec.next_t:
            rec.tick(self._now)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` more events have fired. Returns the final clock.

        When stopping at ``until`` the clock is advanced to exactly
        ``until`` (events beyond it remain queued).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        queue = self._queue
        pop = queue._pop_or_none
        recycle = queue.recycle
        rec = self._recorder
        # Hoisted next-tick time: the hot loop pays one local float
        # compare per event instead of a None check + attribute load.
        rec_next = rec.next_t if rec is not None else inf
        drained = False
        try:
            # Single-pop loop: each iteration pays one heap/lane pop;
            # the one event that overshoots `until` (or lands after a
            # max_events stop) is pushed back with its seq intact.
            while True:
                event = pop()
                if event is None:
                    drained = True
                    break
                time = event.time
                if until is not None and time > until:
                    queue.push_back(event)
                    if until > self._now:
                        self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    queue.push_back(event)
                    break
                if time < self._now:
                    raise SimulationError(
                        "event queue produced a time in the past"
                    )
                self._now = time
                fired += 1
                event.callback(*event.args)
                if event.pooled:
                    recycle(event)
                else:
                    event.cancelled = True
                if time >= rec_next:
                    # Fold fired-so-far into event_count first so gauge
                    # probes reading it observe the live total.
                    self.event_count += fired
                    fired = 0
                    rec.tick(time)
                    rec_next = rec.next_t
            if drained and until is not None and until > self._now:
                self._now = until
        finally:
            self.event_count += fired
            self._running = False
        return self._now

    def run_process(self, gen: Generator, until: float | None = None):
        """Convenience: start ``gen``, run, and return its result.

        Raises the process's exception if it failed, or
        :class:`SimulationError` if the simulation drained before the
        process finished (deadlock).
        """
        proc = self.process(gen)
        self.run(until=until)
        if not proc.fired:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock or until-limit)"
            )
        return proc.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.6g} pending={len(self._queue)}>"
