"""Metric collection for simulations.

A :class:`Monitor` stores timestamped samples per named series plus
monotonic counters, and converts series to numpy arrays for analysis.
Keeping collection separate from simulation logic lets experiment code
decide what to record without touching the substrate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.utils.stats import Summary, summarize


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace event (who/what/when)."""

    time: float
    kind: str
    subject: str
    detail: dict


class Monitor:
    """Timestamped series, counters, and structured trace records."""

    def __init__(self, sim=None, tracer: Tracer | None = None):
        self.sim = sim
        self._series: dict[str, list[tuple[float, float]]] = defaultdict(list)
        self.counters: dict[str, float] = defaultdict(float)
        self.trace: list[TraceRecord] = []
        self.trace_enabled = True
        self.tracer = NULL_TRACER
        if tracer is not None:
            self.attach_tracer(tracer)

    def attach_tracer(self, tracer: Tracer) -> "Tracer":
        """Attach a span tracer, binding it to this monitor's sim clock
        if it has no clock yet. Instrumented subsystems holding the
        monitor emit spans through ``monitor.tracer``."""
        if self.sim is not None and not tracer.bound:
            tracer.bind(lambda: self.sim.now)
        self.tracer = tracer
        return tracer

    # -- recording -------------------------------------------------------------
    def record(self, series: str, value: float, time: float | None = None) -> None:
        """Append ``(time, value)`` to ``series``; time defaults to sim.now."""
        if time is None:
            time = self.sim.now if self.sim is not None else 0.0
        self._series[series].append((float(time), float(value)))

    def count(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named counter."""
        self.counters[counter] += amount

    def log(self, kind: str, subject: str, **detail) -> None:
        """Append a structured trace record (skipped if tracing disabled)."""
        if not self.trace_enabled:
            return
        time = self.sim.now if self.sim is not None else 0.0
        self.trace.append(TraceRecord(time, kind, subject, detail))

    # -- retrieval ---------------------------------------------------------------
    def series_names(self) -> list[str]:
        return sorted(self._series)

    def times(self, series: str) -> np.ndarray:
        data = self._series.get(series, [])
        return np.asarray([t for t, _ in data], dtype=float)

    def values(self, series: str) -> np.ndarray:
        data = self._series.get(series, [])
        return np.asarray([v for _, v in data], dtype=float)

    def summary(self, series: str) -> Summary:
        return summarize(self.values(series))

    def time_average(self, series: str, horizon: float | None = None) -> float:
        """Piecewise-constant time average of a level series.

        Treats each sample as the level holding until the next sample;
        the last level holds until ``horizon`` (default: last sample time,
        giving NaN-free behaviour for single-sample series).
        """
        data = self._series.get(series, [])
        if not data:
            return float("nan")
        times = np.asarray([t for t, _ in data], dtype=float)
        vals = np.asarray([v for _, v in data], dtype=float)
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise SimulationError(
                f"time_average({series!r}) needs non-decreasing sample "
                f"times (got out-of-order explicit timestamps)"
            )
        end = times[-1] if horizon is None else float(horizon)
        if end <= times[0]:
            return float(vals[0])
        bounded = np.append(times, end)
        widths = np.diff(bounded)
        total = float(np.sum(widths * vals))
        return total / (end - times[0])

    def events_of(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.trace if r.kind == kind]

    def clear(self) -> None:
        self._series.clear()
        self.counters.clear()
        self.trace.clear()
