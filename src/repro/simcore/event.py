"""Event and event-queue primitives for the discrete-event kernel.

The queue is the hottest structure in the whole system — every timeout,
wakeup, and watchdog in every experiment passes through it — so it
carries three fast-path mechanisms on top of the plain binary heap:

- a **same-instant ready lane**: callbacks scheduled for the current
  instant (process wakeups, zero-delay timeouts) go to a FIFO deque
  instead of the heap. Sequence numbers still stamp every event, so the
  merge at pop keeps the exact global (time, seq) order a single heap
  would produce — the lane only removes the O(log n) heap traffic.
- **heap compaction**: lazily-cancelled events (watchdog timeouts that
  the guarded attempt beat) are rebuilt out of the heap once they
  outnumber live entries, bounding the bloat of timeout-heavy runs.
- an **event free list**: events the kernel creates internally (no
  caller ever holds a reference) are recycled after dispatch instead of
  being reallocated, cutting allocator churn in wakeup-heavy runs.
  Events returned by ``push`` escape to callers (for ``cancel``) and
  are never pooled, so a stale handle can never alias a live event.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable

from repro.errors import SimulationError

# Compaction fires when the heap holds more cancelled than live entries
# and enough of them to be worth an O(n) rebuild.
_COMPACT_MIN_DEAD = 64
# Free-list cap: bounds worst-case retained garbage, covers the common
# steady-state of a few hundred in-flight wakeups.
_POOL_MAX = 512


class Event:
    """A scheduled callback at a simulated time.

    Events are ordered by ``(time, seq)`` where ``seq`` is assigned
    monotonically at scheduling time, making simultaneous events fire in
    FIFO order — the property that makes simulations deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "pooled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple = ()):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.pooled = False

    def cancel(self) -> None:
        """Mark the event dead; the queue skips it lazily on pop."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Direct time-then-seq comparison: no tuple allocation per
        # comparison (this runs O(log n) times per heap operation).
        return self.time < other.time or (
            self.time == other.time and self.seq < other.seq
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} seq={self.seq}{state}>"


class EventQueue:
    """Priority queue of :class:`Event`: binary heap + same-instant lane.

    Cancelled events stay in the heap until popped or compacted away;
    this keeps ``cancel`` O(1) while compaction bounds the transient
    growth from timeouts that rarely fire.
    """

    __slots__ = ("_heap", "_ready", "_seq", "_dead", "_pool",
                 "compactions", "pool_reuses")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._ready: deque[Event] = deque()
        self._seq = 0
        self._dead = 0          # cancelled events still sitting in the heap
        self._pool: list[Event] = []
        self.compactions = 0
        self.pool_reuses = 0

    # -- scheduling ----------------------------------------------------------
    def push(self, time: float, callback: Callable, args: tuple = ()) -> Event:
        """Create and enqueue an event; returns it (for cancellation).

        The returned event escapes to the caller, so it is never drawn
        from or released to the free list.
        """
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def push_pooled(self, time: float, callback: Callable, args: tuple) -> None:
        """Heap-enqueue a kernel-internal event (reference never escapes,
        so it may come from — and return to — the free list)."""
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.args = args
            self.pool_reuses += 1
        else:
            event = Event(time, self._seq, callback, args)
            event.pooled = True
        self._seq += 1
        heapq.heappush(self._heap, event)

    def push_ready(self, time: float, callback: Callable, args: tuple) -> None:
        """Same-instant fast path: enqueue a kernel-internal callback for
        the *current* simulated instant without touching the heap.

        Callers must pass ``time == now``. Appends are in seq order and
        the clock only moves forward, so the lane stays sorted by
        (time, seq) and a head-to-head merge with the heap at pop
        reproduces exact FIFO order.
        """
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.args = args
            self.pool_reuses += 1
        else:
            event = Event(time, self._seq, callback, args)
            event.pooled = True
        self._seq += 1
        self._ready.append(event)

    def push_back(self, event: Event) -> None:
        """Reinsert a popped-but-undispatched event (``run`` overshot
        ``until``); seq is preserved so ordering is unaffected."""
        heapq.heappush(self._heap, event)

    # -- dequeue -------------------------------------------------------------
    def pop(self) -> Event:
        """Pop the earliest non-cancelled event.

        Raises :class:`SimulationError` when no live event remains.
        """
        event = self._pop_or_none()
        if event is None:
            raise SimulationError("pop from empty event queue")
        return event

    def _pop_or_none(self) -> Event | None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        ready = self._ready
        if ready:
            if not heap or not (heap[0] < ready[0]):
                return ready.popleft()
            return heapq.heappop(heap)
        if heap:
            return heapq.heappop(heap)
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or None when empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if self._ready:
            ready_time = self._ready[0].time
            if heap and heap[0].time < ready_time:
                return heap[0].time
            return ready_time
        return heap[0].time if heap else None

    # -- lifecycle -----------------------------------------------------------
    def recycle(self, event: Event) -> None:
        """Return a dispatched kernel-internal event to the free list.

        Caller-visible events (``pooled`` False) are ignored: a caller
        may still hold them, so reuse could alias a stale ``cancel``
        onto an unrelated future event.
        """
        if event.pooled and len(self._pool) < _POOL_MAX:
            event.callback = None   # drop refs so the pool pins nothing
            event.args = ()
            self._pool.append(event)

    def note_cancelled(self) -> None:
        """Bookkeeping hook: caller cancelled an event it got from push.

        Triggers heap compaction once dead entries outnumber live ones —
        the heap is rebuilt from live events only. Ordering is untouched:
        pop order is the total order (time, seq) regardless of the
        heap's internal arrangement.
        """
        self._dead += 1
        heap = self._heap
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 > len(heap):
            self._heap = [event for event in heap if not event.cancelled]
            heapq.heapify(self._heap)
            self._dead = 0
            self.compactions += 1

    # -- introspection -------------------------------------------------------
    @property
    def heap_size(self) -> int:
        """Raw heap entries, live + cancelled (compaction bounds this)."""
        return len(self._heap)

    def __len__(self) -> int:
        return len(self._heap) - self._dead + len(self._ready)

    def __bool__(self) -> bool:
        return bool(self._ready) or len(self._heap) > self._dead
