"""Event and event-queue primitives for the discrete-event kernel."""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.errors import SimulationError


class Event:
    """A scheduled callback at a simulated time.

    Events are ordered by ``(time, seq)`` where ``seq`` is assigned
    monotonically at scheduling time, making simultaneous events fire in
    FIFO order — the property that makes simulations deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple = ()):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; the queue skips it lazily on pop."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} seq={self.seq}{state}>"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` with lazy cancellation.

    Cancelled events stay in the heap until popped, then get skipped;
    this keeps ``cancel`` O(1) at the cost of transient heap growth, the
    standard trade-off for simulators with timeouts that rarely fire.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def push(self, time: float, callback: Callable, args: tuple = ()) -> Event:
        """Create and enqueue an event; returns it (for cancellation)."""
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Pop the earliest non-cancelled event.

        Raises :class:`SimulationError` when no live event remains.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or None when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def note_cancelled(self) -> None:
        """Bookkeeping hook: caller cancelled an event it got from push."""
        self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
