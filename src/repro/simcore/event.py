"""Event and event-queue primitives for the discrete-event kernel.

The queue is the hottest structure in the whole system — every timeout,
wakeup, and watchdog in every experiment passes through it. Two
implementations share the :class:`Event` type and one external contract
(global ``(time, seq)`` FIFO order, lazy O(1) cancellation, a bounded
free list for kernel-internal events, and a same-instant ready lane):

- :class:`CalendarQueue` — the default (aliased as ``EventQueue``): an
  array-backed calendar queue. Future events land in fixed-width time
  buckets by one multiply + truncate (O(1) amortized insert, no
  comparisons); a bucket is sorted once, in C, when the clock reaches
  it. Events beyond the bucketed window go to an unsorted far-future
  list (append-only — no ordering work until the window advances over
  them), late arrivals at or before the current bucket go to a small
  spill heap, and the window re-sizes itself (bucket count from the
  live population, bucket width from the observed pop rate) whenever
  the population outgrows it or the window is exhausted. Cancelled
  events are reclaimed by first sweeping the far list in place and
  only rebuilding the bucketed window if the in-window dead still
  dominate — the calendar's equivalent of heap compaction.
- :class:`HeapEventQueue` — the previous binary-heap kernel
  (allocation-free compare, lazy-cancel compaction). Kept as a drop-in
  fallback and as the baseline ``benchmarks/bench_kernel.py`` measures
  the calendar queue against.

Correctness story: bucket assignment is ``trunc((time - base) *
inv_width)``, a monotone non-decreasing function of ``time`` under a
fixed regime (float subtract and multiply-by-positive are monotone, as
is truncation), so an earlier event can never land in a later bucket —
and equal times always share a bucket, where exact ``(time, seq)``
comparison decides. Pop therefore only ever needs to merge three
exactly-ordered sources: the sorted remainder of the current bucket,
the spill heap (late arrivals at or before the current bucket), and
the ready lane. The differential suite in
``tests/simcore/test_kernel_differential.py`` drives both queues and a
frozen copy of the seed kernel through randomized workloads and
asserts bit-identical firing sequences.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable
from operator import attrgetter

from repro.errors import SimulationError

# Dead-entry reclamation policy (shared by both queues; see
# _should_reclaim). The large-heap clause keeps the original PR-4
# behaviour: at least _COMPACT_MIN_DEAD cancelled entries and more dead
# than live. The small-heap clause closes the latent gap where a tiny
# live set (live << 64) could carry up to 63 dead entries forever — a
# bloat factor the old `dead >= 64` floor never triggered on.
_COMPACT_MIN_DEAD = 64
_COMPACT_SMALL_MIN = 8

# Free-list cap: bounds worst-case retained garbage, covers the common
# steady-state of a few hundred in-flight wakeups.
_POOL_MAX = 512

# Calendar-queue sizing bounds: bucket count is the power of two
# nearest the live population, clamped to this range.
_MIN_BUCKETS = 16
_MAX_BUCKETS = 1 << 15

# Rate-sized windows span this many expected pops per bucket. Wider
# than the classic calendar-queue target of ~1: bucket sorts run in C
# so modest occupancy is nearly free, while every extra factor here
# divides the window-advance frequency — and each advance pays one
# filter-and-reclassify pass over the whole far-future list.
_SPAN_SLACK = 8.0

# C-speed (time, seq) sort key for bucket sorts.
_TIME_SEQ = attrgetter("time", "seq")


def _should_reclaim(dead: int, live: int) -> bool:
    """Explicit dead-entry reclamation policy.

    Reclaim (heap compaction / calendar rebuild) when cancelled entries
    are both numerous enough to amortize an O(n) sweep and dominate the
    live population:

    - large-population clause: ``dead >= _COMPACT_MIN_DEAD`` and dead
      strictly outnumber live (the original ``dead*2 > len(heap)``
      check, written in live/dead terms);
    - small-population clause: for tiny live sets, reclaim once dead
      reach ``_COMPACT_SMALL_MIN`` and exceed 4x the live count, so a
      handful of live events can no longer pin ~64 dead ones
      indefinitely under sustained cancel churn.

    Every reclamation removes at least half the stored entries, so the
    O(live + dead) sweep is amortized O(1) per cancellation.
    """
    return (dead >= _COMPACT_MIN_DEAD and dead > live) or (
        dead >= _COMPACT_SMALL_MIN and dead > 4 * live
    )


class Event:
    """A scheduled callback at a simulated time.

    Events are ordered by ``(time, seq)`` where ``seq`` is assigned
    monotonically at scheduling time, making simultaneous events fire in
    FIFO order — the property that makes simulations deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "pooled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple = ()):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.pooled = False

    def cancel(self) -> None:
        """Mark the event dead; the queue skips it lazily on pop."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Direct time-then-seq comparison: no tuple allocation per
        # comparison (this runs O(log n) times per heap operation).
        return self.time < other.time or (
            self.time == other.time and self.seq < other.seq
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} seq={self.seq}{state}>"


class _QueueBase:
    """Shared machinery: seq stamping, ready lane, event free list."""

    __slots__ = ("_ready", "_seq", "_pool", "pool_reuses", "compactions",
                 "cancellations")

    def __init__(self) -> None:
        self._ready: deque[Event] = deque()
        self._seq = 0
        self._pool: list[Event] = []
        self.pool_reuses = 0
        self.compactions = 0
        self.cancellations = 0      # caller-cancelled events (note_cancelled)

    @property
    def events_pushed(self) -> int:
        """Total events ever enqueued (the seq counter: every push,
        push_pooled, and ready-lane append stamps one)."""
        return self._seq

    def _make_pooled(self, time: float, callback: Callable, args: tuple) -> Event:
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.args = args
            self.pool_reuses += 1
        else:
            event = Event(time, self._seq, callback, args)
            event.pooled = True
        self._seq += 1
        return event

    def push_ready(self, time: float, callback: Callable, args: tuple) -> None:
        """Same-instant fast path: enqueue a kernel-internal callback for
        the *current* simulated instant without touching the calendar.

        Callers must pass ``time == now``. Appends are in seq order and
        the clock only moves forward, so the lane stays sorted by
        (time, seq) and a head-to-head merge at pop reproduces exact
        FIFO order.
        """
        self._ready.append(self._make_pooled(time, callback, args))

    def recycle(self, event: Event) -> None:
        """Return a dispatched kernel-internal event to the free list.

        Caller-visible events (``pooled`` False) are ignored: a caller
        may still hold them, so reuse could alias a stale ``cancel``
        onto an unrelated future event.
        """
        if event.pooled and len(self._pool) < _POOL_MAX:
            event.callback = None   # drop refs so the pool pins nothing
            event.args = ()
            self._pool.append(event)

    def pop(self) -> Event:
        """Pop the earliest non-cancelled event.

        Raises :class:`SimulationError` when no live event remains.
        """
        event = self._pop_or_none()
        if event is None:
            raise SimulationError("pop from empty event queue")
        return event

    def _pop_or_none(self) -> Event | None:  # pragma: no cover - abstract
        raise NotImplementedError


class CalendarQueue(_QueueBase):
    """Array-backed calendar queue: bucketed near-future event lists, a
    far-future append list, adaptive window sizing, and the ready lane.

    Layout (all times under one *regime* ``(base, width, n_buckets)``):

    - ``_buckets[i]`` holds unsorted events with
      ``trunc((t - base) / width) == i`` — appended in O(1), sorted in
      one C call when the consuming cursor arrives;
    - ``_cur_list``/``_cur_ptr`` is the sorted remainder of the bucket
      currently being drained (``_cur``); late arrivals that map at or
      before ``_cur`` go to the small ``_spill`` heap instead;
    - ``_far`` is a plain *unsorted* list of events beyond the window:
      insert is one append and cancellation stays a flag — the
      far-future watchdog pattern (armed 100s of seconds out, ~96%
      cancelled long before firing) costs O(1) per arm/cancel, and the
      dead are harvested in one C-speed filter pass at the next window
      advance instead of ever entering a comparison structure.

    The window adapts on every advance/rebuild: bucket count tracks
    the live population and bucket width tracks the observed *pop
    rate* (events per simulated second, EWMA), so one bucket holds
    ~one hot event and near-term inserts land by arithmetic, not by
    comparisons. When no rate is known yet the width falls back to an
    order statistic of pending times (the window covers about one
    bucket-count's worth of the soonest events).

    Cancellation is O(1) (flag + counters); cancelled events are
    dropped lazily at the heads and reclaimed wholesale when dead
    entries dominate (:func:`_should_reclaim`), by the same gather +
    re-layout that re-sizes the window.
    """

    __slots__ = (
        "_buckets", "_cur", "_cur_list", "_cur_ptr", "_spill", "_far",
        "_base", "_width", "_inv_width", "_nb", "_nb_f", "_grow_at",
        "_live", "_dead", "_rate", "_mark_t", "_mark_pops", "_last_pop_t",
        "_head_bound", "rebuilds", "advances",
    )

    def __init__(self) -> None:
        super().__init__()
        self._live = 0          # stored, non-cancelled (ready lane excluded)
        self._dead = 0          # cancelled events still stored
        self.rebuilds = 0       # full gather + re-layout count
        self.advances = 0       # window-advance (far-list split) count
        self._spill: list[Event] = []
        self._far: list[Event] = []
        self._cur_list: list[Event] = []
        self._cur_ptr = 0
        self._rate: float | None = None   # EWMA pops per simulated second
        self._mark_t = 0.0
        self._mark_pops = 0
        self._last_pop_t = float("inf")   # becomes a clock lower bound on first pop
        # Lower bound on the earliest stored event's time. Inserts move
        # it down in O(1); settling refreshes it exactly. It can go
        # stale-low (a cancelled min, a popped min) — only ever costing
        # an unnecessary settle, never a wrong order.
        self._head_bound = float("inf")
        self._buckets: list[list[Event]] = []
        self._set_regime(0.0, 1.0, _MIN_BUCKETS)

    # -- regime management ---------------------------------------------------
    def _set_regime(self, base: float, width: float, nb: int) -> None:
        """Install a new (base, width, bucket-count) regime.

        Callers guarantee every bucket list is empty at this point, so
        the bucket array is reused when the count is unchanged.
        """
        self._base = base
        self._width = width
        self._inv_width = 1.0 / width
        self._nb = nb
        self._nb_f = float(nb)
        if len(self._buckets) != nb:
            self._buckets = [[] for _ in range(nb)]
        self._cur = -1          # no bucket consumed yet
        self._grow_at = nb * 2 if nb < _MAX_BUCKETS else (1 << 62)
        self._mark_t = base
        self._mark_pops = 0

    def _reseed(self, time: float) -> None:
        """Re-anchor an empty calendar at ``time`` (keeps nb/width)."""
        self._base = time
        self._cur = -1
        # buckets are empty; cur_list/spill/far are empty too
        self._cur_list = []
        self._cur_ptr = 0
        self._mark_t = time
        self._mark_pops = 0

    def _note_rate(self) -> None:
        """Fold pops since the last layout into the pop-rate EWMA."""
        pops = self._mark_pops
        if pops >= 32:
            elapsed = self._last_pop_t - self._mark_t
            if elapsed > 0.0:
                r = pops / elapsed
                self._rate = r if self._rate is None else (self._rate + r) * 0.5

    def _layout(self, events: list[Event], must_cover: bool = False) -> None:
        """Distribute ``events`` (all live, unsorted) under a freshly
        sized regime. Every other storage structure must be empty.

        ``must_cover`` forces the window to contain the earliest
        pending event — required on the window-advance path, where an
        empty window would advance again forever. Reclamation/growth
        rebuilds leave it off: there the pending set may momentarily be
        far-future-only (a cancel burst arriving via the ready lane),
        and a window sized to *cover* it would be so coarse that the
        imminent hot flow degenerates into the spill heap.

        Ordering is untouched: pop order is the total order
        ``(time, seq)`` regardless of which bucket an event sits in,
        and the layout happens atomically between pops.
        """
        self._note_rate()
        self._dead = 0
        self._live = n = len(events)
        self._spill = []
        self._far = []
        self._cur_list = []
        self._cur_ptr = 0
        if n == 0:
            self._head_bound = float("inf")
            self._set_regime(self._base, self._width, self._nb)
            return
        nb = 1 << (n - 1).bit_length()
        if nb < _MIN_BUCKETS:
            nb = _MIN_BUCKETS
        elif nb > _MAX_BUCKETS:
            nb = _MAX_BUCKETS
        times = [e.time for e in events]
        t_min = min(times)
        # Anchor the window at the last popped time, not the earliest
        # *pending* time: pops are monotone, so it lower-bounds every
        # future insert as well. Anchoring at min(pending) instead is a
        # trap — a layout can run at an instant when only far-future
        # events are stored (e.g. a cancel burst from the ready lane),
        # and a base in the future sends the entire subsequent hot flow
        # through the spill heap.
        base = self._last_pop_t
        if t_min < base:
            base = t_min
        span = 0.0
        rate = self._rate
        if rate is not None and rate > 0.0:
            # Window sized to hold ~nb * _SPAN_SLACK pops at the
            # observed rate (a few hot events per bucket). Rejected
            # when the earliest pending event would fall outside it
            # (rate badly overestimated, e.g. after a same-instant
            # burst, or a pending-only-far-future lull): an empty
            # window would just advance again immediately.
            span = _SPAN_SLACK * nb / rate
            end = base + span
            if must_cover and not (t_min < end):
                span = 0.0
            elif not (end > base):          # rate overflow/underflow
                span = 0.0
        if span <= 0.0:
            # Order-statistic fallback: window wide enough to hold the
            # ~nb soonest pending events (always covers t_min).
            times.sort()
            k = nb - 1 if nb - 1 < n else n - 1
            span = (times[k] - base) * 1.25
        width = span / nb
        if width <= 0.0:
            width = 1.0
        self._head_bound = t_min
        self._set_regime(base, width, nb)
        inv = self._inv_width
        nb_f = self._nb_f
        buckets = self._buckets
        far = self._far
        for e in events:
            diff = (e.time - base) * inv
            if diff < nb_f:
                buckets[int(diff)].append(e)
            else:
                far.append(e)

    def _advance_window(self) -> None:
        """Window exhausted: harvest the far list's dead and lay the
        survivors out under the next window."""
        self.advances += 1
        live = [e for e in self._far if not e.cancelled]
        self._layout(live, must_cover=True)

    def _rebuild(self) -> None:
        """Full gather: collect every stored event, drop the cancelled,
        and re-layout. Triggered by population growth past the bucket
        budget and by dead-entry reclamation (:func:`_should_reclaim`)."""
        self.rebuilds += 1
        events: list[Event] = []
        append = events.append
        lst = self._cur_list
        for k in range(self._cur_ptr, len(lst)):
            e = lst[k]
            if not e.cancelled:
                append(e)
        for e in self._spill:
            if not e.cancelled:
                append(e)
        for bucket in self._buckets:
            if bucket:
                for e in bucket:
                    if not e.cancelled:
                        append(e)
                bucket.clear()
        for e in self._far:
            if not e.cancelled:
                append(e)
        self._layout(events)

    # -- scheduling ----------------------------------------------------------
    def _insert(self, event: Event) -> None:
        live = self._live
        if live == 0 and self._dead == 0:
            self._reseed(event.time)
        time = event.time
        if time < self._head_bound:
            self._head_bound = time
        diff = (time - self._base) * self._inv_width
        if diff < self._nb_f:
            i = int(diff)
            if i > self._cur:
                self._buckets[i].append(event)
            elif i < 0:
                # below the regime base (truncation is not monotone
                # for negative diffs): exact spill heap
                heapq.heappush(self._spill, event)
            else:
                # maps at/before the consuming cursor
                lst = self._cur_list
                ptr = self._cur_ptr
                if ptr < len(lst) and lst[ptr] < event:
                    # fires after the current head: small spill heap
                    heapq.heappush(self._spill, event)
                else:
                    # Rewind: the event precedes the whole consuming
                    # front (typical after the cursor raced ahead to a
                    # far-future bucket during a same-instant burst).
                    # Push the sorted remainder back into its bucket
                    # and restart consumption at the event's bucket.
                    buckets = self._buckets
                    if ptr < len(lst):
                        buckets[self._cur] = lst[ptr:]
                    self._cur_list = []
                    self._cur_ptr = 0
                    cur = self._cur = i - 1
                    buckets[i].append(event)
                    spill = self._spill
                    if spill:
                        # Spill entries mapping past the rewound cursor
                        # go back to their buckets — settle's shortcut
                        # (spill head precedes every un-pulled bucket)
                        # must keep holding.
                        base = self._base
                        inv = self._inv_width
                        keep = []
                        for s in spill:
                            j = int((s.time - base) * inv)
                            if j > cur:
                                buckets[j].append(s)
                            else:
                                keep.append(s)
                        if keep:
                            heapq.heapify(keep)
                        self._spill = keep
        else:
            self._far.append(event)
        self._live = live + 1
        if live >= self._grow_at:
            self._rebuild()

    def push(self, time: float, callback: Callable, args: tuple = ()) -> Event:
        """Create and enqueue an event; returns it (for cancellation).

        The returned event escapes to the caller, so it is never drawn
        from or released to the free list.

        The classification arithmetic is inlined here (and in
        :meth:`push_pooled`) rather than delegated to :meth:`_insert`:
        these two are the hottest calls in the entire system and the
        call frame is measurable at million-event scale. `_insert`
        stays the canonical single implementation for the rare paths.
        """
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        live = self._live
        if time < self._head_bound:
            self._head_bound = time
        diff = (time - self._base) * self._inv_width
        if diff < self._nb_f:
            i = int(diff)
            if i > self._cur and live:
                self._buckets[i].append(event)
                self._live = live + 1
                if live >= self._grow_at:
                    self._rebuild()
                return event
        elif live:
            self._far.append(event)
            self._live = live + 1
            if live >= self._grow_at:
                self._rebuild()
            return event
        self._live = live
        self._insert(event)
        return event

    def push_pooled(self, time: float, callback: Callable, args: tuple) -> None:
        """Enqueue a kernel-internal event (reference never escapes,
        so it may come from — and return to — the free list)."""
        event = self._make_pooled(time, callback, args)
        live = self._live
        if time < self._head_bound:
            self._head_bound = time
        diff = (time - self._base) * self._inv_width
        if diff < self._nb_f:
            i = int(diff)
            if i > self._cur and live:
                self._buckets[i].append(event)
                self._live = live + 1
                if live >= self._grow_at:
                    self._rebuild()
                return
        elif live:
            self._far.append(event)
            self._live = live + 1
            if live >= self._grow_at:
                self._rebuild()
            return
        self._live = live
        self._insert(event)

    def push_back(self, event: Event) -> None:
        """Reinsert a popped-but-undispatched event (``run`` overshot
        ``until``); seq is preserved so ordering is unaffected."""
        self._insert(event)

    # -- dequeue -------------------------------------------------------------
    def _settle(self) -> Event | None:
        """Advance until the earliest stored live event is at the head
        of ``_cur_list`` or ``_spill`` and return it (without removing).

        Cancelled heads are discarded along the way; an exhausted
        window refills itself from the far list via a window advance.
        """
        while True:
            lst = self._cur_list
            ptr = self._cur_ptr
            n = len(lst)
            while ptr < n and lst[ptr].cancelled:
                ptr += 1
                self._dead -= 1
            self._cur_ptr = ptr
            spill = self._spill
            while spill and spill[0].cancelled:
                heapq.heappop(spill)
                self._dead -= 1
            if ptr < n:
                a = lst[ptr]
                if spill:
                    b = spill[0]
                    if b < a:
                        a = b
                self._head_bound = a.time
                return a
            if spill:
                a = spill[0]
                self._head_bound = a.time
                return a
            # current bucket exhausted: advance to the next non-empty one
            cur = self._cur + 1
            buckets = self._buckets
            nb = self._nb
            while cur < nb and not buckets[cur]:
                cur += 1
            if cur < nb:
                raw = buckets[cur]
                buckets[cur] = []
                self._cur = cur
                live = [e for e in raw if not e.cancelled]
                self._dead -= len(raw) - len(live)
                live.sort(key=_TIME_SEQ)
                self._cur_list = live
                self._cur_ptr = 0
                continue
            # window exhausted
            self._cur = nb - 1
            if self._far:
                self._advance_window()
                continue
            self._head_bound = float("inf")
            return None

    def _pop_or_none(self) -> Event | None:
        # Fast path: live head of the current sorted bucket, nothing in
        # the spill heap or the ready lane to merge against.
        lst = self._cur_list
        ptr = self._cur_ptr
        if ptr < len(lst):
            event = lst[ptr]
            if not (event.cancelled or self._spill or self._ready):
                self._cur_ptr = ptr + 1
                self._live -= 1
                self._mark_pops += 1
                self._last_pop_t = event.time
                return event
        ready = self._ready
        if ready:
            # Ready-lane fast path: when every stored event provably
            # fires later, pop the lane without settling — crucially
            # this keeps the cursor parked during same-instant bursts
            # instead of racing it ahead to a far-future bucket that
            # subsequent inserts would then have to spill around.
            head = ready[0]
            if self._live == 0 or self._head_bound > head.time:
                return ready.popleft()
            cand = self._settle()
            if cand is None or not (cand < head):
                return ready.popleft()
        else:
            cand = self._settle()
            if cand is None:
                return None
        lst = self._cur_list
        ptr = self._cur_ptr
        if ptr < len(lst) and lst[ptr] is cand:
            self._cur_ptr = ptr + 1
        else:
            heapq.heappop(self._spill)
        self._live -= 1
        self._mark_pops += 1
        self._last_pop_t = cand.time
        return cand

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or None when empty."""
        cand = self._settle()
        if self._ready:
            ready_time = self._ready[0].time
            if cand is not None and cand.time < ready_time:
                return cand.time
            return ready_time
        return cand.time if cand is not None else None

    # -- lifecycle -----------------------------------------------------------
    def note_cancelled(self) -> None:
        """Bookkeeping hook: caller cancelled an event it got from push.

        Triggers dead-entry reclamation per :func:`_should_reclaim` —
        the calendar is rebuilt from live events only (the equivalent
        of the heap kernel's compaction).
        """
        self.cancellations += 1
        dead = self._dead = self._dead + 1
        live = self._live = self._live - 1
        # _should_reclaim, inlined: this runs once per cancellation.
        if (dead >= _COMPACT_MIN_DEAD and dead > live) or (
            dead >= _COMPACT_SMALL_MIN and dead > 4 * live
        ):
            # Cheap first pass: under watchdog churn the dead are
            # overwhelmingly far-future cancellations, so sweep the
            # unsorted far list in place (one filter pass, no regime
            # change, nothing else touched). Only when the dead sit
            # inside the window does this fall through to the full
            # gather + re-layout.
            far = self._far
            if far:
                kept = [e for e in far if not e.cancelled]
                removed = len(far) - len(kept)
                if removed:
                    self._far = kept
                    dead = self._dead = dead - removed
            if (dead >= _COMPACT_MIN_DEAD and dead > live) or (
                dead >= _COMPACT_SMALL_MIN and dead > 4 * live
            ):
                self._rebuild()
            self.compactions += 1

    # -- introspection -------------------------------------------------------
    @property
    def heap_size(self) -> int:
        """Stored entries, live + cancelled (reclamation bounds this)."""
        return self._live + self._dead

    def __len__(self) -> int:
        return self._live + len(self._ready)

    def __bool__(self) -> bool:
        return bool(self._ready) or self._live > 0


class HeapEventQueue(_QueueBase):
    """Binary heap + same-instant lane (the pre-calendar kernel).

    Cancelled events stay in the heap until popped or compacted away;
    this keeps ``cancel`` O(1) while compaction bounds the transient
    growth from timeouts that rarely fire.
    """

    __slots__ = ("_heap", "_dead")

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[Event] = []
        self._dead = 0          # cancelled events still sitting in the heap

    # -- scheduling ----------------------------------------------------------
    def push(self, time: float, callback: Callable, args: tuple = ()) -> Event:
        """Create and enqueue an event; returns it (for cancellation)."""
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def push_pooled(self, time: float, callback: Callable, args: tuple) -> None:
        """Heap-enqueue a kernel-internal event."""
        heapq.heappush(self._heap, self._make_pooled(time, callback, args))

    def push_back(self, event: Event) -> None:
        """Reinsert a popped-but-undispatched event."""
        heapq.heappush(self._heap, event)

    # -- dequeue -------------------------------------------------------------
    def _pop_or_none(self) -> Event | None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        ready = self._ready
        if ready:
            if not heap or not (heap[0] < ready[0]):
                return ready.popleft()
            return heapq.heappop(heap)
        if heap:
            return heapq.heappop(heap)
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or None when empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if self._ready:
            ready_time = self._ready[0].time
            if heap and heap[0].time < ready_time:
                return heap[0].time
            return ready_time
        return heap[0].time if heap else None

    # -- lifecycle -----------------------------------------------------------
    def note_cancelled(self) -> None:
        """Bookkeeping hook: caller cancelled an event it got from push.

        Triggers heap compaction per :func:`_should_reclaim` — the heap
        is rebuilt from live events only. Ordering is untouched: pop
        order is the total order (time, seq) regardless of the heap's
        internal arrangement.
        """
        self.cancellations += 1
        self._dead += 1
        heap = self._heap
        if _should_reclaim(self._dead, len(heap) - self._dead):
            self._heap = [event for event in heap if not event.cancelled]
            heapq.heapify(self._heap)
            self._dead = 0
            self.compactions += 1

    # -- introspection -------------------------------------------------------
    @property
    def heap_size(self) -> int:
        """Raw heap entries, live + cancelled (compaction bounds this)."""
        return len(self._heap)

    def __len__(self) -> int:
        return len(self._heap) - self._dead + len(self._ready)

    def __bool__(self) -> bool:
        return bool(self._ready) or len(self._heap) > self._dead


# The kernel default. `Simulator` accepts any queue implementing this
# surface, so the heap kernel remains one constructor argument away.
EventQueue = CalendarQueue
