"""Capacity-limited queueing primitives built on the process machinery.

:class:`Resource` models a pool of identical servers (e.g. worker slots at
a site); :class:`Store` models a FIFO buffer of items (e.g. a task queue).
Both grant strictly in FIFO request order, which keeps simulated queueing
behaviour deterministic and analyzable.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.simcore.process import Signal, Waitable
from repro.utils.validation import check_positive


class Request(Waitable):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource", "n")

    def __init__(self, resource: "Resource", n: int):
        super().__init__()
        self.resource = resource
        self.n = n

    def _bind(self, sim) -> None:
        first = self._sim is None
        super()._bind(sim)
        if first:
            self.resource._enqueue(self)


class Resource:
    """FIFO multi-server resource with integer capacity.

    Usage inside a process::

        req = resource.request()
        yield req
        ... hold ...
        resource.release(req)
    """

    def __init__(self, sim, capacity: int, name: str = "resource"):
        self.sim = sim
        self.capacity = int(check_positive("capacity", capacity))
        self._capacity_area = 0.0
        self._last_capacity_change = sim.now
        self.name = name
        self.in_use = 0
        self._waiting: deque[Request] = deque()
        self._granted: set[int] = set()
        # cumulative stats for utilization reporting
        self._busy_area = 0.0
        self._last_change = sim.now
        self.total_granted = 0

    def request(self, n: int = 1) -> Request:
        """Create a claim for ``n`` units (yield it from a process)."""
        if n < 1 or n > self.capacity:
            raise SimulationError(
                f"request of {n} units on {self.name!r} with capacity {self.capacity}"
            )
        return Request(self, n)

    def release(self, req: Request) -> None:
        """Return the units held by a granted request."""
        if id(req) not in self._granted:
            raise SimulationError(f"release of a non-granted request on {self.name!r}")
        self._granted.discard(id(req))
        self._account()
        self.in_use -= req.n
        self._drain()

    def set_capacity(self, capacity: int) -> None:
        """Grow or shrink the server pool (elastic scaling).

        Growing grants queued requests immediately. Shrinking never
        preempts: units above the new capacity drain as their holders
        release, after which grants respect the new limit. Requests
        larger than the new capacity that are already queued will wait
        forever — callers scaling below their largest request size get
        what they asked for.
        """
        capacity = int(check_positive("capacity", capacity))
        self._capacity_area += self.capacity * (self.sim.now - self._last_capacity_change)
        self._last_capacity_change = self.sim.now
        self.capacity = capacity
        self._drain()

    def time_averaged_capacity(self, horizon: float | None = None) -> float:
        """Mean capacity over time (for elastic-pool cost accounting)."""
        end = self.sim.now if horizon is None else horizon
        if end <= 0:
            return float(self.capacity)
        area = self._capacity_area + self.capacity * (end - self._last_capacity_change)
        return area / end

    def cancel(self, req: Request) -> None:
        """Withdraw a request: releases it if granted, removes it from
        the wait queue if still pending. Safe for interrupt handlers
        that do not know whether their claim was granted yet."""
        if id(req) in self._granted:
            self.release(req)
            return
        try:
            self._waiting.remove(req)
        except ValueError:
            pass  # never enqueued or already granted-and-released

    def _enqueue(self, req: Request) -> None:
        self._waiting.append(req)
        self._drain()

    def _drain(self) -> None:
        while self._waiting and self.in_use + self._waiting[0].n <= self.capacity:
            req = self._waiting.popleft()
            self._account()
            self.in_use += req.n
            self._granted.add(id(req))
            self.total_granted += 1
            req._fire(value=req)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += self.in_use * (now - self._last_change)
        self._last_change = now

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def utilization(self, horizon: float | None = None) -> float:
        """Time-averaged fraction of capacity busy since t=0.

        ``horizon`` defaults to the current simulated time.
        """
        end = self.sim.now if horizon is None else horizon
        if end <= 0:
            return 0.0
        area = self._busy_area + self.in_use * (end - self._last_change)
        return area / (end * self.capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} {self.in_use}/{self.capacity} "
            f"queued={len(self._waiting)}>"
        )


class Store:
    """Unbounded-or-bounded FIFO buffer of Python objects.

    ``get()`` returns a waitable that fires with the oldest item;
    ``put(item)`` returns a waitable that fires once the item is stored
    (immediately unless the store is at capacity).
    """

    def __init__(self, sim, capacity: float = float("inf"), name: str = "store"):
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: deque = deque()
        self._getters: deque[Signal] = deque()
        self._putters: deque[tuple[Signal, object]] = deque()
        self.total_put = 0
        self.total_got = 0

    def put(self, item) -> Signal:
        """Queue ``item``; returned signal fires when it is accepted."""
        sig = Signal(self.sim)
        self._putters.append((sig, item))
        self._drain()
        return sig

    def get(self) -> Signal:
        """Returned signal fires with the next item (FIFO)."""
        sig = Signal(self.sim)
        self._getters.append(sig)
        self._drain()
        return sig

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # accept puts while there is room
            if self._putters and len(self.items) < self.capacity:
                sig, item = self._putters.popleft()
                self.items.append(item)
                self.total_put += 1
                sig.trigger(item)
                progressed = True
            # satisfy getters while items exist
            if self._getters and self.items:
                sig = self._getters.popleft()
                item = self.items.popleft()
                self.total_got += 1
                sig.trigger(item)
                progressed = True

    @property
    def level(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Store {self.name!r} level={len(self.items)}>"
