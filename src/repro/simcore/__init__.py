"""Discrete-event simulation kernel (SimPy-flavoured, self-contained).

The kernel provides:

- :class:`Simulator` — event loop with a float simulated clock,
- :class:`Process` — generator-based coroutine processes,
- waitables (:class:`Timeout`, :class:`Signal`, :class:`AllOf`,
  :class:`AnyOf`) that processes ``yield`` to suspend,
- :class:`Resource` / :class:`Store` — capacity-limited queueing primitives,
- :class:`Monitor` — timestamped metric collection.

Determinism: events at equal times fire in schedule order (a monotonic
sequence number breaks ties), so a simulation is a pure function of its
inputs and seeds.
"""

from repro.simcore.event import Event, EventQueue
from repro.simcore.simulation import Simulator
from repro.simcore.process import (
    Process,
    Timeout,
    Signal,
    AllOf,
    AnyOf,
    Interrupt,
    Waitable,
)
from repro.simcore.resources import Resource, Request, Store
from repro.simcore.monitor import Monitor, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Process",
    "Timeout",
    "Signal",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Waitable",
    "Resource",
    "Request",
    "Store",
    "Monitor",
    "TraceRecord",
]
