"""Generator-based processes and the waitables they ``yield``.

A process body is a Python generator. Each ``yield`` hands the kernel a
:class:`Waitable`; the process resumes when that waitable *fires*, with
``yield``'s value being the waitable's result:

    def worker(sim, resource):
        req = resource.request()
        yield req                     # queue for capacity
        yield Timeout(1.5)            # hold it for 1.5 simulated seconds
        resource.release(req)
        return "done"

Processes themselves are waitables, so ``yield other_process`` joins it and
receives its return value (or re-raises its exception).
"""

from __future__ import annotations

import math
from collections.abc import Generator

from repro.errors import SimulationError


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause=None):
        self.cause = cause
        super().__init__(cause)


class Waitable:
    """Base class for everything a process may ``yield``.

    A waitable is *fired* at most once with either a value or an
    exception; subscribed processes are resumed in subscription order.
    """

    __slots__ = ("_sim", "_fired", "_value", "_exc", "_waiters")

    def __init__(self) -> None:
        self._sim = None
        self._fired = False
        self._value = None
        self._exc: BaseException | None = None
        self._waiters: list = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self):
        if not self._fired:
            raise SimulationError("waitable has not fired yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- kernel interface ---------------------------------------------------
    def _bind(self, sim) -> None:
        """Attach to a simulator; idempotent, rejects rebinding."""
        if self._sim is None:
            self._sim = sim
        elif self._sim is not sim:
            raise SimulationError("waitable bound to a different simulator")

    def _subscribe(self, callback) -> None:
        """Register ``callback(waitable)`` to run when this fires."""
        if self._fired:
            self._sim._immediate(callback, self)
        else:
            self._waiters.append(callback)

    def _fire(self, value=None, exc: BaseException | None = None) -> None:
        if self._fired:
            return
        self._fired = True
        self._value = value
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self._sim._immediate(callback, self)


class Timeout(Waitable):
    """Fires ``delay`` seconds after the process yields it."""

    __slots__ = ("delay", "result")

    def __init__(self, delay: float, result=None):
        super().__init__()
        if delay < 0 or not math.isfinite(delay):
            raise SimulationError(
                f"negative or non-finite timeout delay: {delay}"
            )
        self.delay = float(delay)
        self.result = result

    def _bind(self, sim) -> None:
        first = self._sim is None
        super()._bind(sim)
        if first:
            # Pooled wakeup: no caller holds the queue event, and a
            # zero-delay timeout takes the same-instant ready lane.
            sim._wakeup(self.delay, self._fire, (self.result,))


class Signal(Waitable):
    """A manually-triggered waitable (condition-variable flavour).

    Create it bound to a simulator, hand it to any number of processes,
    and call :meth:`trigger` (or :meth:`fail`) once.
    """

    def __init__(self, sim=None):
        super().__init__()
        if sim is not None:
            self._sim = sim

    def trigger(self, value=None) -> None:
        if self._sim is None:
            raise SimulationError("signal not bound to a simulator yet")
        self._fire(value=value)

    def fail(self, exc: BaseException) -> None:
        if self._sim is None:
            raise SimulationError("signal not bound to a simulator yet")
        self._fire(exc=exc)


class AllOf(Waitable):
    """Fires when all children fire; value is the list of child values.

    Fails fast with the first child exception.
    """

    __slots__ = ("children", "_pending")

    def __init__(self, children):
        super().__init__()
        self.children = list(children)
        self._pending = len(self.children)

    def _bind(self, sim) -> None:
        first = self._sim is None
        super()._bind(sim)
        if not first:
            return
        if not self.children:
            sim._immediate(lambda _w: self._fire([]), self)
            return
        for child in self.children:
            child._bind(sim)
            child._subscribe(self._on_child)

    def _on_child(self, child: Waitable) -> None:
        if self._fired:
            return
        if child._exc is not None:
            self._fire(exc=child._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self._fire([c._value for c in self.children])


class AnyOf(Waitable):
    """Fires when the first child fires; value is ``(index, value)``."""

    __slots__ = ("children",)

    def __init__(self, children):
        super().__init__()
        self.children = list(children)
        if not self.children:
            raise SimulationError("AnyOf needs at least one child")

    def _bind(self, sim) -> None:
        first = self._sim is None
        super()._bind(sim)
        if not first:
            return
        for child in self.children:
            child._bind(sim)
            child._subscribe(self._on_child)

    def _on_child(self, child: Waitable) -> None:
        if self._fired:
            return
        if child._exc is not None:
            self._fire(exc=child._exc)
            return
        self._fire((self.children.index(child), child._value))


class Process(Waitable):
    """A running generator; fires on return (joinable, interruptible)."""

    __slots__ = ("gen", "name", "_current_wait")

    def __init__(self, gen: Generator, name: str = ""):
        super().__init__()
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(gen).__name__}"
            )
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._current_wait: Waitable | None = None

    @property
    def alive(self) -> bool:
        return not self._fired

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._fired:
            return
        if self._sim is None:
            raise SimulationError("cannot interrupt an unstarted process")
        # Stop listening to whatever it was waiting on, then resume it
        # with the interrupt at the current simulated instant.
        wait = self._current_wait
        self._current_wait = None
        exc = Interrupt(cause)
        self._sim._immediate(self._resume_with_exc, (wait, exc))

    def _resume_with_exc(self, payload) -> None:
        wait, exc = payload
        if self._fired:
            return
        self._step(None, exc, expected_wait=wait)

    # -- kernel driving ------------------------------------------------------
    def _bind(self, sim) -> None:
        first = self._sim is None
        super()._bind(sim)
        if first:
            sim._immediate(lambda _w: self._step(None, None), self)

    def _on_wait_fired(self, wait: Waitable) -> None:
        if self._fired or wait is not self._current_wait:
            return  # stale wake-up (e.g. interrupted meanwhile)
        self._current_wait = None
        self._step(wait._value, wait._exc, expected_wait=None)

    def _step(self, value, exc, expected_wait=None) -> None:
        try:
            if exc is not None:
                yielded = self.gen.throw(exc)
            else:
                yielded = self.gen.send(value)
        except StopIteration as stop:
            self._fire(value=stop.value)
            return
        except Interrupt as unhandled:
            self._fire(exc=unhandled)
            return
        except Exception as failure:
            self._fire(exc=failure)
            return

        if not isinstance(yielded, Waitable):
            err = SimulationError(
                f"process {self.name!r} yielded {yielded!r}; expected a Waitable"
            )
            self.gen.close()
            self._fire(exc=err)
            return
        yielded._bind(self._sim)
        self._current_wait = yielded
        yielded._subscribe(self._on_wait_fired)
