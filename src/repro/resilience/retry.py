"""Retry pacing: exponential backoff, seeded jitter, run-wide budgets."""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import derive_seed
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class RetryPolicy:
    """How one task's failed attempts are re-tried.

    ``max_attempts`` caps total executions of a task (first try
    included).  The delay before retry ``k`` (``k`` = failures so far,
    1-based) is::

        min(backoff_max_s, backoff_base_s * backoff_factor ** (k - 1))

    scaled by a jitter multiplier drawn uniformly from
    ``[1 - jitter_frac, 1 + jitter_frac]``.  Jitter is *keyed*, not
    streamed: the draw depends only on ``(seed, key, k)``, so two runs
    with the same seed back off identically regardless of how many
    other tasks are retrying around them.

    ``backoff_base_s=0`` gives the naive immediate-requeue policy.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 60.0
    jitter_frac: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        check_non_negative("backoff_base_s", self.backoff_base_s)
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        check_non_negative("backoff_max_s", self.backoff_max_s)
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigurationError(
                f"jitter_frac must be in [0, 1), got {self.jitter_frac}"
            )

    def allows_retry(self, failures: int) -> bool:
        """True while another attempt is permitted after ``failures``."""
        return failures < self.max_attempts

    def delay_s(self, failures: int, key: str = "") -> float:
        """Backoff before the retry following failure ``failures``."""
        if failures < 1:
            raise ConfigurationError(
                f"delay_s needs failures >= 1, got {failures}"
            )
        if self.backoff_base_s == 0.0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** (failures - 1)
        delay = min(delay, self.backoff_max_s)
        if self.jitter_frac > 0.0:
            rng = np.random.default_rng(
                derive_seed(self.seed, f"retry:{key}:{failures}")
            )
            delay *= 1.0 + self.jitter_frac * (2.0 * rng.random() - 1.0)
        return float(delay)


class RetryBudget:
    """Run-wide cap on *fast* retries.

    Each retry asks the budget for a token.  While tokens remain the
    retry proceeds at its policy backoff; once the budget is spent,
    :meth:`acquire` returns False and the caller is expected to pace the
    retry with ``cooldown_s`` instead — a failure storm degrades into a
    slow trickle rather than a thundering herd, and no task is ever
    dropped for lack of budget.

    Thread-safe so the real dataflow kernel can share one instance
    across worker threads.
    """

    def __init__(self, max_fast_retries: int | None = None,
                 cooldown_s: float = 5.0):
        if max_fast_retries is not None and max_fast_retries < 0:
            raise ConfigurationError(
                f"max_fast_retries must be >= 0, got {max_fast_retries}"
            )
        check_non_negative("cooldown_s", cooldown_s)
        self.max_fast_retries = max_fast_retries
        self.cooldown_s = float(cooldown_s)
        self.spent = 0
        self.denied = 0
        self._lock = threading.Lock()

    @property
    def remaining(self) -> int | None:
        """Tokens left, or None when the budget is unlimited."""
        if self.max_fast_retries is None:
            return None
        return max(0, self.max_fast_retries - self.spent)

    def acquire(self) -> bool:
        """Take one fast-retry token; False once the budget is dry."""
        with self._lock:
            if (self.max_fast_retries is not None
                    and self.spent >= self.max_fast_retries):
                self.denied += 1
                return False
            self.spent += 1
            return True
