"""Speculative re-execution of straggling tasks ("hedging").

The tail-at-scale defence: when an attempt has run well past its
estimate, launch a duplicate on a *different* site and let the two
race; the first finisher wins and the loser is cancelled.  Hedging
trades a bounded amount of wasted work for a much shorter latency
tail — E13 quantifies both sides of that trade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class HedgePolicy:
    """When and how to hedge a straggling attempt.

    An attempt placed at ``t0`` with estimated finish ``t_est`` is
    declared straggling at::

        t0 + (t_est - t0) * trigger_factor + min_head_start_s

    if it has not completed by then.  ``max_hedges`` bounds duplicates
    per task (per attempt chain); a hedge is only launched when a site
    other than the ones already running the task is available.
    """

    trigger_factor: float = 1.5
    min_head_start_s: float = 0.0
    max_hedges: int = 1

    def __post_init__(self):
        if self.trigger_factor < 1.0:
            raise ConfigurationError(
                f"trigger_factor must be >= 1, got {self.trigger_factor}"
            )
        check_non_negative("min_head_start_s", self.min_head_start_s)
        if self.max_hedges < 1:
            raise ConfigurationError(
                f"max_hedges must be >= 1, got {self.max_hedges}"
            )

    def hedge_at(self, placed_at: float, est_finish: float) -> float:
        """Absolute instant at which to check-and-hedge this attempt."""
        horizon = max(est_finish - placed_at, 0.0)
        return placed_at + horizon * self.trigger_factor + self.min_head_start_s
