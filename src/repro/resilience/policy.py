"""The policy bundle the execution layers consume, plus run accounting.

:class:`ResiliencePolicy` groups the retry/breaker/hedge/timeout knobs
into one object with three named presets — the policies E13 races:

- ``naive()`` — immediate requeue on failure, nothing else,
- ``backoff()`` — exponential backoff + a run-wide retry budget,
- ``full()`` — backoff + budget + per-site circuit breakers +
  speculative hedging + per-attempt timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.resilience.breaker import BreakerConfig, BreakerRegistry
from repro.resilience.hedging import HedgePolicy
from repro.resilience.retry import RetryBudget, RetryPolicy


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything a scheduler needs to know about failure response.

    ``timeout_factor`` bounds each attempt at ``factor *`` its planner
    estimate (stage + exec); ``timeout_min_s`` floors that bound so
    tiny tasks are not killed by estimate noise.  ``None`` disables
    attempt timeouts.
    """

    name: str = "custom"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    budget_fast_retries: int | None = None
    budget_cooldown_s: float = 5.0
    breaker: BreakerConfig | None = None
    hedge: HedgePolicy | None = None
    timeout_factor: float | None = None
    timeout_min_s: float = 0.0

    def __post_init__(self):
        if self.timeout_factor is not None and self.timeout_factor <= 0:
            raise ConfigurationError(
                f"timeout_factor must be positive, got {self.timeout_factor}"
            )
        if self.timeout_min_s < 0:
            raise ConfigurationError(
                f"timeout_min_s must be >= 0, got {self.timeout_min_s}"
            )

    # -- presets ----------------------------------------------------------------
    @classmethod
    def naive(cls, max_attempts: int = 30) -> "ResiliencePolicy":
        """Immediate requeue on every failure (the seed behaviour)."""
        return cls(
            name="naive-retry",
            retry=RetryPolicy(max_attempts=max_attempts, backoff_base_s=0.0),
        )

    @classmethod
    def backoff(cls, max_attempts: int = 30, *, seed: int = 0,
                base_s: float = 0.5, factor: float = 2.0,
                max_s: float = 30.0, jitter: float = 0.25,
                budget: int | None = 200,
                cooldown_s: float = 10.0) -> "ResiliencePolicy":
        """Exponential backoff with jitter plus a run-wide retry budget."""
        return cls(
            name="backoff+budget",
            retry=RetryPolicy(
                max_attempts=max_attempts, backoff_base_s=base_s,
                backoff_factor=factor, backoff_max_s=max_s,
                jitter_frac=jitter, seed=seed,
            ),
            budget_fast_retries=budget,
            budget_cooldown_s=cooldown_s,
        )

    @classmethod
    def full(cls, max_attempts: int = 30, *, seed: int = 0,
             base_s: float = 0.5, factor: float = 2.0,
             max_s: float = 30.0, jitter: float = 0.25,
             budget: int | None = 200, cooldown_s: float = 10.0,
             failure_threshold: int = 2, reset_timeout_s: float = 20.0,
             hedge_trigger: float = 1.5, max_hedges: int = 1,
             timeout_factor: float | None = 4.0,
             timeout_min_s: float = 5.0) -> "ResiliencePolicy":
        """Backoff + budget + circuit breakers + hedging + timeouts."""
        return cls(
            name="backoff+breakers+hedging",
            retry=RetryPolicy(
                max_attempts=max_attempts, backoff_base_s=base_s,
                backoff_factor=factor, backoff_max_s=max_s,
                jitter_frac=jitter, seed=seed,
            ),
            budget_fast_retries=budget,
            budget_cooldown_s=cooldown_s,
            breaker=BreakerConfig(failure_threshold=failure_threshold,
                                  reset_timeout_s=reset_timeout_s),
            hedge=HedgePolicy(trigger_factor=hedge_trigger,
                              max_hedges=max_hedges),
            timeout_factor=timeout_factor,
            timeout_min_s=timeout_min_s,
        )

    # -- per-run state factories --------------------------------------------------
    def make_budget(self) -> RetryBudget | None:
        """Fresh budget for one run (None when unlimited & cooldown-free)."""
        if self.budget_fast_retries is None:
            return None
        return RetryBudget(self.budget_fast_retries,
                           cooldown_s=self.budget_cooldown_s)

    def make_breakers(self) -> BreakerRegistry | None:
        """Fresh breaker registry for one run."""
        if self.breaker is None:
            return None
        return BreakerRegistry(self.breaker)

    def attempt_timeout_s(self, est_total_s: float) -> float | None:
        """Per-attempt wall bound given the planner estimate, or None."""
        if self.timeout_factor is None:
            return None
        return max(self.timeout_min_s, est_total_s * self.timeout_factor)


@dataclass
class ResilienceStats:
    """Every recovery action one run took, counted.

    ``retries`` counts re-executions after failures (interrupts,
    transient faults, timeouts); ``hedges_launched/won/lost`` track
    speculative duplicates; ``lost_tasks`` must stay zero under any
    policy — resilience paces recovery, it never drops work.
    """

    policy: str = "none"
    attempts_total: int = 0
    retries: int = 0
    backoff_delay_s: float = 0.0
    budget_denials: int = 0
    breaker_trips: int = 0
    breaker_probes: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_lost: int = 0
    timeouts: int = 0
    transient_faults: int = 0
    lost_tasks: int = 0

    def as_row(self) -> dict:
        """Flat dict for tables and trace attributes."""
        return {
            "policy": self.policy,
            "attempts": self.attempts_total,
            "retries": self.retries,
            "backoff_s": self.backoff_delay_s,
            "budget_denials": self.budget_denials,
            "breaker_trips": self.breaker_trips,
            "hedges": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "timeouts": self.timeouts,
            "lost": self.lost_tasks,
        }
