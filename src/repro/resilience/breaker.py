"""Circuit breakers: per-site / per-endpoint health gating.

The classic three-state machine.  CLOSED counts consecutive failures;
at ``failure_threshold`` the breaker trips OPEN and the protected
target stops receiving work.  After ``reset_timeout_s`` it becomes
HALF_OPEN and admits a single probe; the probe's outcome either closes
the breaker or re-opens it for another timeout.

Breakers here are *clock-passive*: they never schedule events.  Callers
pass ``now`` (simulated or wall time) into every method, which keeps
the state machine identical between the simulator and real execution
and keeps traced runs bit-identical to untraced ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive


class BreakerState(Enum):
    """Health of one protected target."""

    CLOSED = "closed"          # healthy, all traffic admitted
    OPEN = "open"              # tripped, all traffic rejected
    HALF_OPEN = "half_open"    # timeout elapsed, one probe admitted


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs for one :class:`CircuitBreaker`."""

    failure_threshold: int = 3
    reset_timeout_s: float = 30.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        check_positive("reset_timeout_s", self.reset_timeout_s)


class CircuitBreaker:
    """One target's failure-gate.

    ``record_failure``/``record_success`` feed outcomes in;
    ``blocked(now)`` answers "should new work avoid this target right
    now".  A HALF_OPEN breaker admits exactly one probe at a time: the
    placer calls :meth:`note_probe` when it actually routes the probe,
    which blocks further traffic until that probe's outcome arrives.
    """

    def __init__(self, config: BreakerConfig | None = None, name: str = ""):
        self.config = config or BreakerConfig()
        self.name = name
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        # counters
        self.trips = 0
        self.probes = 0

    # -- state -----------------------------------------------------------------
    def state(self, now: float) -> BreakerState:
        if self._opened_at is None:
            return BreakerState.CLOSED
        if now >= self._opened_at + self.config.reset_timeout_s:
            return BreakerState.HALF_OPEN
        return BreakerState.OPEN

    def blocked(self, now: float) -> bool:
        """True when new work must not be sent to this target."""
        state = self.state(now)
        if state is BreakerState.CLOSED:
            return False
        if state is BreakerState.OPEN:
            return True
        return self._probe_in_flight

    @property
    def next_probe_at(self) -> float | None:
        """When the breaker next admits a probe (None when closed or
        already probing)."""
        if self._opened_at is None or self._probe_in_flight:
            return None
        return self._opened_at + self.config.reset_timeout_s

    # -- transitions -----------------------------------------------------------
    def note_probe(self, now: float) -> None:
        """The caller routed the half-open probe; block until it lands.
        Idempotent while that probe is in flight: a window admits (and
        counts) exactly one probe."""
        if (self.state(now) is BreakerState.HALF_OPEN
                and not self._probe_in_flight):
            self._probe_in_flight = True
            self.probes += 1

    def record_success(self, now: float) -> None:
        self._consecutive_failures = 0
        self._opened_at = None
        self._probe_in_flight = False

    def record_failure(self, now: float) -> None:
        self._probe_in_flight = False
        if self.state(now) is BreakerState.HALF_OPEN:
            # failed probe: straight back to OPEN for another timeout
            self._opened_at = now
            return
        self._consecutive_failures += 1
        if (self._opened_at is None
                and self._consecutive_failures >= self.config.failure_threshold):
            self._opened_at = now
            self.trips += 1


class BreakerRegistry:
    """Lazily-created breakers keyed by target name (site, endpoint)."""

    def __init__(self, config: BreakerConfig | None = None):
        self.config = config or BreakerConfig()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, name: str) -> CircuitBreaker:
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(self.config, name=name)
            self._breakers[name] = breaker
        return breaker

    def blocked(self, name: str, now: float) -> bool:
        breaker = self._breakers.get(name)
        return breaker.blocked(now) if breaker is not None else False

    def blocked_targets(self, names, now: float) -> set[str]:
        """Subset of ``names`` that must not receive new work."""
        return {n for n in names if self.blocked(n, now)}

    def next_probe_at(self, now: float) -> float | None:
        """Earliest future instant any blocked breaker admits a probe."""
        times = [
            b.next_probe_at for b in self._breakers.values()
            if b.blocked(now) and b.next_probe_at is not None
        ]
        return min(times) if times else None

    @property
    def total_trips(self) -> int:
        return sum(b.trips for b in self._breakers.values())

    @property
    def total_probes(self) -> int:
        return sum(b.probes for b in self._breakers.values())

    def states(self, now: float) -> dict[str, BreakerState]:
        return {n: b.state(now) for n, b in self._breakers.items()}
