"""Resilience policies: how the system responds when the continuum fails.

One policy vocabulary shared by the simulated continuum scheduler and
the real-execution dataflow kernel:

- :class:`RetryPolicy` — exponential backoff with deterministic seeded
  jitter and per-task attempt caps,
- :class:`RetryBudget` — a run-wide cap on *fast* retries, so failure
  storms degrade into paced recovery instead of thrashing,
- :class:`CircuitBreaker` / :class:`BreakerRegistry` — per-site (or
  per-endpoint) closed -> open -> half-open health gating,
- :class:`HedgePolicy` — speculative re-execution of straggling tasks
  on a second site, cancelling the loser,
- :class:`ResiliencePolicy` — the bundle the scheduler consumes, with
  the three presets E13 races against each other
  (:meth:`ResiliencePolicy.naive`, :meth:`ResiliencePolicy.backoff`,
  :meth:`ResiliencePolicy.full`),
- :class:`ResilienceStats` — per-run accounting of every recovery
  action taken (retries, trips, probes, hedges, timeouts).

Everything here is deterministic: jitter is keyed on (seed, task,
attempt) rather than drawn from shared stream state, so the same seed
produces the same recovery schedule no matter which policy knobs are
active around it.
"""

from repro.resilience.breaker import (
    BreakerConfig,
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.hedging import HedgePolicy
from repro.resilience.policy import ResiliencePolicy, ResilienceStats
from repro.resilience.retry import RetryBudget, RetryPolicy

__all__ = [
    "RetryPolicy",
    "RetryBudget",
    "BreakerState",
    "BreakerConfig",
    "CircuitBreaker",
    "BreakerRegistry",
    "HedgePolicy",
    "ResiliencePolicy",
    "ResilienceStats",
]
