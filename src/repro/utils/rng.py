"""Named, seeded random-number streams.

Every stochastic component in the library (workload generators, failure
injectors, adaptive schedulers) pulls its randomness from a *named stream*
derived from one root seed. Two simulations constructed with the same root
seed therefore produce identical traces regardless of the order in which
components happen to be instantiated — a property the test suite relies on.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``(root_seed, name)``.

    Uses SHA-256 rather than Python's ``hash`` so derivation is stable
    across processes and interpreter runs (``PYTHONHASHSEED`` independent).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of independent, reproducible ``numpy.random.Generator`` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("arrivals")   # same object back
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry whose root seed is derived from ``name``.

        Useful for giving each experiment repetition its own disjoint
        family of streams.
        """
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))

    def reset(self) -> None:
        """Drop all streams so they restart from their derived seeds."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
