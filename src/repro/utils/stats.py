"""Small statistics helpers used by monitors and benchmark reports."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


class RunningStats:
    """Welford single-pass accumulator for mean/variance/min/max.

    Suitable for streaming metric collection inside the simulator where
    storing every sample would be wasteful.
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-safe

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel Welford merge)."""
        out = RunningStats()
        n = self.count + other.count
        if n == 0:
            return out
        delta = other._mean - self._mean
        out.count = n
        out._mean = self._mean + delta * other.count / n
        out._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


def percentile(samples, q: float) -> float:
    """Percentile with linear interpolation; ``q`` in [0, 100].

    Returns NaN for an empty sample set instead of raising, which keeps
    report code branch-free.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        return math.nan
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample set."""

    count: int
    mean: float
    std: float
    min: float
    p50: float
    p95: float
    p99: float
    max: float


def summarize(samples) -> Summary:
    """Compute a :class:`Summary` of ``samples`` (any iterable of floats)."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        nan = math.nan
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        max=float(arr.max()),
    )
