"""Argument-validation helpers that raise :class:`ConfigurationError`.

Centralizing the checks keeps error messages uniform ("<name> must be
positive, got <value>") across every constructor in the library.
"""

from __future__ import annotations

import math
from collections.abc import Container

from repro.errors import ConfigurationError


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` and finite; return it as float."""
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be positive and finite, got {value}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` and finite; return it as float."""
    value = float(value)
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be non-negative and finite, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it as float."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in(name: str, value, allowed: Container):
    """Require membership of ``value`` in ``allowed``; return it."""
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
