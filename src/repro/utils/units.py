"""Unit constants and formatting helpers.

Conventions used throughout the library:

- **time** is in seconds (float),
- **data sizes** are in bytes (float; fractions allowed mid-computation),
- **bandwidth** is in bytes/second,
- **compute demand** is in abstract *work units*; a site processes
  ``speed`` work units per second.

Network-equipment marketing uses bits/second; the ``Kbps``/``Mbps``/...
constants convert those to bytes/second so that ``10 * Gbps`` reads
naturally while the stored value stays in library units.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

# Data sizes (bytes). Decimal (SI) prefixes, matching how transfer tools
# like Globus report volumes.
KB: float = 1e3
MB: float = 1e6
GB: float = 1e9
TB: float = 1e12

# Bandwidth (bytes/second) from bits/second marketing units.
Kbps: float = 1e3 / 8.0
Mbps: float = 1e6 / 8.0
Gbps: float = 1e9 / 8.0
Tbps: float = 1e12 / 8.0

# Time (seconds).
MICROSECOND: float = 1e-6
MILLISECOND: float = 1e-3
SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0

_SIZE_SUFFIXES = [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]

_PARSE_UNITS = {
    "b": 1.0,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "kib": 2.0**10,
    "mib": 2.0**20,
    "gib": 2.0**30,
    "tib": 2.0**40,
}


def format_bytes(n: float) -> str:
    """Render a byte count with a human-friendly SI suffix.

    >>> format_bytes(2.5e9)
    '2.50 GB'
    """
    sign = "-" if n < 0 else ""
    n = abs(float(n))
    for factor, suffix in _SIZE_SUFFIXES:
        if n >= factor:
            return f"{sign}{n / factor:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth in bits/second marketing units.

    >>> format_rate(10 * Gbps)
    '10.00 Gbps'
    """
    bits = float(bytes_per_second) * 8.0
    for factor, suffix in [(1e12, "Tbps"), (1e9, "Gbps"), (1e6, "Mbps"), (1e3, "Kbps")]:
        if bits >= factor:
            return f"{bits / factor:.2f} {suffix}"
    return f"{bits:.0f} bps"


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit.

    >>> format_time(0.0042)
    '4.200 ms'
    """
    s = float(seconds)
    sign = "-" if s < 0 else ""
    s = abs(s)
    if s >= HOUR:
        return f"{sign}{s / HOUR:.2f} h"
    if s >= MINUTE:
        return f"{sign}{s / MINUTE:.2f} min"
    if s >= 1.0:
        return f"{sign}{s:.3f} s"
    if s >= MILLISECOND:
        return f"{sign}{s / MILLISECOND:.3f} ms"
    return f"{sign}{s / MICROSECOND:.3f} us"


def parse_size(text: str | float | int) -> float:
    """Parse a human-written size like ``"1.5 GB"`` into bytes.

    Numeric input is returned unchanged (assumed bytes already). Binary
    (``GiB``) and decimal (``GB``) suffixes are both accepted.
    """
    if isinstance(text, (int, float)):
        return float(text)
    cleaned = text.strip().lower().replace(" ", "")
    idx = len(cleaned)
    while idx > 0 and not (cleaned[idx - 1].isdigit() or cleaned[idx - 1] == "."):
        idx -= 1
    number, unit = cleaned[:idx], cleaned[idx:]
    if not number:
        raise ConfigurationError(f"cannot parse size {text!r}: no numeric part")
    try:
        value = float(number)
    except ValueError as exc:
        raise ConfigurationError(f"cannot parse size {text!r}") from exc
    if not unit:
        return value
    try:
        return value * _PARSE_UNITS[unit]
    except KeyError:
        raise ConfigurationError(
            f"cannot parse size {text!r}: unknown unit {unit!r}"
        ) from None
