"""Shared utilities: units, seeded RNG streams, statistics, tables.

These helpers are deliberately dependency-light; everything else in the
library builds on them.
"""

from repro.utils.units import (
    KB,
    MB,
    GB,
    TB,
    Kbps,
    Mbps,
    Gbps,
    Tbps,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    MINUTE,
    HOUR,
    format_bytes,
    format_rate,
    format_time,
    parse_size,
)
from repro.utils.rng import RngRegistry, derive_seed
from repro.utils.stats import RunningStats, percentile, summarize
from repro.utils.tables import ascii_table, format_row
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "Kbps",
    "Mbps",
    "Gbps",
    "Tbps",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "MINUTE",
    "HOUR",
    "format_bytes",
    "format_rate",
    "format_time",
    "parse_size",
    "RngRegistry",
    "derive_seed",
    "RunningStats",
    "percentile",
    "summarize",
    "ascii_table",
    "format_row",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
]
