"""Plain-text table rendering for benchmark harness output.

The benchmark harness prints the same rows/series a paper table would
contain; this module renders them without any third-party dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _normalize(value):
    """Unwrap numpy scalars (np.float64, np.bool_) to Python types so
    rendering and alignment treat them like their builtin equivalents."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (ValueError, TypeError):
            return value
    return value


def format_row(values: Sequence, widths: Sequence[int]) -> str:
    """Format one row given per-column widths; numbers right-aligned."""
    cells = []
    for value, width in zip(values, widths):
        value = _normalize(value)
        text = _render(value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            cells.append(text.rjust(width))
        else:
            cells.append(text.ljust(width))
    return "| " + " | ".join(cells) + " |"


def _render(value) -> str:
    value = _normalize(value)
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def ascii_table(
    rows: Sequence[Mapping] | Sequence[Sequence],
    headers: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows (dicts or sequences) as a GitHub-style text table.

    Dict rows take their column order from ``headers`` if given, else from
    the first row's key order.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"

    if isinstance(rows[0], Mapping):
        if headers is None:
            # union of keys over all rows, first-seen order
            headers = []
            for row in rows:
                for key in row:
                    if key not in headers:
                        headers.append(key)
        body = [[row.get(h, "") for h in headers] for row in rows]
    else:
        body = [list(row) for row in rows]
        if headers is None:
            headers = [f"col{i}" for i in range(len(body[0]))]

    rendered = [[_render(v) for v in row] for row in body]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rendered)) if rendered else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers), widths))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in body:
        lines.append(format_row(row, widths))
    return "\n".join(lines)
