"""Climate ensemble: one workflow, many objectives.

An ensemble of simulation members could run anywhere in the hierarchy.
Sweeping the multi-objective strategy's weights traces the policy family
from "as fast as possible" (HPC, power-hungry) to "as cheap/frugal as
possible" (edge, slow); the Pareto front shows which compromises are
actually worth making.

Run:  python examples/climate_portfolio.py
"""

from repro.bench.e02_strategies import place_externals
from repro.continuum import hierarchical_continuum
from repro.core import ContinuumScheduler, MultiObjectiveStrategy
from repro.core.strategies import pareto_front
from repro.utils.tables import ascii_table
from repro.workloads import climate_ensemble

WEIGHTS = [
    {"time": 1.0},
    {"time": 0.7, "energy": 0.3},
    {"time": 0.5, "energy": 0.25, "usd": 0.25},
    {"time": 0.3, "energy": 0.7},
    {"energy": 1.0},
    {"usd": 1.0},
]


def main() -> None:
    topo = hierarchical_continuum(n_devices=4, n_edge=2, n_fog=2,
                                  n_cloud=1, n_hpc=1, seed=11)
    print(topo.describe())
    dag, externals = climate_ensemble(6)
    points = []
    for weights in WEIGHTS:
        strategy = MultiObjectiveStrategy(weights)
        result = ContinuumScheduler(topo, seed=11).run(
            dag, strategy,
            external_inputs=place_externals(topo, externals),
        )
        points.append({
            "policy": strategy.name,
            "makespan_s": result.makespan,
            "energy_kJ": result.energy_j / 1e3,
            "usd": result.total_usd,
        })
    front = set(pareto_front(points, ["makespan_s", "energy_kJ", "usd"]))
    for i, point in enumerate(points):
        point["pareto"] = i in front
    print(ascii_table(points, title="6-member ensemble under weight sweep"))
    print(f"{len(front)}/{len(points)} policies are Pareto-optimal: "
          "no single placement answer exists — the continuum is a "
          "trade-off surface, not a hierarchy with one right level.")


if __name__ == "__main__":
    main()
