"""Adapting to a changing network: bandit placement in action.

A recurring inference batch runs every episode against an edge/cloud
pair. Mid-sequence, the WAN degrades 50x. A fixed cloud placement keeps
paying the congested link; the UCB bandit notices its observed
turnarounds jump and migrates back to the edge within a few episodes.

Run:  python examples/adaptive_placement.py
"""

from repro.bench.e08_adaptive import _episode_dag, _topology
from repro.core import (
    AdaptiveUCBStrategy,
    ContinuumScheduler,
    FixedSiteStrategy,
)
from repro.utils.tables import ascii_table

N_EPISODES = 16
SHIFT_AT = 8


def main() -> None:
    adaptive = AdaptiveUCBStrategy(window=18)
    rows = []
    for episode in range(N_EPISODES):
        degraded = episode >= SHIFT_AT
        topo = _topology(degraded)

        def run(strategy):
            dag, ext = _episode_dag(episode)
            return ContinuumScheduler(topo).run(dag, strategy,
                                                external_inputs=ext)

        static = run(FixedSiteStrategy("cloud")).makespan
        adaptive_run = run(adaptive)
        chosen = {r.site for r in adaptive_run.records.values()}
        rows.append({
            "episode": episode,
            "wan": "16 Mbps" if degraded else "800 Mbps",
            "static_cloud_s": static,
            "adaptive_s": adaptive_run.makespan,
            "adaptive_ran_at": "+".join(sorted(chosen)),
        })
    print(ascii_table(rows, title="Recurring batch under a WAN brownout"))
    pre = [r for r in rows if r["wan"] == "800 Mbps"]
    post = [r for r in rows if r["wan"] == "16 Mbps"]
    print(f"post-shift mean: static {sum(r['static_cloud_s'] for r in post) / len(post):.1f}s, "
          f"adaptive {sum(r['adaptive_s'] for r in post) / len(post):.1f}s")


if __name__ == "__main__":
    main()
