"""Light-source beamline: data born at the instrument, deadlines on QA.

The scenario the keynote opens with: an X-ray detector pours out frames;
scientists need reconstruction + quality feedback fast enough to steer
the experiment. This example runs the beamline pipeline on the
science-grid preset under several placement strategies and shows why
"where should I compute?" has no one answer — then adds an edge cache
and measures how much WAN traffic it saves on re-analysis.

Run:  python examples/beamline_streaming.py
"""

from repro.continuum import science_grid
from repro.core import ContinuumScheduler, slo_report
from repro.core.strategies import strategy_catalog
from repro.datafabric import (
    Cache,
    Dataset,
    ReplicaCatalog,
    StagedReader,
    TransferService,
)
from repro.netsim import FlowNetwork
from repro.simcore import Simulator
from repro.utils.tables import ascii_table
from repro.utils.units import GB, MB
from repro.workloads import beamline_pipeline, zipf_dataset_stream
from repro.utils.rng import RngRegistry


def compare_strategies() -> None:
    topo = science_grid()
    print(topo.describe())
    rows = []
    for strategy in strategy_catalog():
        dag, frames = beamline_pipeline(8, deadline_s=20.0)
        result = ContinuumScheduler(topo).run(
            dag, strategy,
            external_inputs=[(f, "instrument") for f in frames],
        )
        slo = slo_report(result.records.values())
        rows.append({
            "strategy": strategy.name,
            "makespan_s": result.makespan,
            "GB_moved": result.bytes_moved / GB,
            "energy_kJ": result.energy_j / 1e3,
            "usd": result.total_usd,
            "deadlines": f"{slo.met}/{slo.total}",
        })
    print(ascii_table(rows, title="8-frame beamline run, per strategy"))


def cached_reanalysis() -> None:
    """Scientists re-read a hot subset of frames during analysis."""
    topo = science_grid()
    sim = Simulator()
    net = FlowNetwork(sim, topo)
    catalog = ReplicaCatalog()
    n_frames = 30
    for i in range(n_frames):
        catalog.register(Dataset(f"frame{i}", 200 * MB))
        catalog.add_replica(f"frame{i}", "hpc-center")  # archived at HPC
    transfers = TransferService(sim, net, catalog)
    reader = StagedReader(transfers)
    reader.attach_cache("beamline-edge", Cache(2 * GB, "lru"))

    stream = zipf_dataset_stream(
        n_frames, 200, alpha=1.2, rng=RngRegistry(7).stream("reanalysis")
    )

    def analyst():
        for idx in stream:
            yield reader.read(f"frame{idx}", "beamline-edge")

    sim.run_process(analyst())
    cache = reader.cache_at("beamline-edge")
    streamed = sum(
        catalog.dataset(f"frame{i}").size_bytes for i in stream
    )
    print()
    print("Re-analysis of 200 frame reads at the beamline edge:")
    print(f"  cache hit rate      {cache.hit_rate:.0%}")
    print(f"  bytes over the WAN  {net.total_bytes_moved / GB:.1f} GB "
          f"(vs {streamed / GB:.1f} GB if streamed every time)")


if __name__ == "__main__":
    compare_strategies()
    cached_reanalysis()
