"""Smart-city video analytics over the federated FaaS fabric.

Cameras fire inference requests against funcX-style endpoints. The
example contrasts three serving configurations on the same request
stream — edge endpoints, the regional cloud, and batched edge serving —
and reports latency percentiles and SLO satisfaction for each.

Run:  python examples/edge_video_analytics.py
"""

from repro.continuum import smart_city
from repro.faas import (
    Batcher,
    BatchPolicy,
    ContainerModel,
    FaaSFabric,
    FunctionDef,
)
from repro.netsim import FlowNetwork
from repro.simcore import Simulator, Timeout
from repro.utils.rng import RngRegistry
from repro.utils.stats import summarize
from repro.utils.tables import ascii_table
from repro.workloads import request_stream

DEADLINE_S = 0.4
DETECT = FunctionDef("detect-objects", work=1.6, kind="dnn-inference",
                     request_bytes=3e5, response_bytes=2e4,
                     batch_overhead_work=0.8)
WARM = ContainerModel(cold_start_s=1.5, warm_start_s=0.005,
                      keep_alive_s=600.0)


def build_world():
    topo = smart_city()
    sim = Simulator()
    fabric = FaaSFabric(sim, FlowNetwork(sim, topo))
    fabric.registry.register(DETECT)
    for site in ("edgebox0", "edgebox1", "edgebox2", "region-cloud"):
        fabric.deploy_endpoint(site, containers=WARM)
    return sim, topo, fabric


def drive(mode: str, seed: int = 3) -> dict:
    sim, topo, fabric = build_world()
    requests = request_stream(6.0, 60.0, deadline_s=DEADLINE_S,
                              rng=RngRegistry(seed).stream("cameras"))
    cameras = [f"camera{i}" for i in range(6)]
    latencies, met = [], []

    batchers = {}
    if mode == "edge-batched":
        for i in range(3):
            batchers[f"edgebox{i}"] = Batcher(
                fabric.endpoint_at(f"edgebox{i}"), DETECT.name,
                BatchPolicy(max_batch=4, max_wait_s=0.03),
            )

    def client(req, camera_idx):
        yield Timeout(req.arrival_s)
        camera = cameras[camera_idx % 6]
        if mode == "cloud":
            target = "region-cloud"
            outcome = yield fabric.invoke(DETECT.name, client_site=camera,
                                          endpoint_site=target)
            latency = outcome.total_latency
        elif mode == "edge":
            target = f"edgebox{(camera_idx % 6) // 2}"
            outcome = yield fabric.invoke(DETECT.name, client_site=camera,
                                          endpoint_site=target)
            latency = outcome.total_latency
        else:  # edge-batched: batching happens endpoint-side
            target = f"edgebox{(camera_idx % 6) // 2}"
            outcome = yield batchers[target].submit()
            latency = outcome.latency
        latencies.append(latency)
        met.append(latency <= req.deadline_s)

    for i, req in enumerate(requests):
        sim.process(client(req, i))
    sim.run()
    stats = summarize(latencies)
    return {
        "serving": mode,
        "requests": len(latencies),
        "p50_ms": stats.p50 * 1e3,
        "p95_ms": stats.p95 * 1e3,
        "slo_met": f"{sum(met)}/{len(met)}",
    }


if __name__ == "__main__":
    rows = [drive(mode) for mode in ("edge", "cloud", "edge-batched")]
    print(ascii_table(
        rows,
        title=f"Object detection from 6 cameras, {DEADLINE_S * 1e3:.0f} ms SLO",
    ))
    print("edge keeps the WAN out of the loop; batching trades median "
          "latency for endpoint throughput")
