"""Quickstart: the two faces of the library in ~60 lines each.

1. **Simulated continuum** — build an edge/cloud world, describe a tiny
   workflow, and ask the scheduler where things should run.
2. **Real execution** — run actual Python functions through the
   Parsl-style dataflow kernel with implicit dependencies.

Run:  python examples/quickstart.py
"""

from repro.continuum import edge_cloud_pair
from repro.core import ContinuumScheduler, GreedyEFTStrategy, offload_analysis
from repro.datafabric import Dataset
from repro.utils.units import GB, Gbps, MB, Mbps, format_time
from repro.workflow import DataFlowKernel, TaskSpec, ThreadExecutor, WorkflowDAG


def simulated_continuum() -> None:
    print("=== 1. Where should I compute? (simulated) ===")
    # A 1 GB dataset sits at the edge. The cloud is 8x faster.
    # Ask the closed-form model first:
    for bandwidth, label in [(50 * Mbps, "50 Mbps"), (10 * Gbps, "10 Gbps")]:
        verdict = offload_analysis(
            work=80.0, data_bytes=1 * GB, local_speed=1.0, remote_speed=8.0,
            bandwidth_Bps=bandwidth, latency_s=0.025,
        )
        winner = "offload to cloud" if verdict.offload_wins else "stay at edge"
        print(f"  at {label:>8}: local {format_time(verdict.local_time_s)}, "
              f"remote {format_time(verdict.remote_time_s)} -> {winner}")

    # Now let the scheduler decide, end to end, with a real DAG.
    topo = edge_cloud_pair(bandwidth_Bps=10 * Gbps, latency_s=0.025)
    dag = WorkflowDAG("quickstart")
    dag.add_task(TaskSpec("preprocess", work=10.0, inputs=("raw",),
                          outputs=(Dataset("clean", 200 * MB),)))
    dag.add_task(TaskSpec("analyze", work=60.0, inputs=("clean",),
                          outputs=(Dataset("model", 10 * MB),)))
    dag.add_task(TaskSpec("report", work=2.0, inputs=("model",)))

    result = ContinuumScheduler(topo).run(
        dag, GreedyEFTStrategy(),
        external_inputs=[(Dataset("raw", 1 * GB), "edge")],
    )
    print(f"  makespan {format_time(result.makespan)}, "
          f"moved {result.bytes_moved / MB:.0f} MB, "
          f"${result.total_usd:.4f}")
    for name, record in result.records.items():
        print(f"    {name:<10} -> {record.site:<6} "
              f"(stage {format_time(record.stage_time)}, "
              f"exec {format_time(record.exec_time)})")


def real_execution() -> None:
    print("=== 2. Parsl-style real execution ===")
    with DataFlowKernel(ThreadExecutor(max_workers=4), memoize=True) as dfk:

        @dfk.app()
        def square(x):
            return x * x

        @dfk.app()
        def total(xs):
            return sum(xs)

        # futures passed as arguments create the dependency graph
        squares = [square(i) for i in range(10)]
        answer = total(squares)
        print(f"  sum of squares 0..9 = {answer.result()}")

        # memoization: re-submitting identical work is free
        again = total([square(i) for i in range(10)])
        print(f"  again = {again.result()} "
              f"(served {dfk.tasks_memoized} tasks from cache)")


if __name__ == "__main__":
    simulated_continuum()
    print()
    real_execution()
