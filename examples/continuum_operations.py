"""A day of continuum operations: load, failures, and the dashboards.

The most realistic scenario in the examples set: an online stream of
analysis jobs arrives at a science campus while a fog outage and a WAN
brownout hit mid-day. The run shows

- the stream scheduler absorbing load across sites,
- failure injection interrupting and re-placing tasks,
- the reporting tools (Gantt, utilization, placement) that make the
  resulting schedule legible, and
- topology serialization for reproducing the setup elsewhere.

Run:  python examples/continuum_operations.py
"""

import json

from repro.continuum import science_grid, topology_to_dict
from repro.core import ContinuumScheduler, GreedyEFTStrategy, StreamJob
from repro.datafabric import Dataset
from repro.faults import LinkBrownout, OutageSchedule, SiteOutage
from repro.report import ascii_gantt, placement_summary, utilization_table
from repro.utils.units import MB
from repro.workflow import TaskSpec, WorkflowDAG


def analysis_job(idx: int, arrival: float) -> StreamJob:
    """A small ingest -> reduce -> fit pipeline born at the instrument."""
    tag = f"run{idx}"
    dag = WorkflowDAG(tag)
    raw = Dataset(f"{tag}-raw", 80 * MB)
    reduced = Dataset(f"{tag}-reduced", 8 * MB)
    dag.add_task(TaskSpec(f"{tag}-ingest", work=2.0, inputs=(raw.name,),
                          outputs=(reduced,)))
    fit = Dataset(f"{tag}-fit", 1 * MB)
    dag.add_task(TaskSpec(f"{tag}-reduce", work=12.0, inputs=(reduced.name,),
                          outputs=(fit,), kind="reconstruction"))
    dag.add_task(TaskSpec(f"{tag}-report", work=1.0, inputs=(fit.name,)))
    return StreamJob(arrival, dag, ((raw, "instrument"),))


def main() -> None:
    topo = science_grid()
    print(topo.describe())

    # the infrastructure config is data: shareable, diffable
    blob = json.dumps(topology_to_dict(topo))
    print(f"(topology serializes to {len(blob)} bytes of JSON)\n")

    jobs = [analysis_job(i, arrival=4.0 * i) for i in range(8)]
    incidents = OutageSchedule()
    # the HPC center (where greedy sends everything) goes dark mid-day,
    # and the fat pipe to it browns out just as it recovers
    incidents.add(SiteOutage("hpc-center", start_s=8.0, duration_s=10.0))
    incidents.add(LinkBrownout("campus-fog", "hpc-center",
                               start_s=18.0, duration_s=15.0, factor=0.02))

    stream = ContinuumScheduler(topo, seed=1).run_stream(
        jobs, GreedyEFTStrategy(), failures=incidents, task_retries=10
    )

    print(f"{len(stream.jobs)} jobs finished; mean response "
          f"{stream.mean_response_time:.2f}s; "
          f"{stream.interruptions} task interruptions, "
          f"{stream.wasted_exec_s:.1f}s of execution re-done\n")

    # build a ScheduleResult-shaped view for the reporting helpers
    from repro.core.placement import ScheduleResult

    view = ScheduleResult(
        workflow="operations-day", strategy=stream.strategy,
        makespan=stream.last_finish, records=stream.records, decisions=[],
        bytes_moved=stream.bytes_moved, transfer_usd=stream.transfer_usd,
        compute_usd=stream.compute_usd, energy_j=stream.energy_j,
        site_busy_s={}, interruptions=stream.interruptions,
        wasted_exec_s=stream.wasted_exec_s,
    )
    print(placement_summary(view))
    print()
    print(ascii_gantt(view, width=64))


if __name__ == "__main__":
    main()
