"""End-to-end wiring: a scheduled run with the control plane enabled
executes deterministically, pays read latency, books staleness stats,
and survives partition schedules — while control=None stays the exact
single-copy code path."""

import pytest

from repro.continuum import science_grid
from repro.controlplane import ControlPlaneConfig
from repro.core import ContinuumScheduler
from repro.core.strategies import RoundRobinStrategy
from repro.datafabric import Dataset
from repro.errors import SchedulingError
from repro.faults.partitions import PartitionSchedule, PartitionWindow
from repro.workflow import TaskSpec, WorkflowDAG


def small_dag(n_waves=4, width=3):
    dag = WorkflowDAG("ctl-int")
    ref = Dataset("ref", 5e7)
    prev = None
    for w in range(n_waves):
        outs = []
        for t in range(width):
            out = Dataset(f"w{w}t{t}", 1e6)
            inputs = ("ref",) if prev is None else ("ref", prev)
            dag.add_task(TaskSpec(f"w{w}-t{t}", work=2.0,
                                  inputs=inputs, outputs=(out,)))
            outs.append(out)
        gate = Dataset(f"gate{w}", 1e5)
        dag.add_task(TaskSpec(f"sync{w}", work=1.0,
                              inputs=tuple(o.name for o in outs),
                              outputs=(gate,)))
        prev = gate.name
    return dag, [(ref, "beamline-edge")]


def run_once(mode=None, lag=2.0, partitions=None, seed=7):
    topo = science_grid()
    dag, placed = small_dag()
    control = None
    if mode is not None:
        control = ControlPlaneConfig.for_lag(lag, n_sites=5, read_mode=mode)
    return ContinuumScheduler(topo, seed=seed).run(
        dag, RoundRobinStrategy(), external_inputs=placed,
        control=control, partitions=partitions)


class TestWiring:
    def test_disabled_plane_reports_no_control_stats(self):
        result = run_once(mode=None)
        assert result.control is None

    def test_enabled_plane_populates_stats(self):
        result = run_once(mode="quorum")
        stats = result.control
        assert stats is not None
        assert stats.reads > 0
        assert stats.quorum_reads == stats.reads
        assert stats.misplacements == 0

    def test_quorum_reads_cost_makespan(self):
        baseline = run_once(mode=None).makespan
        quorum = run_once(mode="quorum", lag=8.0).makespan
        assert quorum > baseline

    def test_partitions_without_control_rejected(self):
        schedule = PartitionSchedule().add(
            PartitionWindow(1.0, 10.0, "leader"))
        with pytest.raises(SchedulingError):
            run_once(mode=None, partitions=schedule)

    def test_partitioned_run_completes_and_heals(self):
        schedule = PartitionSchedule().add(
            PartitionWindow(5.0, 60.0, "leader"))
        result = run_once(mode="quorum", lag=2.0, partitions=schedule)
        stats = result.control
        assert stats.reads > 0
        # reads during the split either waited for the majority's new
        # leader or degraded — both leave an unavailability trace
        assert stats.unavailable_events >= 1


class TestDeterminism:
    @pytest.mark.parametrize("mode", ["stale", "quorum"])
    def test_same_seed_same_run(self, mode):
        schedule = PartitionSchedule().add(
            PartitionWindow(5.0, 40.0, "minority", (0, 1)))
        a = run_once(mode=mode, partitions=schedule)
        b = run_once(mode=mode, partitions=schedule)
        assert a.makespan == b.makespan
        assert a.control.reads == b.control.reads
        assert a.control.read_latencies == b.control.read_latencies
        assert a.control.misplacements == b.control.misplacements
        assert a.control.wasted_bytes == b.control.wasted_bytes
