"""Read-mode semantics of the client session: latencies, truth pinning,
failover, degradation, and the breaker on the leader RPC path."""

import pytest

from repro.controlplane import (
    ControlPlane,
    ControlPlaneConfig,
    ControlPlaneSession,
)
from repro.faults.partitions import PartitionWindow
from repro.resilience import BreakerState
from repro.utils.rng import RngRegistry


def make(read_mode, **overrides):
    base = dict(n_sites=5, replication_lag_s=0.05,
                heartbeat_interval_s=0.5, election_timeout_s=(3.0, 6.0),
                read_mode=read_mode)
    base.update(overrides)
    plane = ControlPlane(ControlPlaneConfig(**base), RngRegistry(0))
    return plane, ControlPlaneSession(plane)


class TestHealthyLatencies:
    def test_stale_costs_one_local_rtt(self):
        plane, session = make("stale")
        latency = session.placement_read(1.0)
        assert latency == plane.config.local_read_rtt_s
        assert not session.pinned_truth
        assert session.stats.stale_reads == 1

    def test_lease_costs_one_leader_round_trip(self):
        plane, session = make("lease")
        latency = session.placement_read(1.0)
        assert latency == pytest.approx(2 * plane.config.replication_lag_s)
        assert session.pinned_truth
        assert session.stats.lease_reads == 1

    def test_quorum_costs_two_round_trips(self):
        plane, session = make("quorum")
        latency = session.placement_read(1.0)
        assert latency == pytest.approx(4 * plane.config.replication_lag_s)
        assert session.pinned_truth
        assert session.stats.quorum_reads == 1

    def test_stale_pins_attached_follower_state(self):
        plane, session = make("stale")
        session.placement_read(1.0)
        assert session.current_state() is plane.node_state(
            plane.config.attached_node)


class TestUnavailability:
    def test_quorum_waits_out_leaderless_window(self):
        # cold start: no leader until the first election completes
        plane, session = make("quorum", warm_start=False)
        latency = session.placement_read(0.0)
        assert session.pinned_truth
        assert session.stats.unavailable_events == 1
        assert session.stats.unavailable_s > 0.0
        assert latency > 4 * plane.config.replication_lag_s

    def test_quorum_degrades_when_retries_exhaust(self):
        plane, session = make(
            "quorum", warm_start=False,
            election_timeout_s=(50.0, 60.0), max_read_retries=3)
        latency = session.placement_read(0.0)
        assert not session.pinned_truth
        assert session.stats.degraded_reads == 1
        assert session.stats.stale_reads == 1
        assert latency == pytest.approx(
            3 * plane.config.read_retry_interval_s
            + plane.config.local_read_rtt_s)

    def test_breaker_trips_and_short_circuits_probing(self):
        plane, session = make(
            "quorum", warm_start=False,
            election_timeout_s=(200.0, 300.0), max_read_retries=2)
        for t in (0.0, 5.0, 10.0):
            session.placement_read(t)
        breaker = session.breakers.get("ctl:leader-rpc")
        assert breaker.trips == 1
        assert breaker.state(15.0) is BreakerState.OPEN
        # blocked breaker: degrade instantly instead of burning retries
        latency = session.placement_read(15.0)
        assert latency == pytest.approx(plane.config.local_read_rtt_s)
        assert session.stats.degraded_reads == 4

    def test_lease_falls_back_to_retry_path_without_leader(self):
        plane, session = make(
            "lease", warm_start=False,
            election_timeout_s=(50.0, 60.0), max_read_retries=2)
        session.placement_read(0.0)
        assert not session.pinned_truth
        assert session.stats.degraded_reads == 1


class TestStaleFailover:
    def test_failover_to_freshest_when_attached_site_cut_off(self):
        plane, session = make("stale", max_staleness_s=5.0)
        plane.advance(1.0)
        plane.begin_partition(
            PartitionWindow(1.0, 400.0, "single", (0,)), 1.0)
        session.placement_read(60.0)
        if plane.config.attached_node not in (plane.leader_id(),):
            assert session.stats.failover_reads == 1
            fresh = plane.freshest_node()
            assert session.current_state() is plane.node_state(fresh)

    def test_violation_counted_when_every_node_is_stale(self):
        plane, session = make(
            "stale", n_sites=2, max_staleness_s=5.0)
        plane.advance(1.0)
        # a 2-node cluster split leaves no quorum anywhere: heartbeats
        # stop and even the freshest node ages past the bound
        plane.begin_partition(
            PartitionWindow(1.0, 400.0, "single", (1,)), 1.0)
        session.placement_read(60.0)
        assert session.stats.staleness_violations == 1


class TestLatencyStats:
    def test_p99_and_mean_track_recorded_reads(self):
        plane, session = make("quorum")
        for t in range(1, 6):
            session.placement_read(float(t))
        stats = session.stats
        assert stats.reads == 5
        assert len(stats.read_latencies) == 5
        assert stats.read_latency_p99() == pytest.approx(
            4 * plane.config.replication_lag_s)
        assert stats.read_latency_mean() == pytest.approx(
            4 * plane.config.replication_lag_s)
