"""Cluster-level consensus behaviour: elections, determinism,
split-brain safety, and post-partition convergence — the acceptance
pins for the replicated control plane."""

import pytest

from repro.controlplane import Command, ControlPlane, ControlPlaneConfig
from repro.controlplane.node import Role
from repro.errors import ControlPlaneError
from repro.faults.partitions import PartitionWindow
from repro.utils.rng import RngRegistry


def cfg(**overrides):
    base = dict(n_sites=5, replication_lag_s=0.05,
                heartbeat_interval_s=0.5, election_timeout_s=(3.0, 6.0))
    base.update(overrides)
    return ControlPlaneConfig(**base)


def mutation(i):
    if i % 3 == 0:
        return Command("register", (f"d{i}", 100.0 * (i + 1), "generic"))
    name = f"d{3 * (i // 3)}"
    if i % 3 == 1:
        return Command("add_replica", (name, f"s{i % 4}", float(i)))
    return Command("endpoint_down", (f"s{i % 4}",))


class TestConfig:
    def test_rejects_bad_read_mode(self):
        with pytest.raises(ControlPlaneError):
            cfg(read_mode="eventually")

    def test_rejects_degenerate_cluster(self):
        with pytest.raises(ControlPlaneError):
            cfg(n_sites=0)

    def test_rejects_election_window_inside_heartbeat(self):
        with pytest.raises(ControlPlaneError):
            cfg(heartbeat_interval_s=2.0, election_timeout_s=(3.0, 6.0))

    def test_for_lag_derives_consistent_timers(self):
        for lag in (0.0, 0.05, 2.0, 32.0):
            c = ControlPlaneConfig.for_lag(lag, n_sites=5, read_mode="stale")
            assert c.replication_lag_s == lag
            assert c.heartbeat_interval_s >= 2.5 * lag
            lo, hi = c.election_timeout_s
            assert lo > 2 * c.heartbeat_interval_s
            # a leased leader must be deposable only after its lease dies
            assert c.lease_duration_s < lo


class TestWarmStart:
    def test_leader_exists_at_t0(self):
        plane = ControlPlane(cfg())
        assert plane.leader_id() is not None

    def test_write_commits_within_a_few_lags(self):
        plane = ControlPlane(cfg())
        ticket = plane.submit(Command("register", ("d", 1.0, "x")), 0.0)
        plane.advance(1.0)
        assert ticket.acked
        # client->leader + append + reply = 3 one-way lags
        assert ticket.commit_latency_s == pytest.approx(0.15)

    def test_cold_start_elects_exactly_one_leader(self):
        plane = ControlPlane(cfg(warm_start=False), RngRegistry(7))
        plane.advance(30.0)
        leaders = [n.id for n in plane.nodes if n.role is Role.LEADER]
        assert len(leaders) == 1
        assert plane.elections_started >= 1


class TestDeterminism:
    def _run(self, seed, *, warm=False, submit_every=2.0, horizon=120.0):
        plane = ControlPlane(cfg(warm_start=warm), RngRegistry(seed))
        i, t = 0, 0.0
        while t < horizon:
            plane.advance(t)
            if plane.leader_id() is not None:
                plane.submit(mutation(i), t)
                i += 1
            t += submit_every
        plane.advance(horizon + 60.0)
        return plane

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_same_seed_same_winners_and_commit_order(self, seed):
        a = self._run(seed)
        b = self._run(seed)
        assert [n.terms_led for n in a.nodes] == [n.terms_led for n in b.nodes]
        assert a.elections_started == b.elections_started
        # identical commit order => identical applied images everywhere
        assert a.fingerprints() == b.fingerprints()
        assert a.writes_acked == b.writes_acked
        assert a.commit_latencies == b.commit_latencies

    def test_different_seeds_may_elect_different_winners(self):
        winners = {self._run(s).leader_id() for s in range(8)}
        assert len(winners) > 1

    def test_steady_run_converges(self):
        plane = self._run(5, warm=True)
        assert plane.converged()
        assert len(set(plane.fingerprints())) == 1


class TestSplitBrain:
    """A minority island never serves a write ack (acceptance pin)."""

    def _partitioned_plane(self):
        plane = ControlPlane(cfg(), RngRegistry(1))
        plane.advance(5.0)
        old_leader = plane.leader_id()
        plane.begin_partition(PartitionWindow(5.0, 500.0, "leader"), 5.0)
        return plane, old_leader

    def test_minority_leader_never_acks(self):
        plane, old_leader = self._partitioned_plane()
        ticket = plane.submit(
            Command("register", ("rogue", 1.0, "x")), 6.0, target=old_leader)
        plane.advance(400.0)
        assert not ticket.acked
        assert not plane.quorum_connected(old_leader)

    def test_majority_elects_successor_and_keeps_committing(self):
        plane, old_leader = self._partitioned_plane()
        plane.advance(60.0)
        new_leader = plane.leader_id()
        assert new_leader is not None
        assert new_leader != old_leader
        assert plane.nodes[new_leader].term > plane.nodes[old_leader].term
        ticket = plane.submit(Command("register", ("ok", 1.0, "x")), 60.0)
        plane.advance(120.0)
        assert ticket.acked

    def test_superseded_minority_entry_never_commits(self):
        plane, old_leader = self._partitioned_plane()
        rogue = plane.submit(
            Command("register", ("rogue", 1.0, "x")), 6.0, target=old_leader)
        plane.advance(60.0)
        good = plane.submit(Command("register", ("ok", 1.0, "x")), 60.0)
        plane.end_partition(100.0)
        plane.advance(300.0)
        assert good.acked
        assert not rogue.acked
        # the rogue entry was truncated everywhere, not just unacked
        assert all("rogue" not in n.state.dataset_names for n in plane.nodes)


class TestHealing:
    def test_heal_converges_within_bounded_catchup(self):
        plane = ControlPlane(cfg(), RngRegistry(2))
        t = 0.0
        for i in range(10):
            plane.submit(mutation(i), t)
            t += 1.0
        plane.begin_partition(
            PartitionWindow(t, t + 100.0, "minority", (0, 1)), t)
        for i in range(10, 20):
            plane.submit(mutation(i), t)
            t += 1.0
        plane.advance(t)
        assert not plane.converged()
        plane.end_partition(t + 100.0)
        # bounded catch-up: a handful of heartbeat rounds, not an epoch
        heal_budget = 20 * plane.config.heartbeat_interval_s
        plane.advance(t + 100.0 + heal_budget)
        assert plane.converged()
        assert len(set(plane.fingerprints())) == 1

    def test_heal_after_leader_isolation_reconverges_to_majority_log(self):
        plane = ControlPlane(cfg(), RngRegistry(4))
        plane.advance(5.0)
        plane.begin_partition(PartitionWindow(5.0, 80.0, "leader"), 5.0)
        plane.advance(60.0)
        committed = []
        for i in range(5):
            committed.append(plane.submit(mutation(3 * i), 60.0 + i))
        plane.end_partition(80.0)
        plane.advance(200.0)
        assert all(ticket.acked for ticket in committed)
        assert plane.converged()

    def test_partition_event_bookkeeping(self):
        plane = ControlPlane(cfg(), RngRegistry(0))
        plane.advance(1.0)
        event = plane.begin_partition(
            PartitionWindow(1.0, 50.0, "minority", (3, 4)), 1.0)
        assert plane.partitioned
        assert event.island == (3, 4)
        plane.end_partition(50.0)
        assert not plane.partitioned
        assert event.healed_at == 50.0
        assert plane.messages_dropped > 0 or plane.messages_sent >= 0


class TestBootstrap:
    def test_bootstrap_prefix_applies_everywhere(self):
        plane = ControlPlane(cfg())
        plane.bootstrap([
            Command("register", ("d", 100.0, "x")),
            Command("add_replica", ("d", "edge", 0.0)),
        ])
        assert all(n.state.has_replica("d", "edge") for n in plane.nodes)
        assert plane.writes_submitted == 0

    def test_bootstrap_after_start_is_illegal(self):
        plane = ControlPlane(cfg())
        plane.advance(1.0)
        with pytest.raises(ControlPlaneError):
            plane.bootstrap([Command("register", ("d", 1.0, "x"))])


class TestSnapshots:
    def test_compaction_still_converges_and_acks(self):
        plane = ControlPlane(cfg(snapshot_threshold=8), RngRegistry(3))
        t, tickets = 0.0, []
        for i in range(60):
            tickets.append(plane.submit(mutation(i), t))
            t += 0.5
        plane.advance(t + 30.0)
        assert all(ticket.acked for ticket in tickets)
        assert plane.converged()
        assert any(n.log.base_index > 0 for n in plane.nodes)
