"""Differential oracle: a linearized (quorum/lease) view must agree
with a plain single-copy :class:`ReplicaCatalog` fed the identical
mutation sequence, on every event where both are defined — and once
replication quiesces, every node's committed image must agree too."""

import pytest

from repro.continuum import Link, Site, Tier, Topology
from repro.controlplane import (
    ControlPlane,
    ControlPlaneConfig,
    ControlPlaneSession,
    MirroredCatalog,
    ReplicatedCatalogView,
)
from repro.datafabric import Dataset, ReplicaCatalog
from repro.utils.rng import RngRegistry

SIZE = 100.0

# (time, op, args) — d0 keeps >= 1 replica at all times so source
# resolution stays defined on both sides of the diff
SCRIPT = [
    (1.0, "add_replica", ("d0", "b")),
    (3.0, "register", ("x0",)),
    (3.0, "add_replica", ("x0", "b")),
    (5.0, "drop_replica", ("d0", "a")),
    (7.0, "add_replica", ("d1", "c")),
    (9.0, "add_replica", ("d0", "a")),
    (11.0, "add_replica", ("x0", "a")),
    (13.0, "drop_replica", ("x0", "b")),
    (15.0, "drop_replica", ("d1", "a")),
]


def topo3():
    topo = Topology()
    topo.add_site(Site("a", Tier.CLOUD))
    topo.add_site(Site("b", Tier.EDGE))
    topo.add_site(Site("c", Tier.EDGE))
    topo.add_link("a", "c", Link(0.0, 10.0))
    topo.add_link("b", "c", Link(0.0, 1000.0))
    return topo


def apply_event(catalog, op, args, t):
    if op == "register":
        catalog.register(Dataset(args[0], SIZE))
    elif op == "add_replica":
        catalog.add_replica(args[0], args[1], t)
    else:
        catalog.drop_replica(*args)


class TestQuorumEqualsSingleCopy:
    @pytest.mark.parametrize("mode", ["quorum", "lease"])
    def test_every_event_agrees(self, mode):
        topo = topo3()
        config = ControlPlaneConfig.for_lag(1.0, n_sites=5, read_mode=mode)
        plane = ControlPlane(config, RngRegistry(0))
        session = ControlPlaneSession(plane)
        mirrored = MirroredCatalog(plane)
        clock = [0.0]
        mirrored.bind_clock(lambda: clock[0])
        view = ReplicatedCatalogView(session, mirrored, topo)
        plain = ReplicaCatalog()
        for catalog in (mirrored, plain):
            catalog.register(Dataset("d0", SIZE))
            catalog.register(Dataset("d1", SIZE))
        mirrored.bootstrap_replica("d0", "a")
        mirrored.bootstrap_replica("d1", "a")
        plain.add_replica("d0", "a")
        plain.add_replica("d1", "a")

        for t, op, args in SCRIPT:
            clock[0] = t
            apply_event(mirrored, op, args, t)
            apply_event(plain, op, args, t)
            session.placement_read(t + 0.1)
            assert session.pinned_truth
            assert view.version == plain.version
            assert view.dataset_names == plain.dataset_names
            for name in plain.dataset_names:
                assert view.dataset_version(name) == \
                    plain.dataset_version(name)
                assert view.locations(name) == plain.locations(name)
                if plain.locations(name):
                    src, _ = view.transfer_source(name, "c")
                    ref, _ = plain.nearest_source(topo, name, "c")
                    assert src == ref
            for site in ("a", "b", "c"):
                assert view.bytes_at(site) == plain.bytes_at(site)
        assert view.stats.misplacements == 0
        assert view.stats.wasted_bytes == 0.0
        assert view.stats.phantom_sources == 0

    def test_committed_state_converges_to_single_copy(self):
        config = ControlPlaneConfig.for_lag(1.0, n_sites=5,
                                            read_mode="quorum")
        plane = ControlPlane(config, RngRegistry(0))
        mirrored = MirroredCatalog(plane)
        clock = [0.0]
        mirrored.bind_clock(lambda: clock[0])
        plain = ReplicaCatalog()
        for catalog in (mirrored, plain):
            catalog.register(Dataset("d0", SIZE))
            catalog.register(Dataset("d1", SIZE))
        mirrored.bootstrap_replica("d0", "a")
        mirrored.bootstrap_replica("d1", "a")
        plain.add_replica("d0", "a")
        plain.add_replica("d1", "a")
        plane.advance(0.5)
        for t, op, args in SCRIPT:
            clock[0] = t
            apply_event(mirrored, op, args, t)
            apply_event(plain, op, args, t)
        plane.advance(200.0)
        assert plane.converged()
        committed = plane.committed_state()
        assert committed.dataset_names == plain.dataset_names
        for name in plain.dataset_names:
            assert sorted(committed.locations(name)) == \
                sorted(plain.locations(name))
        # once quiesced, even a stale follower read equals single-copy:
        # replication is eventually exact, not approximately so
        for node in plane.nodes:
            for name in plain.dataset_names:
                assert sorted(node.state.locations(name)) == \
                    sorted(plain.locations(name))
