"""Unit coverage for the replicated-log primitives and applied state."""

import pytest

from repro.controlplane import Command, ControlState, ReplicatedLog
from repro.controlplane.log import NOOP, Snapshot
from repro.errors import ControlPlaneError


def cmd_register(name, size=100.0):
    return Command("register", (name, size, "generic"))


def cmd_add(name, site, t=0.0):
    return Command("add_replica", (name, site, t))


class TestCommand:
    def test_unknown_op_rejected(self):
        with pytest.raises(ControlPlaneError):
            Command("truncate_everything")

    def test_noop_is_a_command(self):
        assert NOOP.op == "noop"
        assert NOOP.args == ()


class TestReplicatedLog:
    def test_empty_log_sentinel(self):
        log = ReplicatedLog()
        assert log.last_index == 0
        assert log.last_term == 0
        assert log.term_at(0) == 0
        assert log.term_at(1) is None

    def test_append_is_one_based_and_ordered(self):
        log = ReplicatedLog()
        e1 = log.append(1, cmd_register("a"))
        e2 = log.append(2, cmd_register("b"))
        assert (e1.index, e2.index) == (1, 2)
        assert log.term_at(1) == 1
        assert log.term_at(2) == 2
        assert [e.command.args[0] for e in log.entries_from(1)] == ["a", "b"]

    def test_truncate_from_repairs_conflicts(self):
        log = ReplicatedLog()
        for i in range(3):
            log.append(1, cmd_register(f"d{i}"))
        log.truncate_from(2)
        assert log.last_index == 1
        assert log.term_at(2) is None

    def test_compact_keeps_suffix(self):
        log = ReplicatedLog()
        for i in range(4):
            log.append(1, cmd_register(f"d{i}"))
        log.compact(Snapshot(2, 1, {}))
        assert log.base_index == 2
        assert log.last_index == 4
        assert log.term_at(2) == 1          # base sentinel
        assert log.term_at(1) is None       # compacted away
        assert [e.index for e in log.entries_from(3)] == [3, 4]
        with pytest.raises(ControlPlaneError):
            log.entries_from(2)
        with pytest.raises(ControlPlaneError):
            log.truncate_from(2)

    def test_install_replaces_everything(self):
        log = ReplicatedLog()
        log.append(1, cmd_register("old"))
        log.install(Snapshot(7, 3, {"datasets": []}))
        assert len(log) == 0
        assert log.last_index == 7
        assert log.last_term == 3


class TestControlState:
    def _apply_all(self, commands):
        state = ControlState()
        for i, command in enumerate(commands, start=1):
            state.apply(command, i)
        return state

    def test_apply_enforces_order(self):
        state = ControlState()
        state.apply(cmd_register("d"), 1)
        with pytest.raises(ControlPlaneError):
            state.apply(cmd_add("d", "a"), 3)

    def test_replica_lifecycle_bumps_versions(self):
        state = self._apply_all([cmd_register("d"), cmd_add("d", "a")])
        v, dv = state.version, state.dataset_version("d")
        state.apply(Command("drop_replica", ("d", "a")), 3)
        assert state.version == v + 1
        assert state.dataset_version("d") == dv + 1
        assert not state.has_replica("d", "a")

    def test_endpoint_liveness(self):
        state = self._apply_all([
            Command("endpoint_up", ("edge-1",)),
            Command("endpoint_down", ("edge-2",)),
        ])
        assert state.endpoint_live("edge-1")
        assert not state.endpoint_live("edge-2")
        assert state.down_endpoints == ["edge-2"]

    def test_same_commands_same_fingerprint(self):
        commands = [cmd_register("d"), cmd_add("d", "a", 1.0),
                    cmd_add("d", "b", 2.0), Command("endpoint_down", ("a",))]
        assert (self._apply_all(commands).fingerprint()
                == self._apply_all(commands).fingerprint())

    def test_snapshot_roundtrip_preserves_fingerprint(self):
        state = self._apply_all([
            cmd_register("d"), cmd_add("d", "a", 1.0),
            cmd_register("e"), cmd_add("e", "b", 2.0),
            Command("drop_replica", ("d", "a")),
            Command("endpoint_down", ("b",)),
        ])
        clone = ControlState.from_snapshot(state.to_snapshot())
        assert clone.fingerprint() == state.fingerprint()
        assert clone.applied_index == state.applied_index
