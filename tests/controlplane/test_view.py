"""The catalog/registry views over the plane: mirroring, staleness
accounting (misplacements, wasted bytes, phantoms, fallbacks), and the
truth-serving behaviour of linearized reads."""

import pytest

from repro.continuum import Link, Site, Tier, Topology
from repro.controlplane import (
    ControlPlane,
    ControlPlaneConfig,
    ControlPlaneSession,
    MirroredCatalog,
    RegistryView,
    ReplicatedCatalogView,
)
from repro.datafabric import Dataset
from repro.utils.rng import RngRegistry

SIZE = 100.0


def topo3():
    """c pulls 100x faster from b than from a."""
    topo = Topology()
    topo.add_site(Site("a", Tier.CLOUD))
    topo.add_site(Site("b", Tier.EDGE))
    topo.add_site(Site("c", Tier.EDGE))
    topo.add_link("a", "c", Link(0.0, 10.0))
    topo.add_link("b", "c", Link(0.0, 1000.0))
    return topo


def make(read_mode, seed=0):
    config = ControlPlaneConfig.for_lag(1.0, n_sites=3, read_mode=read_mode)
    plane = ControlPlane(config, RngRegistry(seed))
    session = ControlPlaneSession(plane)
    catalog = MirroredCatalog(plane)
    clock = [0.0]
    catalog.bind_clock(lambda: clock[0])
    view = ReplicatedCatalogView(session, catalog, topo3())
    return plane, session, catalog, view, clock


class TestMirroredCatalog:
    def test_bootstrap_mutations_are_free(self):
        plane, _, catalog, _, _ = make("stale")
        catalog.register(Dataset("d", SIZE))
        catalog.bootstrap_replica("d", "a")
        assert plane.writes_submitted == 0
        assert all(n.state.has_replica("d", "a") for n in plane.nodes)

    def test_runtime_mutations_are_replicated_writes(self):
        plane, session, catalog, _, clock = make("stale")
        catalog.register(Dataset("d", SIZE))
        catalog.bootstrap_replica("d", "a")
        session.placement_read(0.5)       # starts the plane
        clock[0] = 1.0
        catalog.add_replica("d", "b", 1.0)
        assert plane.writes_submitted == 1
        # the authoritative catalog knows immediately (bytes landed)
        assert catalog.has_replica("d", "b")
        # followers only after commit + heartbeat propagation
        plane.advance(20.0)
        assert all(n.state.has_replica("d", "b") for n in plane.nodes)


class TestStaleAccounting:
    def _staged_closer_copy(self):
        plane, session, catalog, view, clock = make("stale")
        catalog.register(Dataset("d", SIZE))
        catalog.bootstrap_replica("d", "a")
        session.placement_read(0.5)
        clock[0] = 1.0
        catalog.add_replica("d", "b", 1.0)   # closer copy lands at b
        return plane, session, catalog, view

    def test_lagged_view_misplaces_and_wastes(self):
        _, session, _, view = self._staged_closer_copy()
        session.placement_read(1.5)          # inside the commit window
        src, delay = view.transfer_source("d", "c")
        assert src == "a"                    # stale choice, physically real
        assert delay == 0.0
        assert view.stats.misplacements == 1
        assert view.stats.wasted_bytes == SIZE
        assert view.stats.phantom_sources == 0

    def test_caught_up_view_stops_misplacing(self):
        _, session, _, view = self._staged_closer_copy()
        session.placement_read(20.0)         # past commit + heartbeat
        src, _ = view.transfer_source("d", "c")
        assert src == "b"
        assert view.stats.misplacements == 0

    def test_phantom_source_detected_and_rerouted(self):
        plane, session, catalog, view, clock = make("stale")
        catalog.register(Dataset("d", SIZE))
        catalog.bootstrap_replica("d", "a")
        catalog.bootstrap_replica("d", "b")
        session.placement_read(0.5)
        clock[0] = 1.0
        catalog.drop_replica("d", "b")       # b's copy physically gone
        session.placement_read(1.5)
        src, delay = view.transfer_source("d", "c")
        assert src == "a"                    # re-resolved to a real copy
        assert view.stats.phantom_sources == 1
        assert view.stats.misplacements == 1
        # one wasted metadata round to discover the phantom
        assert delay == pytest.approx(2 * plane.config.local_read_rtt_s)

    def test_unknown_dataset_falls_back_to_origin(self):
        plane, session, catalog, view, clock = make("stale")
        catalog.register(Dataset("seed", SIZE))
        catalog.bootstrap_replica("seed", "a")
        session.placement_read(0.5)
        clock[0] = 1.0
        catalog.register(Dataset("x", SIZE))   # mid-run product
        catalog.add_replica("x", "b", 1.0)
        session.placement_read(1.5)
        assert view.locations("x") == ["b"]
        assert view.stats.fallback_reads >= 1
        src, _ = view.transfer_source("x", "c")
        assert src == "b"                      # origin == only copy: no waste
        assert view.stats.misplacements == 0


class TestTruthServingReads:
    @pytest.mark.parametrize("mode", ["quorum", "lease"])
    def test_linearized_read_is_immune_to_staleness(self, mode):
        plane, session, catalog, view, clock = make(mode)
        catalog.register(Dataset("d", SIZE))
        catalog.bootstrap_replica("d", "a")
        session.placement_read(0.5)
        clock[0] = 1.0
        catalog.add_replica("d", "b", 1.0)
        session.placement_read(1.5)          # same instant the stale path
        assert session.pinned_truth          # misplaces (see above)
        src, delay = view.transfer_source("d", "c")
        assert (src, delay) == ("b", 0.0)
        assert view.stats.misplacements == 0
        assert view.has_replica("d", "b")
        assert view.version == catalog.version
        assert view.locations("d") == catalog.locations("d")


class TestRegistryView:
    def test_liveness_follows_the_replicated_registry(self):
        plane, session, catalog, _, clock = make("stale")
        registry = RegistryView(session)
        session.placement_read(0.5)
        clock[0] = 1.0
        catalog.endpoint_down("b")
        session.placement_read(1.5)
        assert registry.is_live("b")         # the bad news hasn't landed
        session.placement_read(20.0)
        assert not registry.is_live("b")
        assert registry.down_endpoints == ["b"]
