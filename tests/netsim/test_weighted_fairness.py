import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuum import Link, Site, Tier, Topology
from repro.errors import NetworkError
from repro.netsim import FlowNetwork, max_min_fair_rates, weighted_max_min_rates
from repro.netsim.fairness import link_loads
from repro.simcore import Simulator


class TestWeightedAllocator:
    def test_unit_weights_match_plain_maxmin(self):
        caps = [100.0, 1000.0]
        flows = [[0], [0, 1], [1]]
        np.testing.assert_allclose(
            weighted_max_min_rates(caps, flows, [1, 1, 1]),
            max_min_fair_rates(caps, flows),
        )

    def test_weights_split_proportionally(self):
        rates = weighted_max_min_rates([100.0], [[0], [0]], [3.0, 1.0])
        np.testing.assert_allclose(rates, [75.0, 25.0])

    def test_background_flow_yields(self):
        # foreground weight 1, background 0.1 share one link
        rates = weighted_max_min_rates([110.0], [[0], [0]], [1.0, 0.1])
        np.testing.assert_allclose(rates, [100.0, 10.0])

    def test_local_flow_unconstrained(self):
        rates = weighted_max_min_rates([10.0], [[], [0]], [1.0, 2.0])
        assert math.isinf(rates[0])
        assert rates[1] == pytest.approx(10.0)

    def test_bad_weights_rejected(self):
        with pytest.raises(NetworkError):
            weighted_max_min_rates([10.0], [[0]], [0.0])
        with pytest.raises(NetworkError):
            weighted_max_min_rates([10.0], [[0]], [1.0, 2.0])

    @settings(max_examples=100, deadline=None)
    @given(
        caps=st.lists(st.floats(1.0, 1e4), min_size=1, max_size=4),
        data=st.data(),
    )
    def test_property_feasible_and_work_conserving(self, caps, data):
        n_links = len(caps)
        n_flows = data.draw(st.integers(1, 8))
        flows = [
            data.draw(st.lists(st.integers(0, n_links - 1), min_size=1,
                               max_size=n_links, unique=True))
            for _ in range(n_flows)
        ]
        weights = [data.draw(st.floats(0.1, 10.0)) for _ in range(n_flows)]
        rates = weighted_max_min_rates(caps, flows, weights)
        loads = link_loads(n_links, flows, rates)
        # feasible
        assert np.all(loads <= np.asarray(caps) * (1 + 1e-9) + 1e-9)
        # every flow bottlenecked at some saturated link
        for f, links in enumerate(flows):
            assert any(
                loads[l] >= caps[l] * (1 - 1e-6) for l in links
            ), f"flow {f} not bottlenecked"

    @settings(max_examples=60, deadline=None)
    @given(w=st.floats(0.1, 10.0))
    def test_property_scaling_all_weights_is_noop(self, w):
        caps = [100.0, 50.0]
        flows = [[0], [0, 1], [1]]
        base = weighted_max_min_rates(caps, flows, [1.0, 1.0, 1.0])
        scaled = weighted_max_min_rates(caps, flows, [w, w, w])
        np.testing.assert_allclose(base, scaled, rtol=1e-9)


class TestWeightedFlows:
    def make_net(self):
        topo = Topology()
        topo.add_site(Site("a", Tier.EDGE))
        topo.add_site(Site("b", Tier.CLOUD))
        topo.add_link("a", "b", Link(0.0, 100.0))
        sim = Simulator()
        return sim, FlowNetwork(sim, topo)

    def test_weighted_transfer_shares_proportionally(self):
        sim, net = self.make_net()
        done = {}

        def xfer(tag, size, weight):
            flow = yield net.transfer("a", "b", size, weight=weight)
            done[tag] = sim.now

        # foreground 300 B at weight 3, background 100 B at weight 1:
        # rates 75/25 -> both drain at t=4
        sim.process(xfer("fg", 300.0, 3.0))
        sim.process(xfer("bg", 100.0, 1.0))
        sim.run()
        assert done["fg"] == pytest.approx(4.0)
        assert done["bg"] == pytest.approx(4.0)

    def test_background_barely_delays_foreground(self):
        def run(with_background):
            sim, net = self.make_net()
            done = {}

            def fg():
                yield net.transfer("a", "b", 100.0, weight=1.0)
                done["fg"] = sim.now

            def bg():
                yield net.transfer("a", "b", 100.0, weight=0.01)
                done["bg"] = sim.now

            sim.process(fg())
            if with_background:
                sim.process(bg())
            sim.run()
            return done["fg"]

        alone = run(False)
        contended = run(True)
        assert alone == pytest.approx(1.0)
        # with weight 0.01 the background adds ~1% to fg completion
        assert contended < 1.02

    def test_invalid_weight_rejected(self):
        sim, net = self.make_net()
        with pytest.raises(NetworkError):
            net.transfer("a", "b", 10.0, weight=0.0)

    def test_replication_uses_low_weight(self):
        """Background replication barely perturbs a foreground flow."""
        from repro.datafabric import (
            Dataset, ReplicaCatalog, ReplicationPolicy, ReplicationService,
            TransferService,
        )

        topo = Topology()
        topo.add_site(Site("edge", Tier.EDGE))
        topo.add_site(Site("cloud", Tier.CLOUD))
        topo.add_link("edge", "cloud", Link(0.0, 100.0))
        sim = Simulator()
        net = FlowNetwork(sim, topo)
        cat = ReplicaCatalog()
        cat.register(Dataset("hot", 100.0))
        cat.add_replica("hot", "cloud")
        svc = TransferService(sim, net, cat)
        rep = ReplicationService(svc, ReplicationPolicy(
            targets=("edge",), hot_after=1, weight=0.05,
        ))
        done = {}

        def foreground():
            yield net.transfer("cloud", "edge", 100.0)
            done["fg"] = sim.now

        rep.record_access("hot", "edge")   # starts the background push
        sim.process(foreground())
        sim.run()
        # foreground ~100/95.2 s instead of 2.0 s under equal sharing
        assert done["fg"] < 1.1
        assert cat.has_replica("hot", "edge")
