"""Differential validation of the vectorized fair-share solvers.

A frozen pure-Python scalar reference for weighted max-min (progressive
water-filling with per-flow loops — the implementation shape the
vectorized solver replaced) lives in this file. Hypothesis-generated
random topologies drive both implementations, which must agree to 1e-9
on every flow rate, including the degenerate shapes: single flow,
all flows on one link, local (link-less) flows, extreme weight ratios.

Also here: the shape/dtype validation contract of ``equal_share_rates``
and ``link_loads`` (satellite of the calendar-queue PR) and
conservation properties tying ``link_loads`` to independently-computed
per-link sums.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.netsim.fairness import (
    equal_share_rates,
    link_loads,
    max_min_fair_rates,
    weighted_max_min_rates,
)


# ---------------------------------------------------------------------------
# Frozen scalar reference (pure Python water-filling)
# ---------------------------------------------------------------------------

def scalar_weighted_max_min(caps, flow_links, weights):
    n_links = len(caps)
    n_flows = len(flow_links)
    rates = [0.0] * n_flows
    active = [True] * n_flows
    n_active = n_flows
    link_flows = [[] for _ in range(n_links)]
    for f, links in enumerate(flow_links):
        for l in links:
            link_flows[l].append(f)
        if not links:
            rates[f] = math.inf
            active[f] = False
            n_active -= 1
    remaining = [float(c) for c in caps]
    while n_active > 0:
        best_l, best_level = -1, math.inf
        for l in range(n_links):
            wload = 0.0
            for f in link_flows[l]:
                if active[f]:
                    wload += weights[f]
            if wload > 0.0:
                level = remaining[l] / wload
                if level < best_level:
                    best_level, best_l = level, l
        if best_l < 0:
            break
        newly = [f for f in link_flows[best_l] if active[f]]
        for f in newly:
            rates[f] = best_level * weights[f]
            active[f] = False
        n_active -= len(newly)
        newly_set = set(newly)
        for l in range(n_links):
            drained = 0.0
            for f in link_flows[l]:
                if f in newly_set:
                    drained += rates[f]
            remaining[l] = max(remaining[l] - drained, 0.0)
    return rates


@st.composite
def weighted_scenario(draw):
    n_links = draw(st.integers(1, 6))
    caps = draw(
        st.lists(st.floats(1.0, 1e4), min_size=n_links, max_size=n_links)
    )
    n_flows = draw(st.integers(1, 12))
    flows = [
        draw(st.lists(st.integers(0, n_links - 1), min_size=0,
                      max_size=n_links, unique=True))
        for _ in range(n_flows)
    ]
    weights = [
        draw(st.floats(0.01, 100.0, allow_nan=False))
        for _ in range(n_flows)
    ]
    return caps, flows, weights


class TestWeightedDifferential:
    @settings(max_examples=200, deadline=None)
    @given(weighted_scenario())
    def test_matches_scalar_reference(self, scenario):
        caps, flows, weights = scenario
        ref = np.asarray(scalar_weighted_max_min(caps, flows, weights))
        vec = weighted_max_min_rates(caps, flows, weights)
        np.testing.assert_allclose(vec, ref, rtol=1e-9, atol=1e-9)

    def test_single_flow(self):
        ref = scalar_weighted_max_min([40.0], [[0]], [2.5])
        vec = weighted_max_min_rates([40.0], [[0]], [2.5])
        np.testing.assert_allclose(vec, ref)
        assert vec[0] == pytest.approx(40.0)

    def test_all_flows_one_link(self):
        caps = [100.0]
        flows = [[0]] * 10
        weights = [float(i + 1) for i in range(10)]
        ref = np.asarray(scalar_weighted_max_min(caps, flows, weights))
        vec = weighted_max_min_rates(caps, flows, weights)
        np.testing.assert_allclose(vec, ref, rtol=1e-9)
        assert vec.sum() == pytest.approx(100.0)

    def test_zero_capacity_link_rejected(self):
        # capacities must be strictly positive — degenerate topologies
        # are a validation error, not a solver input
        with pytest.raises(NetworkError):
            weighted_max_min_rates([0.0], [[0]], [1.0])
        with pytest.raises(NetworkError):
            max_min_fair_rates([0.0, 10.0], [[0], [1]])

    def test_extreme_weight_ratio(self):
        caps = [1000.0]
        flows = [[0], [0]]
        weights = [1e6, 1e-6]
        ref = np.asarray(scalar_weighted_max_min(caps, flows, weights))
        vec = weighted_max_min_rates(caps, flows, weights)
        np.testing.assert_allclose(vec, ref, rtol=1e-9)

    def test_local_flows_only(self):
        vec = weighted_max_min_rates([10.0], [[], []], [1.0, 2.0])
        assert np.all(np.isinf(vec))

    @settings(max_examples=100, deadline=None)
    @given(weighted_scenario())
    def test_unit_weights_reduce_to_plain_maxmin(self, scenario):
        caps, flows, _ = scenario
        ones = [1.0] * len(flows)
        np.testing.assert_allclose(
            weighted_max_min_rates(caps, flows, ones),
            max_min_fair_rates(caps, flows),
            rtol=1e-9, atol=1e-9,
        )


# ---------------------------------------------------------------------------
# Validation contract (equal_share_rates / link_loads)
# ---------------------------------------------------------------------------

class TestValidation:
    def test_equal_share_rejects_bad_capacities(self):
        with pytest.raises(NetworkError):
            equal_share_rates([[100.0]], [[0]])         # 2-D capacities
        with pytest.raises(NetworkError):
            equal_share_rates([-1.0], [[0]])
        with pytest.raises(NetworkError):
            equal_share_rates([math.nan], [[0]])

    def test_equal_share_rejects_bad_incidence(self):
        with pytest.raises(NetworkError):
            equal_share_rates([100.0], np.ones((2, 3)))  # wrong link count
        with pytest.raises(NetworkError):
            equal_share_rates([100.0], np.ones(3))       # 1-D matrix
        with pytest.raises(NetworkError):
            equal_share_rates([100.0], np.ones((1, 3), dtype=np.int64))
        with pytest.raises(NetworkError):
            equal_share_rates([100.0], [[5]])            # unknown link

    def test_link_loads_rejects_bad_rates(self):
        with pytest.raises(NetworkError):
            link_loads(1, [[0], [0]], [1.0])             # wrong length
        with pytest.raises(NetworkError):
            link_loads(1, [[0]], [[1.0]])                # 2-D rates
        with pytest.raises(NetworkError):
            link_loads(1, [[0]], [math.nan])
        with pytest.raises(NetworkError):
            link_loads(1, [[0]], [-2.0])

    def test_link_loads_accepts_inf_rates(self):
        # local flows legitimately carry rate inf and load nothing
        loads = link_loads(1, [[], [0]], [math.inf, 3.0])
        np.testing.assert_allclose(loads, [3.0])


# ---------------------------------------------------------------------------
# Conservation properties
# ---------------------------------------------------------------------------

@st.composite
def rate_scenario(draw):
    n_links = draw(st.integers(1, 5))
    caps = draw(
        st.lists(st.floats(1.0, 1e4), min_size=n_links, max_size=n_links)
    )
    n_flows = draw(st.integers(1, 10))
    flows = [
        draw(st.lists(st.integers(0, n_links - 1), min_size=1,
                      max_size=n_links, unique=True))
        for _ in range(n_flows)
    ]
    return caps, flows


class TestConservation:
    @settings(max_examples=150, deadline=None)
    @given(rate_scenario())
    def test_equal_share_never_exceeds_capacity(self, scenario):
        caps, flows = scenario
        rates = equal_share_rates(caps, flows)
        loads = link_loads(len(caps), flows, rates)
        assert np.all(loads <= np.asarray(caps) * (1 + 1e-9) + 1e-9)

    @settings(max_examples=150, deadline=None)
    @given(rate_scenario())
    def test_link_loads_conserve_per_link_sums(self, scenario):
        """link_loads is exactly the per-link sum of crossing flows'
        rates — computed here independently, flow by flow."""
        caps, flows = scenario
        rates = max_min_fair_rates(caps, flows)
        loads = link_loads(len(caps), flows, rates)
        for l in range(len(caps)):
            expected = sum(rates[f] for f, links in enumerate(flows)
                           if l in links)
            assert loads[l] == pytest.approx(expected, rel=1e-12, abs=1e-12)

    @settings(max_examples=100, deadline=None)
    @given(rate_scenario())
    def test_equal_share_matches_per_flow_minimum(self, scenario):
        """The vectorized masked min equals the scalar per-flow loop it
        replaced, bit for bit."""
        caps, flows = scenario
        vec = equal_share_rates(caps, flows)
        counts = [0] * len(caps)
        for links in flows:
            for l in links:
                counts[l] += 1
        cap_arr = np.asarray(caps, dtype=float)
        for f, links in enumerate(flows):
            expected = min(
                (float(np.float64(cap_arr[l]) / counts[l]) for l in links),
                default=math.inf,
            )
            assert vec[f] == expected
