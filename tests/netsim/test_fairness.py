import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.netsim.fairness import equal_share_rates, link_loads, max_min_fair_rates


class TestMaxMinBasics:
    def test_empty(self):
        assert max_min_fair_rates([1e9], []).size == 0

    def test_single_flow_gets_full_capacity(self):
        rates = max_min_fair_rates([100.0], [[0]])
        assert rates[0] == pytest.approx(100.0)

    def test_two_flows_split_equally(self):
        rates = max_min_fair_rates([100.0], [[0], [0]])
        np.testing.assert_allclose(rates, [50.0, 50.0])

    def test_local_flow_unconstrained(self):
        rates = max_min_fair_rates([100.0], [[], [0]])
        assert math.isinf(rates[0])
        assert rates[1] == pytest.approx(100.0)

    def test_bottleneck_releases_capacity_elsewhere(self):
        # Classic 3-flow example: links a (cap 100) and b (cap 1000).
        # f0 uses a only, f1 uses a+b, f2 uses b only.
        # a's fair share is 50 for f0 and f1; f2 then gets 950 on b.
        rates = max_min_fair_rates([100.0, 1000.0], [[0], [0, 1], [1]])
        np.testing.assert_allclose(rates, [50.0, 50.0, 950.0])

    def test_multihop_flow_limited_by_worst_link(self):
        rates = max_min_fair_rates([100.0, 10.0, 100.0], [[0, 1, 2]])
        assert rates[0] == pytest.approx(10.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(NetworkError):
            max_min_fair_rates([0.0], [[0]])
        with pytest.raises(NetworkError):
            max_min_fair_rates([math.inf], [[0]])

    def test_unknown_link_rejected(self):
        with pytest.raises(NetworkError):
            max_min_fair_rates([100.0], [[3]])


class TestEqualShareBaseline:
    def test_matches_maxmin_on_single_link(self):
        caps = [100.0]
        flows = [[0], [0], [0], [0]]
        np.testing.assert_allclose(
            equal_share_rates(caps, flows), max_min_fair_rates(caps, flows)
        )

    def test_strands_capacity_where_maxmin_does_not(self):
        caps = [100.0, 1000.0]
        flows = [[0], [0, 1], [1]]
        eq = equal_share_rates(caps, flows)
        mm = max_min_fair_rates(caps, flows)
        # equal-share gives f2 only 500 (half of b) though b could give 950
        assert eq[2] == pytest.approx(500.0)
        assert mm[2] == pytest.approx(950.0)
        assert eq.sum() < mm.sum()


@st.composite
def random_scenario(draw):
    n_links = draw(st.integers(1, 6))
    caps = draw(
        st.lists(st.floats(1.0, 1e4), min_size=n_links, max_size=n_links)
    )
    n_flows = draw(st.integers(1, 10))
    flows = [
        draw(
            st.lists(st.integers(0, n_links - 1), min_size=1, max_size=n_links,
                     unique=True)
        )
        for _ in range(n_flows)
    ]
    return caps, flows


class TestMaxMinProperties:
    @settings(max_examples=150, deadline=None)
    @given(random_scenario())
    def test_feasible_no_link_overloaded(self, scenario):
        caps, flows = scenario
        rates = max_min_fair_rates(caps, flows)
        loads = link_loads(len(caps), flows, rates)
        assert np.all(loads <= np.asarray(caps) * (1 + 1e-9) + 1e-9)

    @settings(max_examples=150, deadline=None)
    @given(random_scenario())
    def test_all_rates_positive(self, scenario):
        caps, flows = scenario
        rates = max_min_fair_rates(caps, flows)
        assert np.all(rates > 0)

    @settings(max_examples=150, deadline=None)
    @given(random_scenario())
    def test_maxmin_bottleneck_property(self, scenario):
        """Every flow crosses a saturated link where its rate is maximal."""
        caps, flows = scenario
        caps = np.asarray(caps)
        rates = max_min_fair_rates(caps, flows)
        loads = link_loads(len(caps), flows, rates)
        for f, links in enumerate(flows):
            ok = False
            for l in links:
                saturated = loads[l] >= caps[l] * (1 - 1e-6)
                flows_on_l = [g for g, gl in enumerate(flows) if l in gl]
                maximal = all(rates[f] >= rates[g] - 1e-6 for g in flows_on_l)
                if saturated and maximal:
                    ok = True
                    break
            assert ok, f"flow {f} has no bottleneck link"

    @settings(max_examples=100, deadline=None)
    @given(random_scenario())
    def test_dominates_equal_share_in_aggregate(self, scenario):
        caps, flows = scenario
        mm = max_min_fair_rates(caps, flows)
        eq = equal_share_rates(caps, flows)
        assert mm.sum() >= eq.sum() - 1e-6

    @settings(max_examples=100, deadline=None)
    @given(random_scenario())
    def test_equal_share_also_feasible(self, scenario):
        caps, flows = scenario
        eq = equal_share_rates(caps, flows)
        loads = link_loads(len(caps), flows, eq)
        assert np.all(loads <= np.asarray(caps) * (1 + 1e-9) + 1e-9)
