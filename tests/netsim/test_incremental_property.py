"""Property test: the persistent incidence matrix is indistinguishable
from a freshly rebuilt one.

:class:`FlowNetwork` maintains its link x flow matrix incrementally
(columns added on transfer, shift-removed on drain). Across randomized
start/finish/brownout sequences, at settled instants the matrix must be
*bit-identical* to one rebuilt from scratch with ``_incidence``, and the
live rates must be bit-identical to a fresh allocator solve — not merely
close: the incremental path is an optimization, never an approximation.
"""

import numpy as np
import pytest

from repro.continuum import geo_random_continuum
from repro.netsim.fairness import (
    _incidence,
    max_min_fair_rates,
    weighted_max_min_rates,
)
from repro.netsim.network import FlowNetwork
from repro.simcore import Simulator


def _rebuilt_incidence(net: FlowNetwork) -> np.ndarray:
    """The incidence matrix built from scratch, in column order."""
    flow_links = []
    for fid in net._col_flow:
        path = net._active[fid].path
        flow_links.append([
            net._link_index[frozenset((a, b))]
            for a, b in zip(path.hops, path.hops[1:])
        ])
    return _incidence(len(net._capacities), flow_links)


def _check_settled_state(net: FlowNetwork, checked: list) -> None:
    if net._solve_pending:
        return  # mid-burst: rates are recomputed later this instant
    n = net._n_active
    if n == 0:
        return
    fresh_A = _rebuilt_incidence(net)
    incremental_A = net._A[:, :n]
    assert np.array_equal(incremental_A, fresh_A)

    w = net._col_w[:n]
    if np.any(w != 1.0):
        fresh_rates = weighted_max_min_rates(net._capacity_arr, fresh_A, w)
    else:
        fresh_rates = max_min_fair_rates(net._capacity_arr, fresh_A)
    # bit-identical, not approx: same allocator, same matrix, same order
    assert np.array_equal(fresh_rates, net._col_rates[:n])
    checked.append(n)


@pytest.mark.parametrize("seed", range(8))
def test_incremental_matrix_matches_rebuild(seed):
    rng = np.random.default_rng(seed)
    topo = geo_random_continuum(8, seed=seed)
    names = topo.site_names
    sim = Simulator()
    net = FlowNetwork(sim, topo)

    for _ in range(40):
        a, b = rng.choice(len(names), size=2, replace=False)
        start = float(rng.uniform(0.0, 5.0))
        size = float(rng.uniform(1e6, 5e7))
        weight = float(rng.choice([0.5, 1.0, 2.0]))
        sim.schedule(
            start,
            lambda a=names[a], b=names[b], s=size, w=weight:
                net.transfer(a, b, s, weight=w),
        )

    links = topo.links()
    for _ in range(6):
        a, b, link = links[int(rng.integers(len(links)))]
        when = float(rng.uniform(0.0, 6.0))
        factor = float(rng.uniform(0.2, 1.0))
        sim.schedule(
            when,
            lambda a=a, b=b, bw=link.bandwidth_Bps * factor:
                net.set_link_bandwidth(a, b, bw),
        )

    checked = []
    for t in np.linspace(0.25, 8.0, 32):
        sim.schedule(float(t), _check_settled_state, net, checked)
    sim.run()

    assert checked, "no checkpoint observed active flows"
    assert net.active_flow_count == 0
    assert (net.monitor.counters["flows_started"]
            == net.monitor.counters["flows_completed"] == 40)
