import pytest

from repro.continuum import Link, Site, Tier, Topology
from repro.errors import NetworkError
from repro.netsim import FlowNetwork, request_response_time, rtt
from repro.netsim.fairness import equal_share_rates, max_min_fair_rates
from repro.simcore import Simulator


def pair(latency=0.0, bandwidth=100.0):
    topo = Topology("pair")
    topo.add_site(Site("a", Tier.EDGE))
    topo.add_site(Site("b", Tier.CLOUD))
    topo.add_link("a", "b", Link(latency, bandwidth))
    return topo


def chain3(latency=0.0, bw_ab=100.0, bw_bc=100.0):
    topo = Topology("chain3")
    for name in ("a", "b", "c"):
        topo.add_site(Site(name, Tier.FOG))
    topo.add_link("a", "b", Link(latency, bw_ab))
    topo.add_link("b", "c", Link(latency, bw_bc))
    return topo


class TestSingleFlow:
    def test_completion_time_is_serialization_plus_latency(self):
        sim = Simulator()
        net = FlowNetwork(sim, pair(latency=0.5, bandwidth=100.0))

        def body():
            flow = yield net.transfer("a", "b", 100.0)
            return (sim.now, flow.size_bytes)

        t, size = sim.run_process(body())
        assert t == pytest.approx(1.0 + 0.5)
        assert size == 100.0

    def test_zero_bytes_costs_latency_only(self):
        # regression: an earlier version had a dead ternary here (both
        # branches latency_s); the documented contract is that an empty
        # message still pays exactly one path propagation latency
        sim = Simulator()
        net = FlowNetwork(sim, pair(latency=0.25, bandwidth=100.0))

        def body():
            yield net.transfer("a", "b", 0.0)
            return sim.now

        assert sim.run_process(body()) == pytest.approx(0.25)

    def test_zero_bytes_multihop_pays_full_path_latency(self):
        sim = Simulator()
        net = FlowNetwork(sim, chain3(latency=0.1))

        def body():
            yield net.transfer("a", "c", 0.0)
            return sim.now

        # two hops of 0.1 s propagation, no serialization time
        assert sim.run_process(body()) == pytest.approx(0.2)

    def test_local_transfer_instant(self):
        sim = Simulator()
        net = FlowNetwork(sim, pair())

        def body():
            yield net.transfer("a", "a", 1e12)
            return sim.now

        assert sim.run_process(body()) == 0.0

    def test_negative_size_rejected(self):
        sim = Simulator()
        net = FlowNetwork(sim, pair())
        with pytest.raises(NetworkError):
            net.transfer("a", "b", -1)

    def test_multihop_bottleneck(self):
        sim = Simulator()
        net = FlowNetwork(sim, chain3(latency=0.1, bw_ab=100.0, bw_bc=10.0))

        def body():
            flow = yield net.transfer("a", "c", 100.0)
            return (sim.now, flow)

        t, flow = sim.run_process(body())
        # bottleneck 10 B/s => 10 s transmission + 0.2 s path latency
        assert t == pytest.approx(10.2)
        assert flow.achieved_throughput == pytest.approx(100.0 / 10.2)


class TestSharing:
    def test_two_simultaneous_flows_halve_rate(self):
        sim = Simulator()
        net = FlowNetwork(sim, pair(bandwidth=100.0))
        done = []

        def xfer(tag):
            yield net.transfer("a", "b", 100.0)
            done.append((tag, sim.now))

        sim.process(xfer("f1"))
        sim.process(xfer("f2"))
        sim.run()
        assert done[0][1] == pytest.approx(2.0)
        assert done[1][1] == pytest.approx(2.0)

    def test_rate_recovers_after_departure(self):
        """Second flow starts halfway through the first; both slow to
        half rate; survivor speeds back up after the first drains."""
        sim = Simulator()
        net = FlowNetwork(sim, pair(bandwidth=100.0))
        done = {}

        def first():
            yield net.transfer("a", "b", 100.0)
            done["first"] = sim.now

        def second():
            yield sim.timeout(0.5)
            yield net.transfer("a", "b", 100.0)
            done["second"] = sim.now

        sim.process(first())
        sim.process(second())
        sim.run()
        # first: 50 B alone (0.5 s), 50 B at half rate (1.0 s) => 1.5 s
        assert done["first"] == pytest.approx(1.5)
        # second: 50 B at half rate (1.0 s), 50 B alone (0.5 s) => 2.0 s
        assert done["second"] == pytest.approx(2.0)

    def test_disjoint_links_do_not_interfere(self):
        sim = Simulator()
        net = FlowNetwork(sim, chain3(bw_ab=100.0, bw_bc=100.0))
        done = {}

        def xfer(tag, src, dst):
            yield net.transfer(src, dst, 100.0)
            done[tag] = sim.now

        sim.process(xfer("ab", "a", "b"))
        sim.process(xfer("bc", "b", "c"))
        sim.run()
        assert done["ab"] == pytest.approx(1.0)
        assert done["bc"] == pytest.approx(1.0)

    def test_cross_traffic_shares_only_common_link(self):
        sim = Simulator()
        net = FlowNetwork(sim, chain3(bw_ab=100.0, bw_bc=100.0))
        done = {}

        def xfer(tag, src, dst, size):
            yield net.transfer(src, dst, size)
            done[tag] = sim.now

        sim.process(xfer("ac", "a", "c", 100.0))   # uses both links
        sim.process(xfer("bc", "b", "c", 100.0))   # uses bc only
        sim.run()
        # both share bc at 50 B/s until one drains; identical demands =>
        # both drain at t=2
        assert done["ac"] == pytest.approx(2.0)
        assert done["bc"] == pytest.approx(2.0)


class TestAccounting:
    def test_totals(self):
        sim = Simulator()
        net = FlowNetwork(sim, pair(bandwidth=100.0))

        def body():
            yield net.transfer("a", "b", 60.0)
            yield net.transfer("a", "b", 40.0)

        sim.run_process(body())
        assert net.total_bytes_moved == pytest.approx(100.0)
        assert len(net.completed) == 2
        assert net.monitor.counters["flows_completed"] == 2
        # started/completed must balance once the network is quiescent
        assert (net.monitor.counters["flows_started"]
                == net.monitor.counters["flows_completed"])

    def test_flow_counters_balance_on_fast_paths(self):
        """Local and zero-byte transfers skip the shared allocation but
        must still count as started, or the monitor's flow counters can
        never balance."""
        sim = Simulator()
        net = FlowNetwork(sim, pair(latency=0.25, bandwidth=100.0))

        def body():
            yield net.transfer("a", "a", 1e9)     # local fast path
            yield net.transfer("a", "b", 0.0)     # zero-byte fast path
            yield net.transfer("a", "b", 100.0)   # ordinary wire flow

        sim.run_process(body())
        assert net.monitor.counters["flows_started"] == 3
        assert net.monitor.counters["flows_completed"] == 3

    def test_transfer_cost_accumulates(self):
        topo = Topology("paid")
        topo.add_site(Site("a", Tier.FOG))
        topo.add_site(Site("b", Tier.CLOUD))
        topo.add_link("a", "b", Link(0.0, 1e9, usd_per_gb=0.10))
        sim = Simulator()
        net = FlowNetwork(sim, topo)

        def body():
            yield net.transfer("a", "b", 5e9)

        sim.run_process(body())
        assert net.total_transfer_cost_usd == pytest.approx(0.50)

    def test_active_flow_count_and_utilization(self):
        sim = Simulator()
        net = FlowNetwork(sim, pair(bandwidth=100.0))
        net.transfer("a", "b", 1000.0)
        sim.run(until=1.0)
        assert net.active_flow_count == 1
        assert net.utilization_of("a", "b") == pytest.approx(1.0)
        sim.run()
        assert net.active_flow_count == 0

    def test_utilization_unknown_link(self):
        sim = Simulator()
        net = FlowNetwork(sim, pair())
        with pytest.raises(NetworkError):
            net.utilization_of("a", "zzz")

    def test_bytes_per_link_conservation(self):
        sim = Simulator()
        net = FlowNetwork(sim, chain3(bw_ab=100.0, bw_bc=50.0))

        def body():
            yield net.transfer("a", "c", 200.0)

        sim.run_process(body())
        # flow crossed both links entirely
        assert net.bytes_per_link[0] == pytest.approx(200.0, rel=1e-6)
        assert net.bytes_per_link[1] == pytest.approx(200.0, rel=1e-6)


class TestAllocatorPluggability:
    def test_equal_share_allocator_changes_outcome(self):
        # scenario from the fairness tests where equal-share strands capacity
        topo = Topology("y")
        for name in ("a", "b", "c"):
            topo.add_site(Site(name, Tier.FOG))
        topo.add_link("a", "b", Link(0.0, 100.0))
        topo.add_link("b", "c", Link(0.0, 1000.0))
        done_mm, done_eq = {}, {}

        def run(allocator, done):
            sim = Simulator()
            net = FlowNetwork(sim, topo, allocator=allocator)

            def xfer(tag, src, dst, size):
                yield net.transfer(src, dst, size)
                done[tag] = sim.now

            sim.process(xfer("ab", "a", "b", 1000.0))
            sim.process(xfer("ac", "a", "c", 1000.0))
            sim.process(xfer("bc", "b", "c", 19000.0))
            sim.run()

        run(max_min_fair_rates, done_mm)
        run(equal_share_rates, done_eq)
        # bc flow finishes sooner under max-min (950 vs 500 B/s initially)
        assert done_mm["bc"] < done_eq["bc"]


class TestLatencyHelpers:
    def test_rtt(self):
        topo = pair(latency=0.05)
        assert rtt(topo, "a", "b") == pytest.approx(0.1)

    def test_request_response(self):
        topo = pair(latency=0.05, bandwidth=100.0)
        path = topo.path_info("a", "b")
        # 0.05 + 10/100 out, 0.05 + 20/100 back
        assert request_response_time(path, 10, 20) == pytest.approx(0.4)

    def test_local_request_is_free(self):
        topo = pair()
        path = topo.path_info("a", "a")
        assert request_response_time(path, 1e9, 1e9) == 0.0
