import pytest

from repro.continuum import edge_cloud_pair
from repro.core import ContinuumScheduler, GreedyEFTStrategy, TierStrategy
from repro.datafabric import Dataset
from repro.report import (
    ascii_gantt,
    dag_to_dot,
    dag_to_mermaid,
    placement_summary,
    utilization_table,
)
from repro.workflow import TaskSpec, WorkflowDAG


def small_dag():
    dag = WorkflowDAG("viz")
    dag.add_task(TaskSpec("extract", 2.0, outputs=(Dataset("raw-x", 100.0),)))
    dag.add_task(TaskSpec("train", 8.0, kind="training", inputs=("raw-x",),
                          outputs=(Dataset("model", 10.0),)))
    dag.add_task(TaskSpec("eval", 1.0, inputs=("model",)))
    return dag


def run_small(strategy=None):
    return ContinuumScheduler(edge_cloud_pair()).run(
        small_dag(), strategy or GreedyEFTStrategy()
    )


class TestDot:
    def test_structure(self):
        dot = dag_to_dot(small_dag())
        assert dot.startswith('digraph "viz"')
        assert "extract -> train" in dot
        assert "train -> eval" in dot
        assert dot.rstrip().endswith("}")

    def test_labels_include_work_and_kind(self):
        dot = dag_to_dot(small_dag())
        assert "work=8" in dot
        assert "kind=training" in dot

    def test_dataset_mode_shows_ellipses(self):
        dot = dag_to_dot(small_dag(), include_datasets=True)
        assert "shape=ellipse" in dot
        assert "raw_x" in dot  # sanitized name

    def test_control_edges_dashed_in_dataset_mode(self):
        dag = WorkflowDAG("ctl")
        dag.add_task(TaskSpec("a", 1.0))
        dag.add_task(TaskSpec("b", 1.0, after=("a",)))
        dot = dag_to_dot(dag, include_datasets=True)
        assert "style=dashed" in dot

    def test_special_characters_sanitized(self):
        dag = WorkflowDAG("weird")
        dag.add_task(TaskSpec("task-1.0", 1.0))
        dot = dag_to_dot(dag)
        assert "task_1_0" in dot


class TestMermaid:
    def test_structure(self):
        text = dag_to_mermaid(small_dag())
        assert text.startswith("graph LR")
        assert "extract --> train" in text
        assert 'extract["extract (2)"]' in text


class TestGantt:
    def test_contains_sites_and_tasks(self):
        result = run_small()
        gantt = ascii_gantt(result)
        assert "Gantt: viz" in gantt
        # every used site has a lane
        for site in {r.site for r in result.records.values()}:
            assert f"{site} |" in gantt or f"{site.rjust(5)} |" in gantt

    def test_empty_schedule(self):
        from repro.core.placement import ScheduleResult

        empty = ScheduleResult("w", "s", 0.0, {}, [], 0, 0, 0, 0)
        assert ascii_gantt(empty) == "(empty schedule)"

    def test_width_respected(self):
        gantt = ascii_gantt(run_small(), width=40)
        lanes = [l for l in gantt.splitlines() if "|" in l]
        assert all(len(l) <= 60 for l in lanes)


class TestTables:
    def test_utilization_rows(self):
        result = run_small(TierStrategy("edge"))
        table = utilization_table(result)
        assert "edge" in table and "cloud" in table
        assert "busy_over_makespan" in table

    def test_placement_summary(self):
        result = run_small(TierStrategy("edge"))
        text = placement_summary(result)
        assert "3 tasks" in text
        assert "edge:" in text
