"""Quick-mode smoke tests for every experiment: each must run, produce
non-empty rows with its expected columns, and reproduce its headline
shape claim. (The benchmark suite asserts the full shape set; these keep
`pytest tests/` sufficient to catch experiment regressions.)"""

import pytest

from repro.bench import EXPERIMENTS
from repro.bench.e02_strategies import place_externals
from repro.continuum import science_grid, Tier
from repro.datafabric import Dataset


class TestRegistry:
    def test_all_experiments_registered(self):
        assert sorted(EXPERIMENTS) == [
            "E1", "E10", "E11", "E12", "E13", "E14", "E16", "E2", "E3", "E4",
            "E5", "E6", "E7", "E8", "E9"
        ]


class TestPlaceExternals:
    def test_round_robin_over_peripherals(self):
        topo = science_grid()
        externals = [Dataset(f"d{i}", 1.0) for i in range(4)]
        placed = place_externals(topo, externals)
        sites = {site for _, site in placed}
        for site in sites:
            assert topo.site(site).tier.is_peripheral
        assert len(placed) == 4


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
def test_quick_mode_produces_rows(exp_id):
    result = EXPERIMENTS[exp_id](quick=True, seed=0)
    assert result.experiment_id == exp_id
    assert result.rows, f"{exp_id} produced no rows"
    assert result.notes, f"{exp_id} recorded no notes"
    # all rows of an experiment share a coherent schema (subset of union)
    keys = set().union(*(set(r) for r in result.rows))
    assert keys


class TestHeadlineShapes:
    def test_e1_crossover_exists(self):
        result = EXPERIMENTS["E1"](quick=True)
        wins = [r["offload_wins_sim"] for r in result.rows]
        assert not wins[0] and wins[-1]

    def test_e2_greedy_wins_climate(self):
        result = EXPERIMENTS["E2"](quick=True)
        climate = [r for r in result.rows if r["workload"] == "climate"]
        best = min(climate, key=lambda r: r["makespan_s"])
        assert best["strategy"] in ("greedy-eft", "heft", "min-min", "max-min")

    def test_e4_cold_worse_than_warm(self):
        result = EXPERIMENTS["E4"](quick=True)
        rows = {r["scenario"]: r for r in result.rows}
        assert rows["keep-alive=0s"]["p95_ms"] > rows["keep-alive=60s"]["p95_ms"]

    def test_e5_cloud_collapses_at_high_latency(self):
        result = EXPERIMENTS["E5"](quick=True)
        cloud = [r for r in result.rows if r["policy"] == "cloud"]
        assert cloud[-1]["satisfaction"] < cloud[0]["satisfaction"]

    def test_e6_caches_beat_streaming(self):
        result = EXPERIMENTS["E6"](quick=True)
        stream = next(r for r in result.rows if r["policy"] == "none (stream)")
        lru = next(r for r in result.rows if r["policy"] == "lru")
        assert lru["GB_moved"] < stream["GB_moved"]

    def test_e8_adaptive_beats_static_after_shift(self):
        result = EXPERIMENTS["E8"](quick=True)
        last = result.rows[-1]
        assert last["cum_regret_adaptive"] < last["cum_regret_static"]

    def test_e10_thin_pipe_stays_local(self):
        result = EXPERIMENTS["E10"](quick=True)
        thin = [r for r in result.rows if r["bandwidth_Mbps"] == 4.0]
        assert all(r["speedup"] == 1.0 for r in thin)

    def test_e14_covers_every_family_and_intensity(self):
        from repro.bench.e14_topology_zoo import _families, _intensities

        result = EXPERIMENTS["E14"](quick=True)
        cells = {(r["family"], r["churn"]) for r in result.rows}
        expected = {(fam, i) for fam, _p in _families(True)
                    for i in _intensities(True)}
        assert cells == expected

    def test_e14_churn_widens_spread_or_lowers_crossover(self):
        """Churn must bite somewhere: for each family the high-churn
        cell shows a worse worst/best spread or an earlier offload
        crossover than the calm cell."""
        import math

        result = EXPERIMENTS["E14"](quick=True)
        by_cell = {(r["family"], r["churn"]): r for r in result.rows}
        for family, churn in by_cell:
            if churn == "none":
                continue
            calm, stormy = by_cell[(family, "none")], by_cell[(family, churn)]
            crossed_earlier = (
                not math.isnan(stormy["crossover_x"])
                and (math.isnan(calm["crossover_x"])
                     or stormy["crossover_x"] <= calm["crossover_x"])
            )
            assert stormy["spread"] > calm["spread"] or crossed_earlier

    def test_e16_staleness_cost_grows_with_lag(self):
        result = EXPERIMENTS["E16"](quick=True)
        stale = [r for r in result.rows
                 if r["mode"] == "stale" and r["partitions"] == "none"]
        assert stale == sorted(stale, key=lambda r: r["lag_s"])
        assert stale[-1]["mis"] > stale[0]["mis"]
        assert stale[-1]["waste_mb"] > stale[0]["waste_mb"]

    def test_e16_quorum_eliminates_misplacement_at_a_latency_premium(self):
        result = EXPERIMENTS["E16"](quick=True)
        quorum = [r for r in result.rows if r["mode"] == "quorum"]
        assert quorum
        assert all(r["mis"] == 0 and r["waste_mb"] == 0 for r in quorum)
        stale = [r for r in result.rows if r["mode"] == "stale"]
        assert min(r["p99_ms"] for r in quorum) > \
            max(r["p99_ms"] for r in stale)

    def test_e16_partitions_cost_availability(self):
        result = EXPERIMENTS["E16"](quick=True)
        by_cell = {(r["mode"], r["partitions"], r["lag_s"]): r
                   for r in result.rows}
        calm = sum(r["unavail_s"] for k, r in by_cell.items()
                   if k[0] == "quorum" and k[1] == "none")
        stormy = sum(r["unavail_s"] for k, r in by_cell.items()
                     if k[0] == "quorum" and k[1] == "heavy")
        assert stormy > calm

    def test_e13_no_policy_loses_work(self):
        result = EXPERIMENTS["E13"](quick=True)
        assert all(r["lost"] == 0 for r in result.rows)

    def test_e13_full_dominates_naive_at_highest_intensity(self):
        """The headline acceptance claim: breakers + hedging strictly
        beat naive retry on wasted work AND tail latency under the
        heaviest campaign."""
        result = EXPERIMENTS["E13"](quick=False)
        worst = result.rows[-1]["intensity"]
        by_policy = {r["policy"]: r for r in result.rows
                     if r["intensity"] == worst}
        naive = by_policy["naive-retry"]
        full = by_policy["backoff+breakers+hedging"]
        assert full["wasted_pct"] < naive["wasted_pct"]
        assert full["p99_turnaround_s"] < naive["p99_turnaround_s"]


class TestDeterminism:
    @pytest.mark.parametrize("exp_id", ["E1", "E2", "E6", "E7", "E10", "E13",
                                        "E14", "E16"])
    def test_same_seed_same_rows(self, exp_id):
        a = EXPERIMENTS[exp_id](quick=True, seed=3)
        b = EXPERIMENTS[exp_id](quick=True, seed=3)
        assert a.rows == b.rows


class TestCLI:
    def test_single_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["E1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "E1: Gilder crossover" in out

    def test_unknown_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["E42"]) == 2

    def test_save_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["E1", "--save", str(tmp_path / "out"),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert (tmp_path / "out" / "e1.txt").exists()

    def test_warm_cache_replays_identically(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        args = ["E1", "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert list((tmp_path / "cache").glob("e1-*.json"))

    def test_jobs_flag_parallel_run(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["E1", "--jobs", "2", "--no-cache",
                     "--save", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "E1: Gilder crossover" in out
        assert (tmp_path / "out" / "e1.txt").exists()
