import os

from repro.bench.harness import ExperimentResult, render, save_result


class TestExperimentResult:
    def test_row_appends_and_returns(self):
        result = ExperimentResult("EX", "title")
        row = result.row(a=1, b=2)
        assert row == {"a": 1, "b": 2}
        assert result.rows == [{"a": 1, "b": 2}]

    def test_notes(self):
        result = ExperimentResult("EX", "title")
        result.note("observation")
        assert result.notes == ["observation"]


class TestRender:
    def test_contains_id_title_rows_notes(self):
        result = ExperimentResult("EX", "My Experiment")
        result.row(metric=42.0)
        result.note("shape holds")
        text = render(result)
        assert "EX: My Experiment" in text
        assert "metric" in text and "42" in text
        assert "- shape holds" in text


class TestSave:
    def test_writes_lowercase_id_file(self, tmp_path):
        result = ExperimentResult("E99", "save test")
        result.row(x=1)
        path = save_result(result, str(tmp_path))
        assert os.path.basename(path) == "e99.txt"
        content = open(path).read()
        assert "E99: save test" in content

    def test_creates_directory(self, tmp_path):
        target = str(tmp_path / "deep" / "dir")
        result = ExperimentResult("E1", "t")
        result.row(x=1)
        save_result(result, target)
        assert os.path.isdir(target)
