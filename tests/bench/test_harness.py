import os

import pytest

from repro.bench.harness import ExperimentResult, render, save_result


class TestExperimentResult:
    def test_row_appends_and_returns(self):
        result = ExperimentResult("EX", "title")
        row = result.row(a=1, b=2)
        assert row == {"a": 1, "b": 2}
        assert result.rows == [{"a": 1, "b": 2}]

    def test_notes(self):
        result = ExperimentResult("EX", "title")
        result.note("observation")
        assert result.notes == ["observation"]


class TestRender:
    def test_contains_id_title_rows_notes(self):
        result = ExperimentResult("EX", "My Experiment")
        result.row(metric=42.0)
        result.note("shape holds")
        text = render(result)
        assert "EX: My Experiment" in text
        assert "metric" in text and "42" in text
        assert "- shape holds" in text


class TestSave:
    def test_writes_lowercase_id_file(self, tmp_path):
        result = ExperimentResult("E99", "save test")
        result.row(x=1)
        path = save_result(result, str(tmp_path))
        assert os.path.basename(path) == "e99.txt"
        content = open(path).read()
        assert "E99: save test" in content

    def test_creates_directory(self, tmp_path):
        target = str(tmp_path / "deep" / "dir")
        result = ExperimentResult("E1", "t")
        result.row(x=1)
        save_result(result, target)
        assert os.path.isdir(target)


class TestAtomicSave:
    """Regression: a crashed (parallel) worker must never leave a
    truncated ``results/eN.txt`` — same temp-file + fsync + os.replace
    discipline as workflow checkpoints."""

    def _result(self, marker: str) -> ExperimentResult:
        result = ExperimentResult("E7", "atomic save")
        result.row(marker=marker)
        return result

    def test_save_fsyncs_before_replace(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        real_replace = os.replace

        def spy_fsync(fd):
            synced.append(fd)
            real_fsync(fd)

        def spy_replace(src, dst):
            assert synced, "os.replace ran before any fsync"
            real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        path = save_result(self._result("x"), str(tmp_path))
        assert "marker" in open(path).read()

    def test_failed_replace_keeps_old_table_and_no_litter(
            self, tmp_path, monkeypatch):
        path = save_result(self._result("old"), str(tmp_path))
        old_text = open(path).read()

        def boom(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            save_result(self._result("new"), str(tmp_path))
        monkeypatch.undo()
        assert open(path).read() == old_text
        litter = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert litter == []
