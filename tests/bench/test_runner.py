"""The parallel sharded runner and its content-addressed result cache."""

import json
import os

import numpy as np
import pytest

from repro.bench import EXPERIMENTS, render
from repro.bench.harness import ExperimentResult
from repro.bench.runner import (
    ResultCache,
    cache_key,
    result_from_doc,
    run_suite,
    source_digest,
)
from repro.errors import ContinuumError


class TestCacheKey:
    def test_distinct_per_config(self):
        src = "a" * 64
        keys = {
            cache_key("E1", False, 0, src),
            cache_key("E2", False, 0, src),
            cache_key("E1", True, 0, src),
            cache_key("E1", False, 1, src),
            cache_key("E1", False, 0, "b" * 64),
        }
        assert len(keys) == 5

    def test_stable_and_filename_safe(self):
        key = cache_key("E13", True, 7, "f" * 64)
        assert key == cache_key("E13", True, 7, "f" * 64)
        assert key.startswith("e13-") and key.endswith(".json")
        assert "/" not in key

    def test_source_digest_tracks_package_sources(self):
        digest = source_digest()
        assert len(digest) == 64
        assert digest == source_digest()


def _result(**rows_kwargs) -> ExperimentResult:
    result = ExperimentResult("E99", "cache test")
    result.row(**(rows_kwargs or {"x": 1.5, "label": "a", "ok": True}))
    result.note("a note")
    return result


class TestResultCache:
    def test_store_load_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = _result()
        rendered = render(result)
        path = cache.store("k.json", result, rendered, meta={"seed": 0})
        assert path and os.path.exists(path)
        doc = cache.load("k.json")
        assert doc["rendered"] == rendered
        assert render(result_from_doc(doc)) == rendered

    def test_numpy_rows_roundtrip_render_identically(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = _result(
            bw=np.float64(123.456789e6),
            n=np.int64(42),
            wins=np.bool_(True),
            tiny=np.float64(1.23e-7),
        )
        rendered = render(result)
        assert cache.store("np.json", result, rendered, meta={}) is not None
        doc = cache.load("np.json")
        assert render(result_from_doc(doc)) == rendered

    def test_unserializable_rows_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = _result(weird=object())
        assert cache.store("w.json", result, render(result), meta={}) is None
        assert cache.load("w.json") is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (tmp_path / "bad.json").write_text("{truncated")
        assert cache.load("bad.json") is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (tmp_path / "old.json").write_text(json.dumps({"schema": "v0"}))
        assert cache.load("old.json") is None

    def test_missing_is_a_miss(self, tmp_path):
        assert ResultCache(str(tmp_path)).load("nope.json") is None


class TestRunSuiteSequential:
    def test_matches_direct_run(self, tmp_path):
        entries = run_suite(["E1"], quick=True, seed=0, jobs=1,
                            use_cache=False)
        direct = EXPERIMENTS["E1"](quick=True, seed=0)
        assert len(entries) == 1
        assert entries[0].rendered == render(direct)
        assert not entries[0].cached

    def test_unknown_experiment_raises(self):
        with pytest.raises(ContinuumError):
            run_suite(["E42"], quick=True, use_cache=False)

    def test_bad_jobs_raises(self):
        with pytest.raises(ContinuumError):
            run_suite(["E1"], quick=True, jobs=0, use_cache=False)

    def test_save_dir_writes_tables(self, tmp_path):
        run_suite(["E1"], quick=True, use_cache=False,
                  save_dir=str(tmp_path))
        assert (tmp_path / "e1.txt").read_text().startswith("E1:")

    def test_warm_cache_skips_compute_and_replays(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_suite(["E1"], quick=True, cache_dir=cache_dir)
        warm = run_suite(["E1"], quick=True, cache_dir=cache_dir)
        assert not cold[0].cached and warm[0].cached
        assert warm[0].rendered == cold[0].rendered
        assert render(warm[0].result) == render(cold[0].result)

    def test_cache_invalidated_by_seed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_suite(["E13"], quick=True, seed=0, cache_dir=cache_dir)
        other = run_suite(["E13"], quick=True, seed=5, cache_dir=cache_dir)
        assert not other[0].cached


class TestShardProtocol:
    def test_e13_shards_merge_equals_run_experiment(self):
        from repro.bench import e13_resilience_policies as e13

        shards = e13.list_shards(quick=True, seed=0)
        assert len(shards) > 1
        partials = [e13.run_shard(s, quick=True, seed=0) for s in shards]
        merged = e13.merge_shards(partials, quick=True, seed=0)
        direct = e13.run_experiment(quick=True, seed=0)
        assert merged.rows == direct.rows
        assert merged.notes == direct.notes

    def test_e13_merge_is_order_insensitive(self):
        from repro.bench import e13_resilience_policies as e13

        shards = e13.list_shards(quick=True, seed=0)
        partials = [e13.run_shard(s, quick=True, seed=0) for s in shards]
        shuffled = list(reversed(partials))
        assert e13.merge_shards(shuffled, quick=True, seed=0).rows == \
            e13.merge_shards(partials, quick=True, seed=0).rows

    def test_e14_shards_merge_equals_run_experiment(self):
        from repro.bench import e14_topology_zoo as e14

        shards = e14.list_shards(quick=True, seed=0)
        assert len(shards) > 1
        partials = [e14.run_shard(s, quick=True, seed=0) for s in shards]
        merged = e14.merge_shards(partials, quick=True, seed=0)
        direct = e14.run_experiment(quick=True, seed=0)
        assert merged.rows == direct.rows
        assert merged.notes == direct.notes

    def test_e14_merge_is_order_insensitive(self):
        from repro.bench import e14_topology_zoo as e14

        shards = e14.list_shards(quick=True, seed=0)
        partials = [e14.run_shard(s, quick=True, seed=0) for s in shards]
        shuffled = list(reversed(partials))
        assert e14.merge_shards(shuffled, quick=True, seed=0).rows == \
            e14.merge_shards(partials, quick=True, seed=0).rows


class TestRunSuiteParallel:
    def test_parallel_bit_identical_to_sequential(self, tmp_path):
        seq = run_suite(["E1", "E13"], quick=True, use_cache=False, jobs=1)
        par = run_suite(["E1", "E13"], quick=True, use_cache=False, jobs=2)
        assert [e.experiment_id for e in par] == ["E1", "E13"]
        for s, p in zip(seq, par):
            assert p.rendered == s.rendered
        # E13 went through the shard fan-out
        assert par[1].shards > 1

    def test_parallel_save_matches_sequential_save(self, tmp_path):
        seq_dir, par_dir = str(tmp_path / "seq"), str(tmp_path / "par")
        run_suite(["E13"], quick=True, use_cache=False, jobs=1,
                  save_dir=seq_dir)
        run_suite(["E13"], quick=True, use_cache=False, jobs=2,
                  save_dir=par_dir)
        seq_text = open(os.path.join(seq_dir, "e13.txt")).read()
        par_text = open(os.path.join(par_dir, "e13.txt")).read()
        assert par_text == seq_text

    def test_parallel_populates_cache_for_replay(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_suite(["E13"], quick=True, jobs=2, cache_dir=cache_dir)
        warm = run_suite(["E13"], quick=True, jobs=1, cache_dir=cache_dir)
        assert warm[0].cached
        assert warm[0].rendered == cold[0].rendered


class TestSuiteMetrics:
    def test_sequential_collects_snapshots(self):
        from repro.bench.runner import suite_metrics_doc
        from repro.observe.metrics import snapshot_to_json, validate_suite

        entries = run_suite(["E6"], quick=True, use_cache=False,
                            collect_metrics=True)
        assert entries[0].metrics is not None
        doc = validate_suite(suite_metrics_doc(entries, quick=True, seed=0))
        assert "datafabric_cache_hits_total" in (
            doc["experiments"]["E6"]["metrics"])
        # canonical serialization is stable across reruns
        again = run_suite(["E6"], quick=True, use_cache=False,
                          collect_metrics=True)
        assert snapshot_to_json(entries[0].metrics) == snapshot_to_json(
            again[0].metrics)

    def test_parallel_metrics_bit_identical_to_sequential(self):
        from repro.observe.metrics import snapshot_to_json

        seq = run_suite(["E6", "E13"], quick=True, use_cache=False, jobs=1,
                        collect_metrics=True)
        par = run_suite(["E6", "E13"], quick=True, use_cache=False, jobs=2,
                        collect_metrics=True)
        for s, p in zip(seq, par):
            assert p.rendered == s.rendered        # tables untouched
            assert snapshot_to_json(p.metrics) == snapshot_to_json(s.metrics)

    def test_collect_metrics_bypasses_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_suite(["E1"], quick=True, cache_dir=cache_dir)     # warm it
        metered = run_suite(["E1"], quick=True, cache_dir=cache_dir,
                            collect_metrics=True)
        assert not metered[0].cached               # cached replay skipped
        assert metered[0].metrics is not None

    def test_tables_unchanged_by_collection(self):
        bare = run_suite(["E6"], quick=True, use_cache=False)
        metered = run_suite(["E6"], quick=True, use_cache=False,
                            collect_metrics=True)
        assert metered[0].rendered == bare[0].rendered

    def test_suite_doc_requires_metrics(self):
        from repro.bench.runner import suite_metrics_doc

        entries = run_suite(["E1"], quick=True, use_cache=False)
        with pytest.raises(ContinuumError, match="no metrics collected"):
            suite_metrics_doc(entries, quick=True, seed=0)
