"""Unit tests for the unified metrics layer: instruments, registry
semantics, exporters, and the snapshot-file loaders."""

import math

import pytest

from repro.errors import ObserveError
from repro.observe.metrics import (
    METRICS_SCHEMA,
    NULL_METRICS,
    STATE_SCHEMA,
    SUITE_SCHEMA,
    Counter,
    ExactSum,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    load_snapshot,
    log_buckets,
    parse_prometheus,
    set_registry,
    snapshot_to_json,
    to_prometheus,
    use_registry,
    validate_snapshot,
    validate_suite,
)


class TestExactSum:
    def test_simple_sum(self):
        s = ExactSum()
        for x in (0.1, 0.2, 0.3):
            s.add(x)
        assert s.value == math.fsum([0.1, 0.2, 0.3])

    def test_merge_equals_interleaved(self):
        xs = [0.1 * i for i in range(1, 50)]
        whole = ExactSum()
        for x in xs:
            whole.add(x)
        a, b = ExactSum(), ExactSum()
        for i, x in enumerate(xs):
            (a if i % 2 else b).add(x)
        a.merge(b)
        # partials representation may differ; the rounded value may not
        assert a.value == whole.value

    def test_state_round_trip(self):
        s = ExactSum()
        s.add(1e16)
        s.add(1.0)
        restored = ExactSum(s.state())
        assert restored.value == s.value


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ObserveError):
            c.inc(-1)
        with pytest.raises(ObserveError):
            c.inc(math.nan)

    def test_gauge_last_write_wins(self):
        g = Gauge("g")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == 4.0
        assert g.updates == 3
        with pytest.raises(ObserveError):
            g.set(math.inf)

    def test_histogram_buckets_and_quantile(self):
        h = Histogram("h", log_buckets(1.0, 2.0, 4))   # 1, 2, 4, 8
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.overflow == 1                          # the 100.0
        assert h.cumulative() == [1, 2, 3, 3]   # le 1, 2, 4, 8
        assert h.sum == math.fsum((0.5, 1.5, 3.0, 100.0))
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.75) == 4.0
        assert h.quantile(1.0) == math.inf              # overflow bucket
        assert math.isnan(Histogram("e", (1.0,)).quantile(0.5))
        with pytest.raises(ObserveError):
            h.quantile(1.5)

    def test_log_buckets_validation(self):
        assert log_buckets(1.0, 2.0, 3) == (1.0, 2.0, 4.0)
        with pytest.raises(ObserveError):
            log_buckets(0.0, 2.0, 3)
        with pytest.raises(ObserveError):
            log_buckets(1.0, 1.0, 3)


class TestRegistry:
    def test_idempotent_declaration(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", "hits", ("site",))
        b = reg.counter("hits_total", "", ("site",))
        assert a is b

    def test_conflicting_redeclaration_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", "", ("a",))
        with pytest.raises(ObserveError, match="re-declared"):
            reg.gauge("m", "", ("a",))
        with pytest.raises(ObserveError, match="re-declared"):
            reg.counter("m", "", ("b",))
        reg.histogram("h", start=1e-3)
        with pytest.raises(ObserveError, match="re-declared"):
            reg.histogram("h", start=1e-2)

    def test_name_and_label_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ObserveError, match="invalid metric name"):
            reg.counter("bad name")
        with pytest.raises(ObserveError, match="invalid label name"):
            reg.counter("ok", labels=("bad-label",))

    def test_labeled_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("reads_total", "", ("site", "policy"))
        fam.labels(site="edge", policy="lru").inc(3)
        fam.labels(site="edge", policy="lru").inc(1)
        fam.labels(site="cloud", policy="lru").inc()
        assert fam.labels(site="edge", policy="lru").value == 4
        with pytest.raises(ObserveError, match="takes labels"):
            fam.labels(site="edge")
        with pytest.raises(ObserveError, match="use .labels"):
            fam.inc()

    def test_unlabeled_shorthand(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(7)
        reg.gauge("g").set(1.25)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["metrics"]["n"]["series"][0]["value"] == 7
        assert snap["metrics"]["g"]["series"][0]["value"] == 1.25
        assert snap["metrics"]["h"]["series"][0]["count"] == 1

    def test_snapshot_validates_and_canonical_json(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "help a", ("k",)).labels(k="v").inc()
        snap = validate_snapshot(reg.snapshot())
        assert snap["schema"] == METRICS_SCHEMA
        text = snapshot_to_json(snap)
        assert text == snapshot_to_json(reg.snapshot())
        assert text.endswith("\n")

    def test_merge_state_counters_exact(self):
        xs = [0.1 * i + 1e-9 for i in range(40)]
        whole = MetricsRegistry()
        for x in xs:
            whole.counter("c").inc(x)
        sh1, sh2 = MetricsRegistry(), MetricsRegistry()
        for i, x in enumerate(xs):
            (sh1 if i % 2 else sh2).counter("c").inc(x)
        merged = MetricsRegistry()
        merged.merge_state(sh1.dump_state())
        merged.merge_state(sh2.dump_state())
        assert snapshot_to_json(merged.snapshot()) == snapshot_to_json(
            whole.snapshot())

    def test_merge_state_gauge_last_writer(self):
        sh1, sh2 = MetricsRegistry(), MetricsRegistry()
        sh1.gauge("g").set(1.0)
        sh2.gauge("g")           # declared, never set: must not clobber
        merged = MetricsRegistry()
        merged.merge_state(sh1.dump_state())
        merged.merge_state(sh2.dump_state())
        assert merged.get("g").value == 1.0

    def test_merge_state_schema_check(self):
        reg = MetricsRegistry()
        with pytest.raises(ObserveError, match="cannot merge"):
            reg.merge_state({"schema": "bogus/1"})
        assert STATE_SCHEMA in repr(reg.dump_state()["schema"]) or True
        assert reg.dump_state()["schema"] == STATE_SCHEMA


class TestAmbientRegistry:
    def test_default_is_disabled(self):
        assert current_registry() is NULL_METRICS
        assert not NULL_METRICS.enabled

    def test_use_registry_scoped(self):
        reg = MetricsRegistry()
        with use_registry(reg) as installed:
            assert installed is reg
            assert current_registry() is reg
        assert current_registry() is NULL_METRICS

    def test_set_registry_none_restores_default(self):
        reg = MetricsRegistry()
        prev = set_registry(reg)
        try:
            assert current_registry() is reg
        finally:
            set_registry(prev)
        assert set_registry(None) is NULL_METRICS
        assert current_registry() is NULL_METRICS


class TestPrometheusExport:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("reads_total", "reads", ("site",)).labels(
            site="edge").inc(12)
        reg.gauge("depth", "queue depth").set(3.5)
        h = reg.histogram("lat_seconds", "latency", start=1e-3, count=10)
        for v in (0.002, 0.004, 0.5, 99.0):
            h.observe(v)
        return reg

    def test_text_format_shape(self):
        text = to_prometheus(self._registry())
        assert "# TYPE reads_total counter" in text
        assert 'reads_total{site="edge"} 12' in text
        assert "# HELP depth queue depth" in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text

    def test_extra_labels_prepended(self):
        text = to_prometheus(self._registry(),
                             extra_labels={"experiment": "E6"})
        assert 'reads_total{experiment="E6",site="edge"} 12' in text
        assert 'depth{experiment="E6"} 3.5' in text

    def test_round_trip(self):
        reg = self._registry()
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed["reads_total"]["series"][(("site", "edge"),)] == 12
        assert parsed["depth"]["series"][()] == 3.5
        hist = parsed["lat_seconds"]["series"][()]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(0.002 + 0.004 + 0.5 + 99.0)
        assert hist["buckets"][math.inf] == 4

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c", "", ("k",)).labels(k='a"b\\c\nd').inc()
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed["c"]["series"][(("k", 'a"b\\c\nd'),)] == 1


class TestSnapshotFiles:
    def test_load_missing(self, tmp_path):
        with pytest.raises(ObserveError, match="not found"):
            load_snapshot(str(tmp_path / "nope.json"))

    def test_load_corrupt(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ObserveError, match="not valid JSON"):
            load_snapshot(str(p))

    def test_load_unknown_schema(self, tmp_path):
        p = tmp_path / "weird.json"
        p.write_text('{"schema": "weird/9", "metrics": {}}')
        with pytest.raises(ObserveError, match="unknown metrics snapshot"):
            load_snapshot(str(p))

    def test_load_valid_snapshot_and_suite(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        p = tmp_path / "ok.json"
        p.write_text(snapshot_to_json(snap))
        assert load_snapshot(str(p))["metrics"]["c"]["series"][0]["value"] == 1
        suite = {"schema": SUITE_SCHEMA, "config": {"quick": True, "seed": 0},
                 "experiments": {"E6": snap}}
        ps = tmp_path / "suite.json"
        ps.write_text(snapshot_to_json(suite))
        assert load_snapshot(str(ps))["schema"] == SUITE_SCHEMA

    def test_validate_suite_rejects_bad_experiment(self):
        with pytest.raises(ObserveError, match="no 'experiments'"):
            validate_suite({"schema": SUITE_SCHEMA, "experiments": {}})
        with pytest.raises(ObserveError, match="experiment E1"):
            validate_suite({"schema": SUITE_SCHEMA,
                            "experiments": {"E1": {"schema": "bad"}}})

    def test_validate_snapshot_errors(self):
        with pytest.raises(ObserveError, match="not a JSON object"):
            validate_snapshot([])
        with pytest.raises(ObserveError, match="missing 'metrics'"):
            validate_snapshot({"schema": METRICS_SCHEMA})
        with pytest.raises(ObserveError, match="unknown type"):
            validate_snapshot({"schema": METRICS_SCHEMA, "metrics":
                               {"m": {"type": "summary", "series": []}}})
