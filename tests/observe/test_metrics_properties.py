"""Property tests for the metrics determinism contract.

The merge guarantees the bench runner leans on — sharded registries
reproduce whole-run accumulation regardless of how observations are
split or in which order shards are folded — plus exporter round-trips.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observe.metrics import (
    ExactSum,
    Histogram,
    MetricsRegistry,
    log_buckets,
    parse_prometheus,
    snapshot_to_json,
    to_prometheus,
)

finite = st.floats(min_value=0.0, max_value=1e12,
                   allow_nan=False, allow_infinity=False)
values = st.lists(finite, min_size=0, max_size=60)


@given(values, st.integers(min_value=2, max_value=5),
       st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_counter_shard_merge_equals_whole_run(xs, n_shards, rnd):
    """Splitting increments across shards and merging in any order gives
    the same rounded value as one whole-run counter."""
    whole = MetricsRegistry()
    for x in xs:
        whole.counter("c").inc(x)
    shards = [MetricsRegistry() for _ in range(n_shards)]
    for x in xs:
        rnd.choice(shards).counter("c").inc(x)
    states = [s.dump_state() for s in shards]
    rnd.shuffle(states)
    merged = MetricsRegistry()
    for state in states:
        merged.merge_state(state)
    assert snapshot_to_json(merged.snapshot()) == snapshot_to_json(
        whole.snapshot())


@given(values, values)
@settings(max_examples=60, deadline=None)
def test_exactsum_merge_commutes(xs, ys):
    ab = ExactSum()
    for x in xs:
        ab.add(x)
    b = ExactSum()
    for y in ys:
        b.add(y)
    ab.merge(b)

    ba = ExactSum()
    for y in ys:
        ba.add(y)
    a = ExactSum()
    for x in xs:
        a.add(x)
    ba.merge(a)
    assert ab.value == ba.value


@given(values, values, values)
@settings(max_examples=60, deadline=None)
def test_exactsum_merge_associates(xs, ys, zs):
    def acc(vals):
        s = ExactSum()
        for v in vals:
            s.add(v)
        return s

    left = acc(xs)
    left.merge(acc(ys))
    left.merge(acc(zs))

    bc = acc(ys)
    bc.merge(acc(zs))
    right = acc(xs)
    right.merge(bc)
    assert left.value == right.value


@given(st.lists(st.floats(min_value=1e-6, max_value=1e9,
                          allow_nan=False, allow_infinity=False),
                min_size=0, max_size=80))
@settings(max_examples=60, deadline=None)
def test_histogram_shard_merge_equals_whole_run(xs):
    whole = Histogram("h", log_buckets(1e-3, 2.0, 40))
    for x in xs:
        whole.observe(x)
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.histogram("h")
    r2.histogram("h")
    for i, x in enumerate(xs):
        (r1 if i % 2 else r2).histogram("h").observe(x)
    merged = MetricsRegistry()
    merged.merge_state(r1.dump_state())
    merged.merge_state(r2.dump_state())
    h = merged.get("h")._default()
    assert h.counts == whole.counts
    assert h.overflow == whole.overflow
    assert h.count == whole.count
    assert h.sum == whole.sum


@given(st.lists(st.floats(min_value=1e-6, max_value=1e9,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=80),
       st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2,
                max_size=6))
@settings(max_examples=60, deadline=None)
def test_histogram_quantile_monotone(xs, qs):
    h = Histogram("h", log_buckets(1e-3, 2.0, 40))
    for x in xs:
        h.observe(x)
    qs = sorted(qs)
    estimates = [h.quantile(q) for q in qs]
    assert all(a <= b for a, b in zip(estimates, estimates[1:]))
    # every estimate is an upper bound drawn from the bucket grid
    grid = set(h.bounds) | {math.inf}
    assert all(e in grid for e in estimates)


@given(st.dictionaries(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4), finite,
    min_size=0, max_size=8), values)
@settings(max_examples=60, deadline=None)
def test_prometheus_round_trip(labelled_counts, hist_values):
    reg = MetricsRegistry()
    fam = reg.counter("req_total", "requests", ("route",))
    for route, v in labelled_counts.items():
        fam.labels(route=route).inc(v)
    h = reg.histogram("lat_seconds", "latency")
    for v in hist_values:
        h.observe(v)
    parsed = parse_prometheus(to_prometheus(reg))
    for route, v in labelled_counts.items():
        got = parsed["req_total"]["series"][(("route", route),)]
        assert got == fam.labels(route=route).value
    if hist_values:
        hist = parsed["lat_seconds"]["series"][()]
        assert hist["count"] == len(hist_values)
        assert hist["buckets"][math.inf] == len(hist_values)
    else:
        assert parsed["lat_seconds"]["series"] == {}
