"""Critical-path extraction: synthetic chains and real scheduler runs."""

import pytest

from repro.continuum import edge_cloud_pair
from repro.core import ContinuumScheduler, GreedyEFTStrategy, TaskRecord
from repro.datafabric import Dataset
from repro.observe import critical_path
from repro.workflow import TaskSpec, WorkflowDAG


def linear_dag():
    dag = WorkflowDAG("chain")
    dag.add_task(TaskSpec("a", work=2.0, outputs=(Dataset("x", 100.0),)))
    dag.add_task(TaskSpec("b", work=3.0, inputs=("x",), after=("a",)))
    return dag


class TestSyntheticRecords:
    def test_breakdown_of_hand_built_chain(self):
        dag = linear_dag()
        records = {
            "a": TaskRecord("a", "edge", stage_started=0.0,
                            stage_finished=0.0, exec_started=0.5,
                            exec_finished=2.5),
            "b": TaskRecord("b", "cloud", stage_started=2.5,
                            stage_finished=4.0, exec_started=4.0,
                            exec_finished=7.0),
        }
        cp = critical_path(records, dag)
        assert cp.task_names == ["a", "b"]
        assert cp.makespan_s == 7.0
        assert cp.compute_s == pytest.approx(5.0)
        assert cp.transfer_s == pytest.approx(1.5)
        assert cp.queue_s == pytest.approx(0.5)    # a's slot wait
        fractions = cp.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_gating_predecessor_chosen_by_latest_finish(self):
        """Of two dependencies the one finishing *last* gates the join."""
        dag = WorkflowDAG("join")
        dag.add_task(TaskSpec("a", work=1.0))
        dag.add_task(TaskSpec("b", work=5.0))
        dag.add_task(TaskSpec("c", work=1.0, after=("a", "b")))
        records = {
            "a": TaskRecord("a", "e", exec_started=0.0, exec_finished=1.0),
            "b": TaskRecord("b", "e", exec_started=0.0, exec_finished=5.0),
            "c": TaskRecord("c", "e", stage_started=5.0, stage_finished=5.0,
                            exec_started=5.0, exec_finished=6.0),
        }
        cp = critical_path(records, dag)
        assert cp.task_names == ["b", "c"]

    def test_dispatch_gap_attributed(self):
        """Time between the gate's finish and staging start is a gap
        (counted into the queue share)."""
        dag = linear_dag()
        records = {
            "a": TaskRecord("a", "e", exec_started=0.0, exec_finished=2.0),
            "b": TaskRecord("b", "e", stage_started=6.0, stage_finished=6.0,
                            exec_started=6.0, exec_finished=7.0),
        }
        cp = critical_path(records, dag)
        assert cp.steps[-1].gap_s == pytest.approx(4.0)
        assert cp.queue_s == pytest.approx(4.0)

    def test_empty_run(self):
        cp = critical_path({}, WorkflowDAG("none"))
        assert cp.steps == []
        assert cp.makespan_s == 0.0
        assert cp.fractions() == {"compute": 0.0, "transfer": 0.0,
                                  "queue": 0.0}

    def test_arrival_anchor_shifts_makespan(self):
        dag = WorkflowDAG("late-job")
        dag.add_task(TaskSpec("t", work=1.0))
        records = {
            "t": TaskRecord("t", "e", stage_started=10.0,
                            stage_finished=10.0, exec_started=10.0,
                            exec_finished=11.0),
        }
        cp = critical_path(records, dag, arrival_s=10.0)
        assert cp.makespan_s == 1.0
        assert cp.steps[0].gap_s == 0.0


class TestRealRuns:
    def test_makespan_matches_scheduler_exactly(self):
        """Acceptance criterion: for a deterministic DAG the extracted
        makespan equals the scheduler's reported makespan bit-exactly."""
        topo = edge_cloud_pair(bandwidth_Bps=1e6, latency_s=0.0)
        dag = linear_dag()
        result = ContinuumScheduler(topo).run(dag, GreedyEFTStrategy())
        cp = critical_path(result, dag)
        assert cp.makespan_s == result.makespan
        assert cp.task_names[-1] == max(
            result.records.values(), key=lambda r: r.exec_finished).task

    def test_chain_is_dependency_connected(self):
        from repro.workloads import beamline_pipeline

        topo = edge_cloud_pair()
        dag, externals = beamline_pipeline(4)
        result = ContinuumScheduler(topo).run(
            dag, GreedyEFTStrategy(),
            external_inputs=[(d, "edge") for d in externals],
        )
        cp = critical_path(result, dag)
        assert cp.makespan_s == result.makespan
        for earlier, later in zip(cp.task_names, cp.task_names[1:]):
            assert earlier in dag.dependencies(later)
