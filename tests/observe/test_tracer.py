"""Tracer span lifecycle: nesting, clocks, sentinels, round trips."""

import json

import pytest

from repro.errors import ObserveError
from repro.observe import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.simcore import Simulator, Timeout


class TestSpanLifecycle:
    def test_begin_end_duration(self):
        tracer = Tracer(clock=lambda: 0.0)
        span = tracer.begin("work", "test", time=1.0)
        tracer.end(span, time=3.5)
        assert span.closed
        assert span.duration_s == pytest.approx(2.5)
        assert tracer.finished() == [span]

    def test_nesting_via_parent(self):
        tracer = Tracer(clock=lambda: 0.0)
        outer = tracer.begin("outer", time=0.0)
        inner = tracer.begin("inner", parent=outer, time=1.0)
        tracer.end(inner, time=2.0)
        tracer.end(outer, time=3.0)
        assert inner.parent_id == outer.span_id
        assert tracer.children_of(outer) == [inner]

    def test_double_end_rejected(self):
        tracer = Tracer(clock=lambda: 1.0)
        span = tracer.begin("s")
        tracer.end(span)
        with pytest.raises(ObserveError, match="already ended"):
            tracer.end(span)

    def test_end_before_begin_rejected(self):
        tracer = Tracer()
        span = tracer.begin("s", time=5.0)
        with pytest.raises(ObserveError, match="before its begin"):
            tracer.end(span, time=4.0)

    def test_end_merges_attributes_and_status(self):
        tracer = Tracer()
        span = tracer.begin("s", time=0.0, site="edge")
        tracer.end(span, time=1.0, status="interrupted", cause="outage")
        assert span.status == "interrupted"
        assert span.attrs == {"site": "edge", "cause": "outage"}

    def test_context_manager_marks_failure(self):
        tracer = Tracer(clock=lambda: 2.0)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.finished()
        assert span.status == "failed"

    def test_instant_is_closed_zero_width(self):
        tracer = Tracer()
        mark = tracer.instant("tick", "event", time=4.0)
        assert mark.instant and mark.closed
        assert mark.duration_s == 0.0


class TestClockBinding:
    def test_bind_callable(self):
        tracer = Tracer()
        tracer.bind(lambda: 42.0)
        assert tracer.bound
        assert tracer.now() == 42.0

    def test_bind_object_with_now(self):
        sim = Simulator()
        tracer = Tracer()
        tracer.bind(sim)

        def body():
            yield Timeout(3.0)
            tracer.instant("late")

        sim.run_process(body())
        assert tracer.finished()[0].begin_s == 3.0

    def test_bind_garbage_rejected(self):
        with pytest.raises(ObserveError):
            Tracer().bind(object())

    def test_unbound_uses_wall_clock(self):
        tracer = Tracer()
        assert not tracer.bound
        assert tracer.now() >= 0.0


class TestDisabledTracing:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.begin("s")
        assert span is NULL_SPAN
        tracer.end(span)                  # silently ignored
        tracer.instant("tick")
        assert tracer.spans == []

    def test_null_tracer_singleton_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.begin("x") is NULL_SPAN
        assert NULL_TRACER.spans == []

    def test_end_of_none_is_noop(self):
        Tracer().end(None)


class TestRetrievalAndRoundTrip:
    def make_tree(self, tracer):
        root = tracer.begin("task:a", "task", time=0.0)
        stage = tracer.begin("stage", "phase", parent=root, time=0.0)
        tracer.end(stage, time=1.0)
        run = tracer.begin("exec", "phase", parent=root, time=1.0)
        tracer.end(run, time=4.0)
        tracer.end(root, time=4.0)
        tracer.instant("ready", "event", time=0.0)
        return root

    def test_by_category_and_open(self):
        tracer = Tracer()
        self.make_tree(tracer)
        dangling = tracer.begin("unfinished", time=5.0)
        assert len(tracer.by_category("phase")) == 2
        assert tracer.open_spans() == [dangling]

    def test_export_round_trip(self):
        """Tracer -> Chrome JSON -> serialize -> parse -> validate."""
        tracer = Tracer()
        self.make_tree(tracer)
        doc = json.loads(json.dumps(to_chrome_trace(tracer)))
        count = validate_chrome_trace(doc)
        # 1 metadata + 3 B/E pairs + 1 instant
        assert count == 8
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "B"]
        assert names == ["task:a", "stage", "exec"]

    def test_clear_resets_ids(self):
        tracer = Tracer()
        self.make_tree(tracer)
        tracer.clear()
        assert tracer.spans == []
        assert tracer.begin("fresh", time=0.0).span_id == 1
