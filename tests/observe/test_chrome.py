"""Chrome trace-event export: structure and schema validation."""

import pytest

from repro.errors import ObserveError
from repro.observe import Span, Tracer, to_chrome_trace, validate_chrome_trace


def traced_pair():
    tracer = Tracer()
    a = tracer.begin("a", "task", time=0.0)
    tracer.end(a, time=2.0)
    b = tracer.begin("b", "task", time=1.0)   # overlaps a
    tracer.end(b, time=3.0)
    return tracer


class TestExport:
    def test_timestamps_in_microseconds(self):
        tracer = Tracer()
        s = tracer.begin("s", time=1.5)
        tracer.end(s, time=2.0)
        events = to_chrome_trace(tracer)["traceEvents"]
        begin = next(e for e in events if e["ph"] == "B")
        end = next(e for e in events if e["ph"] == "E")
        assert begin["ts"] == pytest.approx(1.5e6)
        assert end["ts"] == pytest.approx(2.0e6)

    def test_overlapping_trees_get_separate_lanes(self):
        """Two overlapping root spans must not share a tid, or the
        B/E stack discipline breaks in the viewer."""
        doc = to_chrome_trace(traced_pair())
        tids = {e["tid"] for e in doc["traceEvents"]
                if e["ph"] in ("B", "E")}
        assert len(tids) == 2
        validate_chrome_trace(doc)

    def test_children_share_their_roots_lane(self):
        tracer = Tracer()
        root = tracer.begin("root", time=0.0)
        child = tracer.begin("child", parent=root, time=1.0)
        tracer.end(child, time=2.0)
        tracer.end(root, time=3.0)
        doc = to_chrome_trace(tracer)
        lanes = {e["name"]: e["tid"] for e in doc["traceEvents"]
                 if e["ph"] == "B"}
        assert lanes["child"] == lanes["root"]

    def test_open_spans_skipped(self):
        tracer = Tracer()
        tracer.begin("never-ends", time=0.0)
        assert to_chrome_trace(tracer)["traceEvents"] == []

    def test_attrs_exported_as_args(self):
        tracer = Tracer()
        s = tracer.begin("s", time=0.0, site="edge", bytes=128.0)
        tracer.end(s, time=1.0)
        begin = next(e for e in to_chrome_trace(tracer)["traceEvents"]
                     if e["ph"] == "B")
        assert begin["args"]["site"] == "edge"
        assert begin["args"]["bytes"] == 128.0

    def test_accepts_plain_span_list(self):
        spans = [Span(name="x", category="c", begin_s=0.0,
                      span_id=1, end_s=1.0)]
        doc = to_chrome_trace(spans)
        assert validate_chrome_trace(doc) == 3  # metadata + B + E


class TestValidation:
    def ok_doc(self):
        return to_chrome_trace(traced_pair())

    def test_valid_doc_passes(self):
        assert self.ok_doc()  # sanity
        assert validate_chrome_trace(self.ok_doc()) == 6

    def test_not_a_dict(self):
        with pytest.raises(ObserveError):
            validate_chrome_trace([])

    def test_missing_field(self):
        doc = self.ok_doc()
        del doc["traceEvents"][-1]["name"]
        with pytest.raises(ObserveError, match="missing"):
            validate_chrome_trace(doc)

    def test_negative_timestamp(self):
        doc = self.ok_doc()
        doc["traceEvents"][-1]["ts"] = -1.0
        with pytest.raises(ObserveError, match="bad timestamp|non-monotonic"):
            validate_chrome_trace(doc)

    def test_non_monotonic_timestamps(self):
        doc = self.ok_doc()
        timed = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        timed[0]["ts"], timed[-1]["ts"] = timed[-1]["ts"], timed[0]["ts"]
        with pytest.raises(ObserveError, match="non-monotonic"):
            validate_chrome_trace(doc)

    def test_unmatched_end(self):
        doc = self.ok_doc()
        doc["traceEvents"] = [e for e in doc["traceEvents"]
                              if e["ph"] != "B"]
        with pytest.raises(ObserveError, match="no open"):
            validate_chrome_trace(doc)

    def test_unclosed_begin(self):
        doc = self.ok_doc()
        doc["traceEvents"] = [e for e in doc["traceEvents"]
                              if e["ph"] != "E"]
        with pytest.raises(ObserveError, match="unclosed"):
            validate_chrome_trace(doc)

    def test_misnested_pair(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 0, "tid": 1, "ts": 0.0},
            {"name": "b", "ph": "B", "pid": 0, "tid": 1, "ts": 1.0},
            {"name": "a", "ph": "E", "pid": 0, "tid": 1, "ts": 2.0},
            {"name": "b", "ph": "E", "pid": 0, "tid": 1, "ts": 3.0},
        ]}
        with pytest.raises(ObserveError, match="misnested"):
            validate_chrome_trace(doc)

    def test_unknown_phase(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 0, "tid": 1, "ts": 0.0},
        ]}
        with pytest.raises(ObserveError, match="phase"):
            validate_chrome_trace(doc)
