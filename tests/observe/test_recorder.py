"""Unit tests for the sim-clock gauge recorder and its Chrome counter
export."""

import pytest

from repro.errors import ObserveError
from repro.observe.chrome import validate_chrome_trace
from repro.observe.recorder import MetricsRecorder, series_counter_events


class TestRecorder:
    def test_validation(self):
        with pytest.raises(ObserveError):
            MetricsRecorder(interval_s=0)
        with pytest.raises(ObserveError):
            MetricsRecorder(max_samples=2)
        rec = MetricsRecorder()
        rec.add_probe("x", lambda: 1.0)
        with pytest.raises(ObserveError, match="duplicate"):
            rec.add_probe("x", lambda: 2.0)

    def test_tick_samples_all_probes(self):
        state = {"v": 0}
        rec = MetricsRecorder(interval_s=2.0)
        rec.add_probe("a", lambda: state["v"])
        rec.add_probe("b", lambda: 10)
        state["v"] = 5
        rec.tick(1.0)
        assert rec.next_t == 3.0
        state["v"] = 7
        rec.tick(3.5)
        assert rec.series["a"] == [(1.0, 5.0), (3.5, 7.0)]
        assert rec.series["b"] == [(1.0, 10.0), (3.5, 10.0)]
        assert rec.sample_count() == 2

    def test_decimation_bounds_samples(self):
        rec = MetricsRecorder(interval_s=1.0, max_samples=8)
        rec.add_probe("n", lambda: 1.0)
        t = 0.0
        for _ in range(200):
            if t >= rec.next_t:
                rec.tick(t)
            t += 1.0
        assert rec.sample_count() <= 8
        assert rec.interval_s > 1.0            # doubled at least once
        times = [t for t, _ in rec.series["n"]]
        assert times == sorted(times)

    def test_counter_events_sorted_and_valid(self):
        rec = MetricsRecorder(interval_s=1.0)
        rec.add_probe("beta", lambda: 2.0)
        rec.add_probe("alpha", lambda: 1.0)
        rec.tick(0.5)
        rec.tick(1.5)
        events = rec.counter_events()
        assert [(e["ts"], e["name"]) for e in events] == [
            (0.5e6, "alpha"), (0.5e6, "beta"),
            (1.5e6, "alpha"), (1.5e6, "beta"),
        ]
        assert all(e["ph"] == "C" for e in events)
        validate_chrome_trace({"traceEvents": events})

    def test_series_counter_events_matches_recorder(self):
        rec = MetricsRecorder()
        rec.add_probe("q", lambda: 3.0)
        rec.tick(2.0)
        assert series_counter_events(rec.series) == rec.counter_events()
