"""Smoke tests: every shipped example must run cleanly.

Examples are deliverables, not decorations — they exercise the public
API end-to-end, so a breaking change that misses unit coverage usually
trips here first.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_expected_examples_present():
    names = {os.path.splitext(f)[0] for f in EXAMPLES}
    assert {
        "quickstart",
        "beamline_streaming",
        "edge_video_analytics",
        "climate_portfolio",
        "adaptive_placement",
        "continuum_operations",
    } <= names


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    path = os.path.join(EXAMPLES_DIR, script)
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


class TestExampleOutputs:
    def run(self, name, capsys, monkeypatch):
        path = os.path.join(EXAMPLES_DIR, name)
        monkeypatch.setattr(sys, "argv", [path])
        runpy.run_path(path, run_name="__main__")
        return capsys.readouterr().out

    def test_quickstart_answers_both_questions(self, capsys, monkeypatch):
        out = self.run("quickstart.py", capsys, monkeypatch)
        assert "offload to cloud" in out or "stay at edge" in out
        assert "sum of squares 0..9 = 285" in out

    def test_adaptive_recovers(self, capsys, monkeypatch):
        out = self.run("adaptive_placement.py", capsys, monkeypatch)
        assert "post-shift mean" in out

    def test_operations_day_reports(self, capsys, monkeypatch):
        out = self.run("continuum_operations.py", capsys, monkeypatch)
        assert "Gantt" in out
        assert "jobs finished" in out
