import pytest

from repro.continuum import Site, Tier
from repro.errors import FaaSError
from repro.faas import (
    Autoscaler,
    ContainerModel,
    Endpoint,
    FunctionDef,
    FunctionRegistry,
    ScalingPolicy,
    SerializationModel,
)
from repro.simcore import Simulator, Timeout

NO_SER = SerializationModel(base_s=0.0, bytes_per_second=1e18)
NO_CONTAINERS = ContainerModel(cold_start_s=0.0, warm_start_s=0.0)


def make_endpoint(workers=1, work=5.0):
    sim = Simulator()
    site = Site("s", Tier.EDGE, speed=1.0, slots=64)
    reg = FunctionRegistry()
    reg.register(FunctionDef("f", work=work))
    ep = Endpoint(sim, site, reg, workers=workers,
                  containers=NO_CONTAINERS, serialization=NO_SER)
    return sim, ep


class TestScalingPolicy:
    def test_bounds_validation(self):
        with pytest.raises(FaaSError):
            ScalingPolicy(min_workers=4, max_workers=2)

    def test_bad_values(self):
        with pytest.raises(Exception):
            ScalingPolicy(step=0)
        with pytest.raises(Exception):
            ScalingPolicy(interval_s=0)


class TestResourceElasticity:
    def test_grow_grants_queued_requests(self):
        sim, ep = make_endpoint(workers=1, work=10.0)
        done = []

        def client(i):
            record = yield ep.invoke("f")
            done.append((i, sim.now))

        for i in range(2):
            sim.process(client(i))

        def grow():
            yield Timeout(1.0)
            ep.workers.set_capacity(2)

        sim.process(grow())
        sim.run()
        # second request starts at t=1 instead of t=10
        assert done[1][1] == pytest.approx(11.0)

    def test_shrink_never_preempts(self):
        sim, ep = make_endpoint(workers=2, work=10.0)

        def client():
            yield ep.invoke("f")

        sim.process(client())
        sim.process(client())

        def shrink():
            yield Timeout(1.0)
            ep.workers.set_capacity(1)

        sim.process(shrink())
        sim.run()
        # both finish at t=10: no preemption
        assert sim.now == pytest.approx(10.0)

    def test_time_averaged_capacity(self):
        sim, ep = make_endpoint(workers=2)
        res = ep.workers

        def resize():
            yield Timeout(10.0)
            res.set_capacity(4)
            yield Timeout(10.0)

        sim.run_process(resize())
        assert res.time_averaged_capacity() == pytest.approx(3.0)


class TestAutoscaler:
    def burst(self, sim, ep, n, at=0.0):
        done = []

        def client(i):
            yield Timeout(at)
            record = yield ep.invoke("f")
            done.append(sim.now)

        for i in range(n):
            sim.process(client(i))
        return done

    def test_scales_up_under_backlog(self):
        sim, ep = make_endpoint(workers=1, work=20.0)
        scaler = Autoscaler(ep, ScalingPolicy(
            min_workers=1, max_workers=8, scale_up_at=2, step=2,
            interval_s=1.0, provision_delay_s=3.0,
        ))
        scaler.start()
        self.burst(sim, ep, 8)
        sim.run()
        assert scaler.scaling_events, "no scaling happened"
        grew = [e for e in scaler.scaling_events if e[2] > e[1]]
        assert grew
        # capacity respected the ceiling
        assert max(e[2] for e in scaler.scaling_events) <= 8

    def test_faster_than_fixed_pool(self):
        def drive(autoscale):
            sim, ep = make_endpoint(workers=1, work=20.0)
            if autoscale:
                scaler = Autoscaler(ep, ScalingPolicy(
                    min_workers=1, max_workers=8, scale_up_at=1, step=2,
                    interval_s=1.0, provision_delay_s=2.0,
                ))
                scaler.start()
            self.burst(sim, ep, 8)
            sim.run()
            return sim.now

        assert drive(True) < drive(False)

    def test_scales_back_down_when_idle(self):
        sim, ep = make_endpoint(workers=1, work=5.0)
        scaler = Autoscaler(ep, ScalingPolicy(
            min_workers=1, max_workers=4, scale_up_at=1, step=1,
            interval_s=1.0, provision_delay_s=1.0,
        ))
        scaler.start()
        self.burst(sim, ep, 6)

        def stopper():
            yield Timeout(60.0)
            scaler.stop()

        sim.process(stopper())
        sim.run()
        assert scaler.current_workers == 1
        # it went up before coming down
        assert max(e[2] for e in scaler.scaling_events) > 1

    def test_never_below_min_or_above_max(self):
        sim, ep = make_endpoint(workers=2, work=3.0)
        policy = ScalingPolicy(min_workers=2, max_workers=5, scale_up_at=1,
                               step=3, interval_s=0.5, provision_delay_s=0.5)
        scaler = Autoscaler(ep, policy)
        scaler.start()
        self.burst(sim, ep, 20)

        def stopper():
            yield Timeout(120.0)
            scaler.stop()

        sim.process(stopper())
        sim.run()
        capacities = [e[2] for e in scaler.scaling_events]
        assert all(2 <= c <= 5 for c in capacities)
        assert scaler.current_workers >= 2

    def test_no_scale_down_while_workers_busy(self):
        """Scale-down needs queue empty AND every worker idle.

        One long request occupies a worker the whole run: the queue is
        empty throughout, but shrinking before the request finishes
        would flap capacity under steady load (the old code shrank
        whenever *any* worker was idle)."""
        sim, ep = make_endpoint(workers=2, work=50.0)
        scaler = Autoscaler(ep, ScalingPolicy(
            min_workers=1, max_workers=4, scale_up_at=10, step=1,
            interval_s=1.0, provision_delay_s=1.0,
        ))
        scaler.start()
        done = []

        def client():
            yield ep.invoke("f")
            done.append(sim.now)

        sim.process(client())

        def stopper():
            yield Timeout(60.0)
            scaler.stop()

        sim.process(stopper())
        sim.run()
        assert done == [pytest.approx(50.0)]
        # no capacity change while the request was running
        assert [e for e in scaler.scaling_events if e[0] < 50.0] == []
        # once fully drained, the pool does shrink to the floor
        assert scaler.current_workers == 1

    def test_double_start_rejected(self):
        sim, ep = make_endpoint()
        scaler = Autoscaler(ep)
        scaler.start()
        with pytest.raises(FaaSError):
            scaler.start()

    def test_starting_below_min_rejected(self):
        sim, ep = make_endpoint(workers=1)
        with pytest.raises(FaaSError):
            Autoscaler(ep, ScalingPolicy(min_workers=2, max_workers=4))
